"""Tests for the SCALES layers and all baseline binary layers."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.binarize import (
    SCALESBinaryConv2d,
    SCALESBinaryLinear,
    TABLE1_METHODS,
    conv_scheme_names,
    get_conv_factory,
    get_linear_factory,
    linear_scheme_names,
)
from repro.binarize.baselines import (
    BAMBinaryConv2d,
    BiBERTBinaryLinear,
    BiViTBinaryLinear,
    BTMBinaryConv2d,
    DAQBinaryConv2d,
    E2FIFBinaryConv2d,
    LMBBinaryConv2d,
    PlainBinaryConv2d,
    WeightOnlyBinaryConv2d,
)

from ..helpers import rng


def _x(c=8, size=10, batch=2, seed=0):
    return Tensor(rng(seed).normal(size=(batch, c, size, size)))


class TestSCALESConv:
    def test_forward_shape(self):
        layer = SCALESBinaryConv2d(8, 8, 3)
        assert layer(_x()).shape == (2, 8, 10, 10)

    def test_all_components_have_grads(self):
        layer = SCALESBinaryConv2d(8, 8, 3)
        G.sum(layer(_x()) ** 2).backward()
        for name, p in layer.named_parameters():
            assert p.grad is not None, name

    def test_skip_connection_identity_component(self):
        """With zeroed weight and branches, output == input (skip)."""
        layer = SCALESBinaryConv2d(4, 4, 3, use_spatial=False,
                                   use_channel=False, bias=False)
        layer.weight.data[:] = 0.0
        x = _x(4, 6)
        out = layer(x)
        np.testing.assert_allclose(out.data, x.data, atol=1e-12)

    def test_no_skip_when_channels_differ(self):
        layer = SCALESBinaryConv2d(4, 8, 3)
        assert not layer.skip

    def test_channel_rescale_disabled_on_channel_change(self):
        layer = SCALESBinaryConv2d(4, 8, 3, use_channel=True)
        assert not layer.use_channel
        assert layer(_x(4, 8)).shape == (2, 8, 8, 8)

    def test_stride_supported(self):
        layer = SCALESBinaryConv2d(4, 4, 3, stride=2)
        assert layer(_x(4, 8)).shape == (2, 4, 4, 4)
        assert not layer.skip

    def test_component_flags(self):
        for flags in [(False, False), (True, False), (False, True), (True, True)]:
            layer = SCALESBinaryConv2d(4, 4, 3, use_spatial=flags[0],
                                       use_channel=flags[1])
            assert layer(_x(4, 6)).shape == (2, 4, 6, 6)

    def test_output_differs_between_inputs(self):
        """Input-dependence: different images -> different re-scaled outputs
        even with identical binary codes would differ via scale branches."""
        layer = SCALESBinaryConv2d(4, 4, 3)
        a = layer(_x(4, 6, seed=1)).data
        b = layer(_x(4, 6, seed=2)).data
        assert not np.allclose(a, b)

    def test_adaptability_full_row(self):
        row = SCALESBinaryConv2d.adaptability()
        assert row["spatial"] and row["channel"] and row["layer"] and row["image"]
        assert row["hw_cost"] == "Low"


class TestSCALESLinear:
    def test_forward_shape_tokens(self):
        layer = SCALESBinaryLinear(8, 16)
        out = layer(Tensor(rng(0).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 16)

    def test_2d_input(self):
        layer = SCALESBinaryLinear(8, 4)
        assert layer(Tensor(rng(0).normal(size=(3, 8)))).shape == (3, 4)

    def test_skip_only_square(self):
        assert SCALESBinaryLinear(8, 8, skip=True).skip
        assert not SCALESBinaryLinear(8, 16, skip=True).skip

    def test_no_channel_rescale_exists(self):
        """Sec. IV-C: transformers get no channel re-scaling (LN kills
        channel variation)."""
        layer = SCALESBinaryLinear(8, 8)
        assert not hasattr(layer, "channel")

    def test_grads(self):
        layer = SCALESBinaryLinear(8, 8, skip=True)
        G.sum(layer(Tensor(rng(1).normal(size=(2, 4, 8)))) ** 2).backward()
        assert all(p.grad is not None for p in layer.parameters())


class TestBaselines:
    CONV_CLASSES = [E2FIFBinaryConv2d, BAMBinaryConv2d, BTMBinaryConv2d,
                    LMBBinaryConv2d, DAQBinaryConv2d, PlainBinaryConv2d,
                    WeightOnlyBinaryConv2d]

    @pytest.mark.parametrize("cls", CONV_CLASSES)
    def test_forward_backward(self, cls):
        layer = cls(4, 4, 3)
        out = layer(_x(4, 8))
        assert out.shape == (2, 4, 8, 8)
        G.sum(out * out).backward()
        assert all(p.grad is not None for p in layer.parameters())

    def test_e2fif_has_bn(self):
        from repro.nn import BatchNorm2d
        layer = E2FIFBinaryConv2d(4, 4, 3)
        assert any(isinstance(m, BatchNorm2d) for m in layer.modules())

    def test_bam_accumulator_updates_in_training(self):
        layer = BAMBinaryConv2d(4, 4, 3)
        layer.train()
        x1 = _x(4, 6, seed=1)
        layer(x1)
        acc_after_first = next(iter(layer._accumulators.values())).copy()
        layer(_x(4, 6, seed=2))
        acc_after_second = next(iter(layer._accumulators.values()))
        assert not np.allclose(acc_after_first, acc_after_second)

    def test_bam_accumulator_frozen_in_eval(self):
        layer = BAMBinaryConv2d(4, 4, 3)
        layer(_x(4, 6, seed=1))
        layer.eval()
        frozen = next(iter(layer._accumulators.values())).copy()
        layer(_x(4, 6, seed=2))
        np.testing.assert_array_equal(frozen, next(iter(layer._accumulators.values())))

    def test_bam_handles_multiple_resolutions(self):
        layer = BAMBinaryConv2d(4, 4, 3)
        layer(_x(4, 6))
        layer(_x(4, 10))
        assert len(layer._accumulators) == 2

    def test_lmb_threshold_is_local_mean(self):
        layer = LMBBinaryConv2d(1, 1, 3)
        x = Tensor(np.ones((1, 1, 5, 5)))
        thr = layer._local_mean(x)
        # Interior of a constant image: local mean equals the constant.
        np.testing.assert_allclose(thr[0, 0, 1:-1, 1:-1], 1.0, atol=1e-10)

    def test_daq_standardizes_channels(self):
        layer = DAQBinaryConv2d(4, 4, 3)
        out = layer(_x(4, 8) * 100.0)  # huge dynamic range still works
        assert np.isfinite(out.data).all()

    def test_weight_only_keeps_fp_activations(self):
        assert WeightOnlyBinaryConv2d.binary is False
        assert WeightOnlyBinaryConv2d.binary_weights is True

    def test_linear_baselines(self):
        x = Tensor(rng(3).normal(size=(2, 6, 8)))
        for cls in [BiBERTBinaryLinear, BiViTBinaryLinear]:
            layer = cls(8, 16)
            out = layer(x)
            assert out.shape == (2, 6, 16)
            G.sum(out * out).backward()
            assert all(p.grad is not None for p in layer.parameters())


class TestRegistry:
    def test_all_conv_schemes_buildable(self):
        for name in conv_scheme_names():
            layer = get_conv_factory(name)(4, 4, 3)
            assert layer(_x(4, 6)).shape == (2, 4, 6, 6)

    def test_all_linear_schemes_buildable(self):
        for name in linear_scheme_names():
            layer = get_linear_factory(name)(8, 8)
            assert layer(Tensor(rng(0).normal(size=(2, 3, 8)))).shape == (2, 3, 8)

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            get_conv_factory("ternary")
        with pytest.raises(KeyError):
            get_linear_factory("ternary")

    def test_table1_rows_match_paper(self):
        """The adaptability matrix must reproduce Table I exactly."""
        rows = {cls.adaptability()["method"]: cls.adaptability()
                for cls in TABLE1_METHODS}
        assert rows["BAM"]["spatial"] and not rows["BAM"]["image"]
        assert rows["BTM"]["image"] and rows["BTM"]["hw_cost"] == "Low"
        assert rows["LMB"]["spatial"] and rows["LMB"]["image"]
        assert rows["DAQ"]["channel"] and not rows["DAQ"]["spatial"]
        assert not any(rows["E2FIF"][k] for k in
                       ("spatial", "channel", "layer", "image"))
        scales_row = rows["SCALES (ours)"]
        assert all(scales_row[k] for k in ("spatial", "channel", "layer", "image"))
        # Only SCALES has all four adaptabilities.
        full_rows = [m for m, r in rows.items()
                     if all(r[k] for k in ("spatial", "channel", "layer", "image"))]
        assert full_rows == ["SCALES (ours)"]
