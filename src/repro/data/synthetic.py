"""Procedural image generator — the DIV2K / benchmark-set substitute.

The paper trains on DIV2K and evaluates on Set5 / Set14 / B100 / Urban100.
Those images cannot ship with an offline reproduction, so this module
synthesizes images with the structural properties SR cares about:

* oriented sinusoidal gratings (the stripes of Fig. 9b where E2FIF fails),
* checkerboards and rectangles (repeated geometry, the Urban100 regime),
* smooth gradients and Gaussian blobs (the Set5 regime),
* band-limited noise textures (the B100 regime).

Every generator is deterministic in its seed, so datasets are exactly
reproducible across runs and machines.

Recoverability
--------------
All periodic structure is kept above the Nyquist limit of the coarsest
LR grid the experiments use (x4): a wavelength below ``2 * scale`` HR
pixels aliases into a *false* low-frequency pattern in the LR image, which
no SR method can undo — trained models then hallucinate plausible-but-
wrong texture and lose PSNR to bicubic blur, inverting every comparison
the paper makes.  :data:`MIN_RECOVERABLE_WAVELENGTH` (2.5 x the max scale,
with margin for the BD blur) is therefore the floor for stripe
wavelengths and checkerboard periods, and noise textures are smoothed
until their spectrum is negligible beyond the x4 LR Nyquist frequency.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
from scipy import ndimage

#: Smallest wavelength (HR pixels) that survives x4 downscaling + BD blur.
MIN_RECOVERABLE_WAVELENGTH = 10.0


def _coords(h: int, w: int):
    y, x = np.mgrid[0:h, 0:w]
    return y / max(h - 1, 1), x / max(w - 1, 1)


def _random_color(rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(0.15, 0.85, size=3)


def gradient_image(rng: np.random.Generator, h: int, w: int) -> np.ndarray:
    """Smooth linear gradient between two random colors."""
    y, x = _coords(h, w)
    theta = rng.uniform(0, 2 * np.pi)
    ramp = x * np.cos(theta) + y * np.sin(theta)
    ramp = (ramp - ramp.min()) / max(np.ptp(ramp), 1e-9)
    c0, c1 = _random_color(rng), _random_color(rng)
    return ramp[..., None] * c1 + (1 - ramp[..., None]) * c0


def stripe_image(rng: np.random.Generator, h: int, w: int,
                 min_wavelength: float = MIN_RECOVERABLE_WAVELENGTH,
                 max_wavelength: float = 36.0) -> np.ndarray:
    """Oriented sinusoidal grating — high-frequency content SR must recover.

    Wavelength is expressed in *pixels* so training and evaluation images
    of different sizes share identical per-pixel statistics, and is floored
    at :data:`MIN_RECOVERABLE_WAVELENGTH` so the pattern survives x4
    downscaling (see the module docstring).
    """
    y, x = np.mgrid[0:h, 0:w].astype(np.float64)
    theta = rng.uniform(0, np.pi)
    wavelength = rng.uniform(min_wavelength, max_wavelength)
    phase = rng.uniform(0, 2 * np.pi)
    wave = 0.5 + 0.5 * np.sin(
        2 * np.pi / wavelength * (x * np.cos(theta) + y * np.sin(theta)) + phase)
    if rng.random() < 0.5:  # square-wave variant: hard edges
        wave = (wave > 0.5).astype(np.float64)
    c0, c1 = _random_color(rng), _random_color(rng)
    return wave[..., None] * c1 + (1 - wave[..., None]) * c0


def checkerboard_image(rng: np.random.Generator, h: int, w: int) -> np.ndarray:
    """Axis-aligned checkerboard (windows-of-a-building regime).

    The cell size is floored at half of :data:`MIN_RECOVERABLE_WAVELENGTH`
    (one checker period spans two cells) so the grid survives x4 LR.
    """
    cell = int(rng.integers(6, 17))  # pixel-based: size-independent statistics
    y, x = np.mgrid[0:h, 0:w]
    pattern = ((y // cell + x // cell) % 2).astype(np.float64)
    c0, c1 = _random_color(rng), _random_color(rng)
    return pattern[..., None] * c1 + (1 - pattern[..., None]) * c0


def rectangle_image(rng: np.random.Generator, h: int, w: int,
                    n_rects: int = 6) -> np.ndarray:
    """Random filled rectangles over a base color (man-made structure)."""
    img = np.ones((h, w, 3)) * _random_color(rng)
    for _ in range(n_rects):
        y0 = int(rng.integers(0, h - 2))
        x0 = int(rng.integers(0, w - 2))
        y1 = int(rng.integers(y0 + 1, h))
        x1 = int(rng.integers(x0 + 1, w))
        img[y0:y1, x0:x1] = _random_color(rng)
    return img


def blob_image(rng: np.random.Generator, h: int, w: int,
               n_blobs: int = 4, texture_amount: float = 0.06) -> np.ndarray:
    """Soft Gaussian blobs on a smooth background (Set5-like smoothness).

    A faint fine-grained texture keeps the image from being perfectly
    band-limited (a pure blob field is reconstructed exactly by bicubic
    interpolation, which would make the suite uninformative).
    """
    img = gradient_image(rng, h, w)
    y, x = np.mgrid[0:h, 0:w]
    for _ in range(n_blobs):
        cy, cx = rng.uniform(0, h), rng.uniform(0, w)
        sigma = rng.uniform(5.0, 18.0)  # pixels, size-independent
        bump = np.exp(-((y - cy) ** 2 + (x - cx) ** 2) / (2 * sigma ** 2))
        img += bump[..., None] * (_random_color(rng) - 0.5)
    if texture_amount:
        grain = ndimage.gaussian_filter(rng.normal(size=(h, w, 3)),
                                        sigma=(1.4, 1.4, 0))
        img += texture_amount * grain
    return img


def texture_image(rng: np.random.Generator, h: int, w: int,
                  smoothness: float = 2.2) -> np.ndarray:
    """Band-limited noise texture (B100 natural-texture regime).

    ``smoothness`` is the Gaussian sigma shaping the noise spectrum; 2.2
    leaves < 5% of the energy beyond the x4 LR Nyquist frequency, so the
    texture is recoverable rather than irreducible noise.
    """
    noise = rng.normal(size=(h, w, 3))
    smooth = ndimage.gaussian_filter(noise, sigma=(smoothness, smoothness, 0))
    smooth = (smooth - smooth.min()) / max(np.ptp(smooth), 1e-9)
    return 0.2 + 0.6 * smooth


def urban_image(rng: np.random.Generator, h: int, w: int) -> np.ndarray:
    """Strong repeated geometric structure: gratings + window grids.

    Urban100 is where the paper's headline improvements land (repeated
    stripes and facades), so this generator layers several hard-edged
    periodic structures.
    """
    base = stripe_image(rng, h, w, min_wavelength=MIN_RECOVERABLE_WAVELENGTH,
                        max_wavelength=24.0)
    grid = checkerboard_image(rng, h, w)
    mask_y = int(rng.integers(h // 4, 3 * h // 4))
    base[mask_y:] = 0.7 * grid[mask_y:] + 0.3 * base[mask_y:]
    rects = rectangle_image(rng, h, w, n_rects=3)
    alpha = rng.uniform(0.1, 0.3)
    return (1 - alpha) * base + alpha * rects


def mixed_image(rng: np.random.Generator, h: int, w: int) -> np.ndarray:
    """A random blend of all component generators (DIV2K substitute)."""
    generators: List[Callable] = [gradient_image, stripe_image, checkerboard_image,
                                  rectangle_image, blob_image, texture_image]
    k = int(rng.integers(2, 4))
    picks = rng.choice(len(generators), size=k, replace=False)
    weights = rng.dirichlet(np.ones(k))
    img = np.zeros((h, w, 3))
    for weight, pick in zip(weights, picks):
        img += weight * generators[pick](rng, h, w)
    img += rng.normal(0, 0.005, size=img.shape)  # mild sensor noise
    return img


def generate(kind: str, seed: int, h: int, w: int) -> np.ndarray:
    """Generate one image of ``kind`` deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    table: Dict[str, Callable] = {
        "gradient": gradient_image,
        "stripes": stripe_image,
        "checkerboard": checkerboard_image,
        "rectangles": rectangle_image,
        "blobs": blob_image,
        "texture": texture_image,
        "urban": urban_image,
        "mixed": mixed_image,
    }
    if kind not in table:
        raise KeyError(f"unknown image kind {kind!r}; choose from {sorted(table)}")
    return np.clip(table[kind](rng, h, w), 0.0, 1.0)
