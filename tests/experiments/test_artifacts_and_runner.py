"""Artifact writers and the CLI runner (fast paths only)."""

import numpy as np
import pytest

from repro.experiments import artifacts
from repro.experiments.presets import ExperimentPreset
from repro.experiments.runner import main as runner_main
from repro.viz import read_png

#: A preset small enough for test-time training (seconds, not minutes).
_TINY = ExperimentPreset(train_images=2, train_image_size=48, eval_images=2,
                         eval_image_size=48, steps=4, batch_size=2,
                         patch_size=12, transformer_steps=2,
                         transformer_patch=8, transformer_batch=2)


class TestDatasetArtifacts:
    def test_dataset_previews(self, tmp_path):
        files = artifacts.save_dataset_previews(tmp_path, n_per_suite=2,
                                                size=32)
        assert len(files) == 5
        for path in files:
            img = read_png(path)
            assert img.ndim == 3 and img.shape[2] == 3

    def test_degradation_preview(self, tmp_path):
        path = artifacts.save_degradation_preview(tmp_path, scale=2, size=32)
        img = read_png(path)
        # Two panels side by side: wider than tall.
        assert img.shape[1] > img.shape[0]


class TestFigureArtifacts:
    def test_fig1_sheets(self, tmp_path):
        files = artifacts.save_fig1_sheets(tmp_path, max_channels=4,
                                           preset=_TINY)
        assert {p.name for p in files} == {"fig1_feature_maps_scales.png",
                                           "fig1_feature_maps_e2fif.png"}
        for path in files:
            img = read_png(path)
            # Binary maps render as near-black/white panels on gray margins.
            values = set(np.unique(img))
            assert values <= {0, 128, 255}

    def test_fig9_rows(self, tmp_path, capsys):
        files = artifacts.save_fig9_rows(tmp_path, scale=2, n_images=1,
                                         preset=_TINY)
        assert len(files) == 1
        assert "SCALES" in capsys.readouterr().out
        assert read_png(files[0]).shape[2] == 3


class TestRunnerCli:
    def test_fast_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SCALES (ours)" in out

    def test_fig4_renders_strips(self, capsys):
        assert runner_main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "O" in out and "=" in out  # box-plot strips

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner_main(["table99"])
