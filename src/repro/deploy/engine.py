"""Compile trained binarized SR networks onto the packed kernels.

``compile_model`` walks a trained model and replaces every supported
binary layer with a packed twin whose heavy matmul runs on ``uint64``
words via XNOR + popcount.  Everything the paper keeps in full precision
(head/tail, the tiny spatial / channel re-scaling branches, BatchNorm,
skips, scaling factors and thresholds) is preserved exactly, so the
deployed model's outputs match the training graph's to float tolerance.

Supported source layers:

=====================================  =========================
training layer                         packed twin
=====================================  =========================
``SCALESBinaryConv2d``                 :class:`PackedBinaryConv2d`
``E2FIFBinaryConv2d``                  :class:`PackedBinaryConv2d`
``SCALESBinaryLinear``                 :class:`PackedBinaryLinear`
``BiBERTBinaryLinear``                 :class:`PackedBinaryLinear`
=====================================  =========================

Each packed layer carries two interchangeable forward implementations:

``fast`` (default)
    Thresholds activations straight into a padded NHWC bit image
    (compare against ``beta`` — no ``(x - beta) / alpha`` float pass,
    no float64 conversion), gathers/packs in the bit domain
    (:func:`repro.deploy.kernels.packed_conv2d_bits`), and folds the
    integer dots, scales, padding correction and bias in two fused
    passes.  All staging comes from the per-thread workspace arena.

``reference``
    The seed path — float sign planes through
    :func:`repro.deploy.kernels.packed_conv2d` — retained as the
    bit-exactness oracle and the baseline the end-to-end benchmarks
    measure against.  Switch with :func:`set_packed_backend`, the
    :func:`packed_backend` context manager, or ``REPRO_PACKED_IMPL``.
"""

from __future__ import annotations

import contextlib
import copy
import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..binarize.baselines import BiBERTBinaryLinear, E2FIFBinaryConv2d
from ..binarize.scales_layers import SCALESBinaryConv2d, SCALESBinaryLinear
from ..grad import Tensor
from ..grad.conv import conv2d_output_shape
from ..grad.tensor import get_default_dtype
from ..infer.tiling import TileStitcher, iter_tile_batches, plan_tiles
from ..nn import Module
from .kernels import (FastConvWeight, FastLinearWeight, _padding_correction,
                      pack_weight_conv, pack_weight_linear, packed_conv2d,
                      packed_conv2d_bits, packed_linear, packed_linear_bits)
from .workspace import workspace

#: Padding corrections memoized per input geometry on each packed conv.
#: SR workloads see a handful of shapes (train patch, eval tile, full
#: image); a small FIFO keeps the cache bounded even under shape churn.
_CORRECTION_CACHE_SIZE = 8

_MIN_ALPHA = 1e-3  # must match repro.binarize.ste.lsf_binarize

_BACKENDS = ("fast", "reference")
_packed_backend = os.environ.get("REPRO_PACKED_IMPL", "fast")
if _packed_backend not in _BACKENDS:
    raise ValueError(
        f"REPRO_PACKED_IMPL must be one of {_BACKENDS}, got {_packed_backend!r}")


def set_packed_backend(name: str) -> None:
    """Select the packed-layer forward: ``"fast"`` or ``"reference"``."""
    global _packed_backend
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown packed backend {name!r}; expected one of {_BACKENDS}")
    _packed_backend = name


def get_packed_backend() -> str:
    """Name of the active packed-layer forward implementation."""
    return _packed_backend


@contextlib.contextmanager
def packed_backend(name: str) -> Iterator[None]:
    """Temporarily switch the packed-layer forward (restores on exit)."""
    previous = _packed_backend
    set_packed_backend(name)
    try:
        yield
    finally:
        set_packed_backend(previous)


def _safe_alpha(alpha: np.ndarray) -> np.ndarray:
    return np.where(np.abs(alpha) < _MIN_ALPHA,
                    np.where(alpha < 0, -_MIN_ALPHA, _MIN_ALPHA), alpha)


def _weight_scale(weight: np.ndarray) -> np.ndarray:
    """Per-output-channel l1 scale, identical to ``binarize_weight``."""
    reduce_axes = tuple(range(1, weight.ndim))
    return np.abs(weight).mean(axis=reduce_axes)


def _fifo_insert(cache: Dict, key, value, limit: int = _CORRECTION_CACHE_SIZE):
    """Bounded FIFO insert, tolerant of racing evictions from worker threads."""
    if len(cache) >= limit:
        try:
            cache.pop(next(iter(cache)))
        except (KeyError, RuntimeError, StopIteration):  # pragma: no cover
            pass
    cache[key] = value


def _threshold_bits(data: np.ndarray, dest: np.ndarray,
                    alpha: Optional[np.ndarray],
                    beta: Optional[np.ndarray]) -> float:
    """Write activation sign bits of NHWC-viewed ``data`` into ``dest``.

    ``dest`` is the NHWC interior view of the padded bit image; returns
    the activation scale.  ``sign((x - beta) / alpha)`` reduces to a
    single fused compare against ``beta`` whenever ``alpha`` has one
    sign (it always does — ``alpha`` is the paper's layer-wise scalar);
    a general fallback covers mixed-sign per-element alphas.
    """
    src = np.moveaxis(data, 1, -1) if data.ndim == 4 else data
    if alpha is None:
        np.greater_equal(src, 0.0, out=dest)
        return 1.0
    act_scale = float(alpha.reshape(-1)[0])
    thr = np.asarray(beta).reshape(-1)
    if thr.size not in (1, src.shape[-1]):  # pragma: no cover - defensive
        thr = np.moveaxis(np.broadcast_to(beta, data.shape), 1, -1) \
            if data.ndim == 4 else np.broadcast_to(beta, data.shape)
    if np.all(alpha > 0):
        np.greater_equal(src, thr, out=dest)
    elif np.all(alpha < 0):
        np.less_equal(src, thr, out=dest)
    else:  # pragma: no cover - mixed-sign alpha never trained in practice
        u = (data - beta) / alpha
        np.greater_equal(np.moveaxis(u, 1, -1) if u.ndim == 4 else u,
                         0.0, out=dest)
    return act_scale


class PackedBinaryConv2d(Module):
    """Inference-only binary conv on packed weights (drop-in replacement).

    The forward math mirrors the training layer term by term:

    1. activation signs from the layer's binarizer (LSF threshold/scale or
       plain sign);
    2. XNOR-popcount convolution against packed ``sign(w)``;
    3. multiply by ``alpha`` (activation scale) and the per-channel weight
       scale; add bias;
    4. FP re-scaling branches / BatchNorm / skip exactly as trained.

    The layer is weight-stationary: ``sign(w)`` is packed once at
    construction (in both the reference patch layout and the fast
    layout, transposed GEMM panel included), and the zero-padding border
    correction — a pure function of (input shape, stride, padding) and
    the frozen weights — is memoized per input geometry, pre-folded with
    the scales and bias for the fast path.
    """

    binary = True

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray],
                 stride: int, padding: int,
                 alpha: Optional[np.ndarray], beta: Optional[np.ndarray],
                 spatial: Optional[Module] = None,
                 channel: Optional[Module] = None,
                 bn: Optional[Module] = None, skip: bool = False):
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.alpha = None if alpha is None else _safe_alpha(np.asarray(alpha))
        self.beta = None if beta is None else np.asarray(beta)
        self.packed_weight, self.weight_signs = pack_weight_conv(weight)
        self.fast_weight = FastConvWeight(weight)
        self.weight_scale = _weight_scale(weight)
        self.conv_bias = None if bias is None else np.asarray(bias)
        if spatial is not None:
            self.spatial = spatial
        if channel is not None:
            self.channel = channel
        if bn is not None:
            self.bn = bn
        self._has_spatial = spatial is not None
        self._has_channel = channel is not None
        self._has_bn = bn is not None
        self.skip = skip
        self._correction_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._offset_cache: Dict[Tuple[int, int], Optional[np.ndarray]] = {}

    def _cached_padding_correction(self, shape: Tuple[int, int]) -> Optional[np.ndarray]:
        """Border correction for an ``(H, W)`` input, memoized per shape."""
        if not self.padding:
            return None
        correction = self._correction_cache.get(shape)
        if correction is None:
            correction = _padding_correction(shape, self.weight_signs,
                                             self.stride, self.padding)
            _fifo_insert(self._correction_cache, shape, correction)
        return correction

    def _cached_correction_int(self, shape: Tuple[int, int]) -> np.ndarray:
        """Padding correction as int32 ``(H_out*W_out, C_out)``.

        The border correction is integer-valued (a convolution of a 0/1
        mask with ±1 weight signs), so the fast path adds it to the raw
        int32 dots *before* scaling — one int pass instead of a float64
        plane add, and the exact ``(dots + corr) * s`` association of
        the reference path.  Stored position-major to match the GEMM's
        ``(B*H_out*W_out, C_out)`` dot layout (contiguous adds).
        """
        cached = self._offset_cache.get(shape)
        if cached is None:
            correction = self._cached_padding_correction(shape)
            cached = np.ascontiguousarray(
                correction.reshape(correction.shape[0], -1)
                .T.astype(np.int32))
            _fifo_insert(self._offset_cache, shape, cached)
        return cached

    @classmethod
    def from_scales(cls, layer: SCALESBinaryConv2d) -> "PackedBinaryConv2d":
        alpha = layer.binarizer.alpha.data if layer.use_lsf else None
        beta = layer.binarizer.beta.data if layer.use_lsf else None
        return cls(layer.weight.data,
                   None if layer.bias is None else layer.bias.data,
                   layer.stride, layer.padding, alpha, beta,
                   spatial=layer.spatial if layer.use_spatial else None,
                   channel=layer.channel if layer.use_channel else None,
                   skip=layer.skip)

    @classmethod
    def from_e2fif(cls, layer: E2FIFBinaryConv2d) -> "PackedBinaryConv2d":
        return cls(layer.weight.data,
                   None if layer.bias is None else layer.bias.data,
                   layer.stride, layer.padding, alpha=None, beta=None,
                   bn=layer.bn, skip=layer.skip)

    def _forward_reference(self, x: Tensor) -> Tensor:
        """Seed forward: float sign planes + float64 im2col (oracle)."""
        data = np.asarray(x.data, dtype=np.float64)
        if self.alpha is not None:
            u = (data - self.beta) / self.alpha
            signs = np.where(u >= 0, 1.0, -1.0)
            act_scale = float(self.alpha.reshape(-1)[0])
        else:
            signs = np.where(data >= 0, 1.0, -1.0)
            act_scale = 1.0
        correction = self._cached_padding_correction(signs.shape[2:])
        out = packed_conv2d(signs, self.packed_weight, self.weight_signs,
                            stride=self.stride, padding=self.padding,
                            padding_correction=correction)
        out *= act_scale * self.weight_scale[None, :, None, None]
        if self.conv_bias is not None:
            out += self.conv_bias[None, :, None, None]
        return Tensor(out.astype(data.dtype))

    def _forward_fast(self, x: Tensor) -> Tensor:
        """Bit-domain forward: threshold -> pack -> GEMM -> fused fold."""
        data = np.asarray(x.data)
        b, c, h, w = data.shape
        p, fw = self.padding, self.fast_weight
        ws = workspace()
        # The tag carries the true channel count and padding width: the
        # channels beyond c and the p-pixel border are zeroed once at
        # creation and never rewritten, so layers whose padded extents
        # coincide but whose written interiors differ (c_in 96 vs 128
        # both pad to 128 bitplane channels; equal H+2p from different
        # H, p) must not share a buffer — stale 1-bits would enter the
        # XOR-popcount.
        bits = ws.take(f"actbits{fw.c_pad}c{c}p{p}",
                       (b, h + 2 * p, w + 2 * p, fw.c_pad), np.uint8,
                       zero_on_create=True)
        interior = bits[:, p:p + h, p:p + w, :c]
        act_scale = _threshold_bits(data, interior, self.alpha, self.beta)
        out_h, out_w = conv2d_output_shape((h + 2 * p, w + 2 * p),
                                           (fw.kh, fw.kw), self.stride, 0)
        dots = ws.take("conv_dots", (b * out_h * out_w, fw.c_out), np.int32)
        packed_conv2d_bits(bits, fw, stride=self.stride, out=dots, ws=ws)
        if p:
            d3 = dots.reshape(b, out_h * out_w, fw.c_out)
            d3 += self._cached_correction_int((h, w))[None]
        dview = dots.reshape(b, out_h * out_w, fw.c_out).transpose(0, 2, 1)
        scale = act_scale * self.weight_scale
        if self.conv_bias is None:
            # Scale straight into the Tensor's dtype: the ufunc computes
            # in float64 (int32 x float64 loop) and casts on store —
            # bit-identical to the reference's float64 result after its
            # Tensor cast, without materializing the float64 plane.
            out = np.empty((b, fw.c_out, out_h, out_w),
                           dtype=get_default_dtype())
            np.multiply(dview, scale[None, :, None],
                        out=out.reshape(b, fw.c_out, -1), casting="unsafe")
        else:
            # The reference adds the bias in float64 before the single
            # round-off; match its association exactly.
            out = np.empty((b, fw.c_out, out_h, out_w), dtype=np.float64)
            np.multiply(dview, scale[None, :, None],
                        out=out.reshape(b, fw.c_out, -1))
            out += self.conv_bias[None, :, None, None]
        return Tensor(out)

    def forward(self, x: Tensor) -> Tensor:
        if _packed_backend == "fast":
            result = self._forward_fast(x)
        else:
            result = self._forward_reference(x)
        if self._has_spatial:
            result = result * self.spatial(x)
        if self._has_channel:
            result = result * self.channel(x)
        if self._has_bn:
            result = self.bn(result)
        if self.skip:
            result = result + x
        return result


class PackedBinaryLinear(Module):
    """Inference-only binary linear on packed weights."""

    binary = True

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray],
                 alpha: Optional[np.ndarray], beta: Optional[np.ndarray],
                 spatial: Optional[Module] = None, skip: bool = False):
        super().__init__()
        self.alpha = None if alpha is None else _safe_alpha(np.asarray(alpha))
        self.beta = None if beta is None else np.asarray(beta)
        self.packed_weight, self.in_features = pack_weight_linear(weight)
        self.fast_weight = FastLinearWeight(weight)
        self.out_features = weight.shape[0]
        self.weight_scale = _weight_scale(weight)
        self.lin_bias = None if bias is None else np.asarray(bias)
        if spatial is not None:
            self.spatial = spatial
        self._has_spatial = spatial is not None
        self.skip = skip

    @classmethod
    def from_scales(cls, layer: SCALESBinaryLinear) -> "PackedBinaryLinear":
        alpha = layer.binarizer.alpha.data if layer.use_lsf else None
        beta = layer.binarizer.beta.data if layer.use_lsf else None
        return cls(layer.weight.data,
                   None if layer.bias is None else layer.bias.data,
                   alpha, beta,
                   spatial=layer.spatial if layer.use_spatial else None,
                   skip=layer.skip)

    @classmethod
    def from_bibert(cls, layer: BiBERTBinaryLinear) -> "PackedBinaryLinear":
        return cls(layer.weight.data,
                   None if layer.bias is None else layer.bias.data,
                   alpha=None, beta=None)

    def _forward_reference(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data, dtype=np.float64)
        if self.alpha is not None:
            u = (data - self.beta) / self.alpha
            signs = np.where(u >= 0, 1.0, -1.0)
            act_scale = float(np.asarray(self.alpha).reshape(-1)[0])
        else:
            signs = np.where(data >= 0, 1.0, -1.0)
            act_scale = 1.0
        out = packed_linear(signs, self.packed_weight, self.in_features)
        out *= act_scale * self.weight_scale
        if self.lin_bias is not None:
            out += self.lin_bias
        return Tensor(out.astype(data.dtype))

    def _forward_fast(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        *lead, k = data.shape
        fw = self.fast_weight
        m = int(np.prod(lead, dtype=np.int64)) if lead else 1
        ws = workspace()
        bits = ws.take(f"linbits{k}", (m, fw.words * 64), np.uint8,
                       zero_on_create=True)
        act_scale = _threshold_bits(data.reshape(m, k), bits[:, :k],
                                    self.alpha, self.beta)
        dots = ws.take("lin_dots", (m, fw.out_features), np.int32)
        packed_linear_bits(bits, fw, out=dots, ws=ws)
        out = np.empty((m, fw.out_features), dtype=np.float64)
        np.multiply(dots, (act_scale * self.weight_scale)[None, :], out=out)
        if self.lin_bias is not None:
            out += self.lin_bias
        # float64 out, matching the reference path's output dtype.
        return Tensor(out.reshape(*lead, -1))

    def forward(self, x: Tensor) -> Tensor:
        if _packed_backend == "fast":
            result = self._forward_fast(x)
        else:
            result = self._forward_reference(x)
        if self._has_spatial:
            result = result * self.spatial(x)
        if self.skip:
            result = result + x
        return result


class TiledInference(Module):
    """Batched overlap-and-stitch wrapper bounding a model's working set.

    Full-image SR through the packed engine materializes patch rows and
    packed activation panels proportional to ``H * W``; on large inputs
    that dwarfs the model itself.  This wrapper cuts the NCHW input into
    overlapping ``tile x tile`` crops (:func:`repro.infer.tiling
    .plan_tiles`) and runs the wrapped model in chunks of ``batch_size``
    tiles, streamed one thread-pool wave at a time and stitched as each
    wave completes.  Peak memory is bounded by one wave (``batch_size *
    n_threads`` tiles) plus the output canvas regardless of input size,
    every packed layer's geometry caches see a single tile shape, and
    the conv/GEMM kernels see a few large-M operands instead of one
    tiny call per tile.

    ``batched=False`` retains the sequential per-tile loop (the seed
    execution strategy) — the oracle for equivalence tests and the
    baseline for the end-to-end benchmarks.

    The model's scale factor is inferred from the first tile's output
    (it must be an integer multiple of the input tile).  Interior tile
    edges are trimmed by ``overlap // 2`` pixels before placement — tile
    borders carry the model's halo artifacts — and any remaining
    overlapped pixels are averaged, mirroring
    :func:`repro.infer.tiling.tiled_super_resolve`.
    """

    def __init__(self, model, tile: int = 48, overlap: int = 8,
                 batch_size: int = 16, n_threads: Optional[int] = None,
                 batched: bool = True):
        super().__init__()
        if isinstance(model, (str, os.PathLike)):
            # Serve straight from a packed deploy artifact: load the bare
            # model (ignoring any stored tiling config — this wrapper IS
            # the tiling layer).
            from .serialize import load_artifact
            model = load_artifact(model, tile=None)
        if tile <= 0:
            raise ValueError(f"tile must be positive, got {tile}")
        if not 0 <= overlap < tile:
            raise ValueError(f"overlap {overlap} must be in [0, tile={tile})")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.tile = tile
        self.overlap = overlap
        self.batch_size = batch_size
        self.n_threads = n_threads
        self.batched = batched

    def _scale_of(self, plan, out_shape: Tuple[int, ...]) -> int:
        tile_h, tile_w = plan.tile_h, plan.tile_w
        if out_shape[2] % tile_h or out_shape[3] % tile_w:
            raise ValueError(
                f"tiled inference needs an integer scale factor; "
                f"tile {(tile_h, tile_w)} produced {tuple(out_shape[2:])}")
        scale = out_shape[2] // tile_h
        if out_shape[3] // tile_w != scale:
            raise ValueError("tiled inference needs matching H/W scale factors")
        return scale

    def forward(self, x: Tensor) -> Tensor:
        data = np.asarray(x.data)
        b, c, h, w = data.shape
        if h <= self.tile and w <= self.tile:
            return self.model(x)
        plan = plan_tiles(h, w, self.tile, self.overlap)
        if self.batched:
            batches = iter_tile_batches(self.model, data, plan,
                                        self.batch_size, self.n_threads)
        else:
            # The seed execution strategy: one tile per forward.
            batches = (
                ([t], np.asarray(self.model(Tensor(
                    data[:, :, s.y0:s.y0 + plan.tile_h,
                         s.x0:s.x0 + plan.tile_w])).data))
                for t, s in enumerate(plan.tiles))
        stitcher = None
        for indices, out in batches:
            if stitcher is None:
                scale = self._scale_of(plan, out.shape)
                stitcher = TileStitcher(plan, scale, batch=b,
                                        c_out=out.shape[1])
            out = np.asarray(out, dtype=np.float64)
            for j, t in enumerate(indices):
                stitcher.add(t, out[j * b:(j + 1) * b])
        return Tensor(stitcher.finish().astype(data.dtype))


_COMPILERS: List[Tuple[type, Callable[[Module], Module]]] = [
    (SCALESBinaryConv2d, PackedBinaryConv2d.from_scales),
    (E2FIFBinaryConv2d, PackedBinaryConv2d.from_e2fif),
    (SCALESBinaryLinear, PackedBinaryLinear.from_scales),
    (BiBERTBinaryLinear, PackedBinaryLinear.from_bibert),
]


def deployable_layers(model: Module) -> Dict[str, Module]:
    """Name -> module map of every layer ``compile_model`` would replace."""
    found: Dict[str, Module] = {}
    for name, module in model.named_modules():
        if any(isinstance(module, src) for src, _ in _COMPILERS):
            found[name] = module
    return found


def _compile_in_place(module: Module) -> int:
    replaced = 0
    for name, child in list(module._modules.items()):
        for source_type, factory in _COMPILERS:
            if isinstance(child, source_type):
                module.register_module(name, factory(child))
                replaced += 1
                break
        else:
            replaced += _compile_in_place(child)
    return replaced


def compile_model(model: Module, tile: Optional[int] = None,
                  tile_overlap: int = 8, tile_batch_size: int = 16,
                  tile_threads: Optional[int] = None,
                  freeze=None) -> Module:
    """Deep-copy ``model`` and swap binary layers for packed twins.

    Returns the compiled copy in eval mode; raises if nothing in the model
    is deployable (compiling an FP model is almost certainly a bug).

    Parameters
    ----------
    tile:
        When given, wrap the compiled model in :class:`TiledInference`
        with this LR tile size, so arbitrarily large inputs run in
        memory bounded by the tile instead of the full image.
    tile_overlap:
        Overlap in input pixels between neighbouring tiles (only used
        with ``tile``).
    tile_batch_size:
        Tiles per batched forward inside :class:`TiledInference`.
    tile_threads:
        Worker threads for tile batches (default: the global inference
        thread count, see :func:`repro.infer.parallel.get_num_threads`).
    freeze:
        When set, additionally export the compiled model as a packed
        deploy artifact (:func:`repro.deploy.serialize.save_artifact`):
        a path writes there; ``True`` derives the canonical file name
        from the model's build recipe.  The written path is recorded on
        the returned module as ``artifact_path``.
    """
    compiled = copy.deepcopy(model)
    replaced = _compile_in_place(compiled)
    if replaced == 0:
        raise ValueError(
            "model contains no deployable binary layers; expected at least "
            "one SCALES / E2FIF / BiBERT binary conv or linear")
    compiled.eval()
    result = compiled
    if tile is not None:
        result = TiledInference(compiled, tile=tile, overlap=tile_overlap,
                                batch_size=tile_batch_size,
                                n_threads=tile_threads)
    if freeze is not None and freeze is not False:
        from .serialize import save_artifact
        path = save_artifact(result, None if freeze is True else freeze)
        object.__setattr__(result, "artifact_path", path)
    return result
