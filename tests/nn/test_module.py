"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.act = ReLU()
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x))) * self.scale


class TestRegistration:
    def test_parameters_collected_recursively(self):
        m = Toy()
        names = dict(m.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names
        assert len(m.parameters()) == 5

    def test_modules_iteration(self):
        m = Toy()
        types = [type(x).__name__ for x in m.modules()]
        assert types[0] == "Toy"
        assert "Linear" in types and "ReLU" in types

    def test_named_modules_paths(self):
        m = Toy()
        names = dict(m.named_modules())
        assert "fc1" in names and "" in names

    def test_children_are_direct_only(self):
        m = Sequential(Toy(), ReLU())
        assert len(list(m.children())) == 2

    def test_num_parameters(self):
        m = Linear(4, 8)
        assert m.num_parameters() == 4 * 8 + 8


class TestModes:
    def test_train_eval_propagate(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training

    def test_zero_grad(self):
        m = Toy()
        out = G.sum(m(Tensor(np.ones((2, 4)))))
        out.backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert m.fc1.weight.grad is None


class TestHooks:
    def test_forward_hook_sees_inputs_and_output(self):
        m = Linear(3, 2)
        seen = []
        m.register_forward_hook(lambda mod, ins, out: seen.append((ins[0].shape, out.shape)))
        m(Tensor(np.zeros((4, 3))))
        assert seen == [((4, 3), (4, 2))]

    def test_hook_remover(self):
        m = Linear(3, 2)
        seen = []
        remove = m.register_forward_hook(lambda *a: seen.append(1))
        m(Tensor(np.zeros((1, 3))))
        remove()
        m(Tensor(np.zeros((1, 3))))
        assert len(seen) == 1

    def test_clear_forward_hooks_recursive(self):
        m = Toy()
        m.fc1.register_forward_hook(lambda *a: None)
        m.clear_forward_hooks()
        assert not m.fc1._forward_hooks


class TestState:
    def test_state_dict_roundtrip(self):
        m1, m2 = Toy(), Toy()
        m2.fc1.weight.data[:] = 0.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m2.fc1.weight.data, m1.fc1.weight.data)

    def test_strict_load_rejects_missing(self):
        m = Toy()
        state = m.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        m = Toy()
        state = m.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        m1, m2 = Toy(), Toy()
        path = str(tmp_path / "weights.npz")
        m1.save(path)
        m2.load(path)
        np.testing.assert_allclose(m2.fc2.weight.data, m1.fc2.weight.data)

    def test_state_dict_is_copy(self):
        m = Toy()
        state = m.state_dict()
        state["scale"][0] = 42.0
        assert m.scale.data[0] == 1.0
