"""Per-channel weight binarization (Sec. IV-A).

``w_hat = (||w||_l1 / n) * sign(w)`` where the scale is the absolute mean
of the weights feeding each *output* channel — the XNOR-Net scheme the
paper adopts for all binary conv and linear layers.
"""

from __future__ import annotations

import numpy as np

from ..grad import Tensor, custom_op


def binarize_weight(weight: Tensor, clip_value: float = 1.0) -> Tensor:
    """Binarize ``weight`` per output channel (first axis).

    Works for conv weights ``(C_out, C_in, kh, kw)``, conv1d weights
    ``(C_out, C_in, k)`` and linear weights ``(out, in)``.

    The backward pass includes both terms of the exact derivative of
    ``s * sign(w)``: the clipped STE through ``sign`` and the gradient
    through the scale ``s = mean(|w|)``.
    """
    w = weight.data
    reduce_axes = tuple(range(1, w.ndim))
    n = int(np.prod(w.shape[1:]))
    scale = np.abs(w).mean(axis=reduce_axes, keepdims=True)
    sign_w = np.where(w >= 0, 1.0, -1.0)
    data = scale * sign_w

    def backward(grad, send):
        ste = scale * grad * (np.abs(w) <= clip_value)
        through_scale = sign_w / n * (grad * sign_w).sum(axis=reduce_axes, keepdims=True)
        send(weight, ste + through_scale)

    return custom_op((weight,), data, backward)


def weight_scale(weight: Tensor) -> np.ndarray:
    """The per-output-channel l1 scale (for inspection/tests)."""
    w = weight.data
    return np.abs(w).mean(axis=tuple(range(1, w.ndim)))
