"""Data-dependent LSF calibration (beta centering, optional alpha seeding)."""

import numpy as np
import pytest

from repro import grad as G
from repro.binarize import LSFBinarizer2d, calibrate_lsf
from repro.binarize.lsf import LSFBinarizerTokens
from repro.grad import Tensor
from repro.models import build_model
from repro.nn import Module, init


class _Wrap(Module):
    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    def forward(self, x):
        return self.inner(x)


class TestBinarizerCalibration:
    def test_beta_set_to_channel_means(self):
        binarizer = LSFBinarizer2d(3)
        model = _Wrap(binarizer)
        rng = np.random.default_rng(0)
        batch = rng.normal(loc=[1.0, -2.0, 0.5], size=(4, 8, 8, 3)).transpose(0, 3, 1, 2)
        n = calibrate_lsf(model, batch)
        assert n == 1
        expected = batch.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(binarizer.beta.data.reshape(-1), expected,
                                   atol=1e-10)

    def test_alpha_untouched_by_default(self):
        binarizer = LSFBinarizer2d(2, init_alpha=1.0)
        calibrate_lsf(_Wrap(binarizer), np.random.default_rng(1).normal(size=(2, 2, 4, 4)))
        assert float(binarizer.alpha.data.reshape(-1)[0]) == 1.0

    def test_alpha_seeding_is_l1_optimal(self):
        binarizer = LSFBinarizer2d(2)
        rng = np.random.default_rng(2)
        batch = rng.normal(size=(2, 2, 6, 6))
        calibrate_lsf(_Wrap(binarizer), batch, calibrate_alpha=True)
        beta = batch.mean(axis=(0, 2, 3)).reshape(1, -1, 1, 1)
        expected_alpha = np.abs(batch - beta).mean()
        np.testing.assert_allclose(float(binarizer.alpha.data.reshape(-1)[0]),
                                   expected_alpha, rtol=1e-10)

    def test_token_binarizer(self):
        binarizer = LSFBinarizerTokens(5)
        rng = np.random.default_rng(3)
        batch = rng.normal(size=(3, 7, 5))
        calibrate_lsf(_Wrap(binarizer), batch)
        np.testing.assert_allclose(binarizer.beta.data,
                                   batch.reshape(-1, 5).mean(axis=0), atol=1e-10)

    def test_idempotent_one_shot(self):
        # Calibration arms once per call; the next forward trains normally.
        binarizer = LSFBinarizer2d(2)
        model = _Wrap(binarizer)
        rng = np.random.default_rng(4)
        calibrate_lsf(model, rng.normal(size=(1, 2, 4, 4)))
        beta_after = binarizer.beta.data.copy()
        model(Tensor(rng.normal(size=(1, 2, 4, 4))))
        np.testing.assert_array_equal(binarizer.beta.data, beta_after)

    def test_model_without_binarizers_is_noop(self):
        with G.default_dtype("float32"):
            init.seed(0)
            model = build_model("srresnet", scale=2, scheme="e2fif",
                                preset="tiny")
            n = calibrate_lsf(model, np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert n == 0

    def test_full_model_calibration_counts_layers(self):
        with G.default_dtype("float32"):
            init.seed(0)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            batch = np.random.default_rng(5).random((2, 3, 8, 8)).astype(np.float32)
            n = calibrate_lsf(model, batch)
            binarizers = [m for m in model.modules()
                          if isinstance(m, LSFBinarizer2d)]
        assert n == len(binarizers) > 0
        # After a real forward pass, thresholds moved off their zero init.
        assert any(np.abs(b.beta.data).max() > 0 for b in binarizers)

    def test_training_mode_restored(self):
        with G.default_dtype("float32"):
            init.seed(0)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            model.train()
            calibrate_lsf(model, np.zeros((1, 3, 8, 8), dtype=np.float32))
            assert model.training
            model.eval()
            calibrate_lsf(model, np.zeros((1, 3, 8, 8), dtype=np.float32))
            assert not model.training


class TestTrainerIntegration:
    def test_trainer_calibrates_scales_models(self):
        from repro.data import training_pool
        from repro.train import TrainConfig, Trainer

        with G.default_dtype("float32"):
            init.seed(1)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            pool = training_pool(scale=2, n_images=2, size=(48, 48))
            trainer = Trainer(model, pool, TrainConfig(steps=1, batch_size=4,
                                                       patch_size=12))
            n = trainer.calibrate()
            assert n > 0
            assert trainer.calibrate() == 0  # idempotent

    def test_calibration_does_not_consume_training_batches(self):
        from repro.data import training_pool
        from repro.train import TrainConfig, Trainer

        with G.default_dtype("float32"):
            init.seed(1)
            pool = training_pool(scale=2, n_images=2, size=(48, 48))
            config = TrainConfig(steps=1, batch_size=4, patch_size=12, seed=3)

            init.seed(2)
            a = build_model("srresnet", scale=2, scheme="e2fif", preset="tiny")
            trainer_plain = Trainer(a, pool, config)
            batch_plain = trainer_plain.sampler.batch()[0]

            init.seed(2)
            b = build_model("srresnet", scale=2, scheme="e2fif", preset="tiny")
            trainer_calibrated = Trainer(b, pool, config)
            trainer_calibrated.calibrate()
            batch_calibrated = trainer_calibrated.sampler.batch()[0]

        np.testing.assert_array_equal(batch_plain, batch_calibrated)
