"""Baseline binarization methods the paper compares against (Table I)."""

from .bam import BAMBinaryConv2d
from .bibert import BiBERTBinaryLinear
from .bivit import BiViTBinaryLinear
from .btm import BTMBinaryConv2d
from .classification_bnns import (AdaBinBinaryConv2d, BiRealBinaryConv2d,
                                  ReActNetBinaryConv2d, XNORNetBinaryConv2d)
from .daq import DAQBinaryConv2d
from .e2fif import E2FIFBinaryConv2d
from .lmb import LMBBinaryConv2d
from .plain import PlainBinaryConv2d
from .weight_only import WeightOnlyBinaryConv2d

__all__ = [
    "AdaBinBinaryConv2d", "BAMBinaryConv2d", "BiBERTBinaryLinear",
    "BiRealBinaryConv2d", "BiViTBinaryLinear", "BTMBinaryConv2d",
    "DAQBinaryConv2d", "E2FIFBinaryConv2d", "LMBBinaryConv2d",
    "PlainBinaryConv2d", "ReActNetBinaryConv2d", "WeightOnlyBinaryConv2d",
    "XNORNetBinaryConv2d",
]
