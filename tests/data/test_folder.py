"""Folder-dataset bridge: real image files -> SRPair lists."""

import numpy as np
import pytest

from repro.data import folder_suite, hr_images, list_images, load_image
from repro.viz import write_png, write_ppm


@pytest.fixture()
def image_dir(tmp_path):
    """A directory with three HR images in mixed supported formats."""
    images = hr_images("set14", 3, (32, 32))
    write_png(tmp_path / "b.png", images[0])
    write_ppm(tmp_path / "a.ppm", images[1])
    write_png(tmp_path / "c.png", images[2])
    (tmp_path / "notes.txt").write_text("not an image")
    return tmp_path


class TestListing:
    def test_sorted_and_filtered(self, image_dir):
        names = [p.name for p in list_images(image_dir)]
        assert names == ["a.ppm", "b.png", "c.png"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list_images(tmp_path / "nope")


class TestLoadImage:
    def test_png_roundtrip_range(self, image_dir):
        arr = load_image(image_dir / "b.png")
        assert arr.shape == (32, 32, 3)
        assert 0.0 <= arr.min() and arr.max() <= 1.0

    def test_grayscale_promoted_to_rgb(self, tmp_path):
        write_png(tmp_path / "g.png", np.full((4, 4), 0.5))
        arr = load_image(tmp_path / "g.png")
        assert arr.shape == (4, 4, 3)
        np.testing.assert_array_equal(arr[:, :, 0], arr[:, :, 1])

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "x.jpg"
        path.write_bytes(b"\xff\xd8")
        with pytest.raises(ValueError, match="unsupported"):
            load_image(path)


class TestFolderSuite:
    def test_pairs_built(self, image_dir):
        pairs = folder_suite(image_dir, scale=2)
        assert len(pairs) == 3
        for pair in pairs:
            assert pair.hr.shape == (32, 32, 3)
            assert pair.lr.shape == (16, 16, 3)
            assert pair.scale == 2

    def test_names_from_filenames(self, image_dir):
        pairs = folder_suite(image_dir, scale=2)
        assert [p.name for p in pairs] == ["a", "b", "c"]

    def test_n_images_limit(self, image_dir):
        assert len(folder_suite(image_dir, scale=2, n_images=2)) == 2

    def test_center_crop(self, image_dir):
        pairs = folder_suite(image_dir, scale=2, crop=(16, 16))
        assert pairs[0].hr.shape == (16, 16, 3)

    def test_crop_too_large(self, image_dir):
        with pytest.raises(ValueError, match="smaller than crop"):
            folder_suite(image_dir, scale=2, crop=(64, 64))

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no supported images"):
            folder_suite(tmp_path, scale=2)

    def test_quantization_noise_only(self, image_dir):
        # The stored PNG quantizes to 8 bits; the recovered HR must match
        # the original synthetic image to within 1/255 everywhere.
        original = hr_images("set14", 3, (32, 32))[0]
        pairs = folder_suite(image_dir, scale=2)
        recovered = {p.name: p.hr for p in pairs}["b"]
        assert np.abs(recovered - original).max() <= (0.5 / 255) + 1e-9

    def test_evaluation_compatible(self, image_dir):
        from repro import grad as G
        from repro.models import build_model
        from repro.nn import init
        from repro.train import evaluate

        with G.default_dtype("float32"):
            init.seed(0)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            result = evaluate(model, folder_suite(image_dir, scale=2))
        assert np.isfinite(result.psnr)
