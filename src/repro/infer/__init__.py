"""Test-time inference utilities for SR models.

The EDSR lineage (and every paper building on it, including SCALES'
experimental protocol) evaluates with two standard tools this module
provides:

* :func:`self_ensemble` — the x8 geometric ensemble ("EDSR+"):
  average the model's predictions over the dihedral transforms of the
  input (4 rotations x optional flip), undoing each transform on the
  output.  Typically worth ~0.1-0.2 dB at no training cost.
* :func:`tiled_super_resolve` — chop the LR image into overlapping tiles,
  super-resolve each and blend, bounding peak memory so full-resolution
  images fit through NumPy inference.

Both now execute batched: tiles / transform variants are stacked into
NCHW batches and fanned out over a thread pool (:func:`set_num_threads`
/ ``REPRO_NUM_THREADS`` control the width; NumPy kernels release the
GIL).  :class:`InferencePipeline` is the serving-layer entry point —
submit images, run them as micro-batches, read results.
"""

from .parallel import (get_num_threads, num_threads, parallel_map,
                       set_num_threads, submit_task)
from .pipeline import (DiscardedError, InferencePipeline, PendingResult,
                       PipelineHooks)
from .tiling import (TilePlan, TileSpec, plan_tiles, tile_view,
                     tiled_super_resolve)
from .tta import DIHEDRAL_TRANSFORMS, self_ensemble

__all__ = [
    "DIHEDRAL_TRANSFORMS", "self_ensemble", "tiled_super_resolve",
    "TilePlan", "TileSpec", "plan_tiles", "tile_view",
    "DiscardedError", "InferencePipeline", "PendingResult", "PipelineHooks",
    "get_num_threads", "set_num_threads", "num_threads", "parallel_map",
    "submit_task",
]
