"""SCALES binary convolution and linear layers (Fig. 8).

These are drop-in replacements for :class:`repro.nn.Conv2d` /
:class:`repro.nn.Linear` inside the body blocks of an SR network:

* activations are binarized with the layer-wise scaling factor (LSF) and
  channel-wise learnable threshold (Eq. 1);
* weights are binarized per output channel (``mean |w| * sign(w)``);
* the binary conv output is re-scaled by the spatial branch (Fig. 6) and,
  for convolutions, the channel branch (Fig. 7);
* a full-precision skip connection wraps the convolution (following
  Bi-Real Net / E2FIF), keeping an end-to-end FP information flow.

Component flags (``use_lsf`` / ``use_spatial`` / ``use_channel``) exist so
the ablation of Table V can toggle each piece independently.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import grad as G
from ..grad import Tensor
from ..nn import Module, Parameter, init
from .channel import ChannelRescale
from .lsf import LSFBinarizer2d, LSFBinarizerTokens
from .spatial import SpatialRescale2d, SpatialRescaleTokens
from .ste import sign_ste
from .weight import binarize_weight

Adaptability = Dict[str, object]


class BinaryLayerBase(Module):
    """Common interface shared by every binary layer in this repo.

    ``adaptability()`` feeds the Table I reproduction; ``binary = True``
    tells the cost model the main matmul runs on 1-bit operands.
    """

    binary = True

    @classmethod
    def adaptability(cls) -> Adaptability:
        raise NotImplementedError


class SCALESBinaryConv2d(BinaryLayerBase):
    """Binary conv with LSF + spatial + channel re-scaling (Fig. 8a)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True,
                 use_lsf: bool = True, use_spatial: bool = True,
                 use_channel: bool = True, skip: bool = True,
                 channel_kernel_size: int = 5, spatial_kernel_size: int = 1):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.use_lsf = use_lsf
        self.use_spatial = use_spatial
        # The channel re-scale multiplies the conv *output* (Fig. 7), so the
        # branch only applies when the channel count is preserved — true for
        # every body conv the paper binarizes; auto-disabled otherwise
        # (e.g. RDN dense layers that grow channels).
        self.use_channel = use_channel and in_channels == out_channels
        self.skip = skip and stride == 1 and in_channels == out_channels
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        if use_lsf:
            self.binarizer = LSFBinarizer2d(in_channels)
        if self.use_spatial:
            self.spatial = SpatialRescale2d(in_channels, spatial_kernel_size,
                                            stride=stride)
        if self.use_channel:
            self.channel = ChannelRescale(in_channels, channel_kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        xb = self.binarizer(x) if self.use_lsf else sign_ste(x)
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        if self.use_spatial:
            out = out * self.spatial(x)
        if self.use_channel:
            out = out * self.channel(x)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls) -> Adaptability:
        return {"method": "SCALES (ours)", "spatial": True, "channel": True,
                "layer": True, "image": True, "hw_cost": "Low"}


class SCALESBinaryLinear(BinaryLayerBase):
    """Binary linear with LSF + spatial (token) re-scaling (Fig. 8b).

    Channel re-scaling is intentionally absent: LayerNorm already removes
    channel-to-channel variation in transformer SR networks (Sec. III-B).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 use_lsf: bool = True, use_spatial: bool = True, skip: bool = False):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.use_lsf = use_lsf
        self.use_spatial = use_spatial
        self.skip = skip and in_features == out_features
        self.weight = Parameter(init.trunc_normal((out_features, in_features), std=0.02))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        if use_lsf:
            self.binarizer = LSFBinarizerTokens(in_features)
        if use_spatial:
            self.spatial = SpatialRescaleTokens(in_features)

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        xb = self.binarizer(x) if self.use_lsf else sign_ste(x)
        w_hat = binarize_weight(self.weight)
        flat = x.ndim != 2
        shape_prefix = x.shape[:-1]
        xb2 = G.reshape(xb, (-1, self.in_features)) if flat else xb
        out = xb2 @ G.transpose(w_hat, (1, 0))
        if self.bias is not None:
            out = out + self.bias
        if flat:
            out = G.reshape(out, shape_prefix + (self.out_features,))
        if self.use_spatial:
            out = out * self.spatial(x)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls) -> Adaptability:
        return SCALESBinaryConv2d.adaptability()
