"""Random patch sampling for training.

The paper trains on 48x48 input patches with batch size 16; the sampler
cuts aligned LR/HR patch pairs (the HR patch is ``scale`` times larger)
and returns NCHW batches ready for the network.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .datasets import SRPair


def _to_nchw(images: Sequence[np.ndarray]) -> np.ndarray:
    return np.stack([img.transpose(2, 0, 1) for img in images])


class PatchSampler:
    """Samples aligned (LR, HR) patch batches from a pool of SR pairs."""

    def __init__(self, pairs: List[SRPair], patch_size: int = 48,
                 batch_size: int = 16, seed: int = 0,
                 augment: bool = True, lr_multiple: int = 1):
        if not pairs:
            raise ValueError("empty training pool")
        self.pairs = pairs
        self.patch_size = patch_size
        self.batch_size = batch_size
        self.augment = augment
        self.lr_multiple = max(lr_multiple, 1)
        if patch_size % self.lr_multiple:
            raise ValueError("patch_size must be divisible by lr_multiple")
        self.rng = np.random.default_rng(seed)
        for pair in pairs:
            if pair.lr.shape[0] < patch_size or pair.lr.shape[1] < patch_size:
                raise ValueError(
                    f"LR image {pair.lr.shape[:2]} smaller than patch {patch_size}")

    def _sample_one(self) -> Tuple[np.ndarray, np.ndarray]:
        pair = self.pairs[int(self.rng.integers(len(self.pairs)))]
        scale = pair.scale
        ps = self.patch_size
        max_y = pair.lr.shape[0] - ps
        max_x = pair.lr.shape[1] - ps
        y = int(self.rng.integers(max_y + 1))
        x = int(self.rng.integers(max_x + 1))
        lr = pair.lr[y:y + ps, x:x + ps]
        hr = pair.hr[y * scale:(y + ps) * scale, x * scale:(x + ps) * scale]
        if self.augment:
            if self.rng.random() < 0.5:
                lr, hr = lr[:, ::-1], hr[:, ::-1]
            if self.rng.random() < 0.5:
                lr, hr = lr[::-1], hr[::-1]
            k = int(self.rng.integers(4))
            if k:
                lr, hr = np.rot90(lr, k), np.rot90(hr, k)
        return np.ascontiguousarray(lr), np.ascontiguousarray(hr)

    def batch(self, batch_size: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """One training batch: (LR NCHW, HR NCHW)."""
        n = batch_size if batch_size is not None else self.batch_size
        samples = [self._sample_one() for _ in range(n)]
        return (_to_nchw([s[0] for s in samples]),
                _to_nchw([s[1] for s in samples]))
