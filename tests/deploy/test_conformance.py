"""Zoo-wide deploy conformance matrix.

For every deployable ``(architecture, scheme)`` entry of the registry
(tiny configs), the packed round-trip must hold exactly:

* ``save_artifact`` -> ``load_artifact`` -> forward is **bit-identical**
  to the live ``compile_model`` output;
* the live compiled output matches the float training graph to float
  tolerance;
* the compiled output matches the committed golden fixture for that
  entry (``golden_conformance.json``), so a drift names the exact
  architecture x scheme cell that moved.

Regenerate the golden fixtures after an *intentional* numeric change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/deploy/test_conformance.py -q
"""

import atexit
import json
import os
import shutil
import tempfile
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro import grad as G
from repro.deploy import (compile_model, deployable_entries, load_artifact,
                          save_artifact)
from repro.grad import Tensor, no_grad
from repro.models import build_model
from repro.nn import init

GOLDEN_PATH = Path(__file__).parent / "golden_conformance.json"
UPDATE_GOLDEN = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"
# Module-level dir (not tmp_path) so the lru_cache'd runner can share
# artifacts across the parametrized tests; removed at interpreter exit.
_ARTIFACT_DIR = Path(tempfile.mkdtemp(prefix="repro_conformance_"))
atexit.register(shutil.rmtree, _ARTIFACT_DIR, ignore_errors=True)

ENTRIES = deployable_entries(scales=(2,), preset="tiny")


def _entry_id(entry) -> str:
    return f"{entry.architecture}-{entry.scheme}"


def _entry_key(entry) -> str:
    return f"{entry.architecture}|{entry.scheme}|x{entry.scale}|{entry.preset}"


def _perturb_learnables(model) -> None:
    """Move LSF thresholds/scales off their init values (as training
    would), so the conformance input exercises non-trivial thresholds."""
    rng = np.random.default_rng(5)
    for name, param in model.named_parameters():
        if name.endswith("binarizer.alpha"):
            param.data[...] = 0.4 + 0.2 * rng.random(param.data.shape)
        elif name.endswith("binarizer.beta"):
            param.data[...] = 0.1 * rng.standard_normal(param.data.shape)


@lru_cache(maxsize=None)
def _run_entry(key: str):
    """(float_ref, live_out, loaded_out, artifact_path) for one cell."""
    arch, scheme, scale, preset = key.split("|")
    scale = int(scale[1:])
    with G.default_dtype("float32"):
        init.seed(1234)
        model = build_model(arch, scale=scale, scheme=scheme, preset=preset)
        _perturb_learnables(model)
        model.eval()
        x = np.random.default_rng(99).random((1, 3, 8, 8)).astype(np.float32)
        with no_grad():
            ref = model(Tensor(x)).data
        compiled = compile_model(model)
        with no_grad():
            live = compiled(Tensor(x)).data
        path = _ARTIFACT_DIR / f"conformance_{arch}_{scheme}.rbd.npz"
        save_artifact(compiled, path)
        loaded = load_artifact(path)
        with no_grad():
            back = loaded(Tensor(x)).data
    return ref, live, back, path


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
class TestConformanceMatrix:
    def test_round_trip_bit_identical(self, entry):
        _, live, back, _ = _run_entry(_entry_key(entry))
        np.testing.assert_array_equal(
            back, live,
            err_msg=f"saved-then-loaded forward drifted from the live "
                    f"compiled model for {_entry_id(entry)}")

    def test_compiled_matches_float_reference(self, entry):
        ref, live, _, _ = _run_entry(_entry_key(entry))
        np.testing.assert_allclose(
            live, ref, rtol=0, atol=1e-4,
            err_msg=f"compiled output drifted from the float graph for "
                    f"{_entry_id(entry)}")

    def test_artifact_ships_no_float_binary_weights(self, entry):
        _, _, _, path = _run_entry(_entry_key(entry))
        with np.load(path) as data:
            meta = json.loads(str(data["__meta__"][()]))
            packed_paths = {layer["path"] for layer in meta["layers"]}
            for key in data.files:
                if not key.startswith("state:"):
                    continue
                param = key[len("state:"):]
                parent = param.rsplit(".", 1)[0] if "." in param else ""
                assert parent not in packed_paths, (
                    f"float parameter {param} of packed layer shipped in "
                    f"artifact for {_entry_id(entry)}")


class TestGoldenFixtures:
    """Committed per-entry output fingerprints.

    A conformance failure above says *that* something drifted; these say
    *what* changed numerically, per architecture x scheme, against the
    committed baseline.
    """

    @staticmethod
    def _fingerprint(out: np.ndarray) -> dict:
        flat = np.asarray(out, dtype=np.float64).ravel()
        idx = np.linspace(0, flat.size - 1, 8).astype(int)
        return {"shape": list(out.shape),
                "mean": float(flat.mean()),
                "std": float(flat.std()),
                "samples": [float(v) for v in flat[idx]]}

    @pytest.mark.skipif(not UPDATE_GOLDEN and not GOLDEN_PATH.exists(),
                        reason="golden fixture file missing")
    @pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
    def test_matches_golden(self, entry):
        key = _entry_key(entry)
        _, live, _, _ = _run_entry(key)
        got = self._fingerprint(live)
        if UPDATE_GOLDEN:
            golden = (json.loads(GOLDEN_PATH.read_text())
                      if GOLDEN_PATH.exists() else {})
            golden[key] = got
            GOLDEN_PATH.write_text(json.dumps(golden, indent=1,
                                              sort_keys=True) + "\n")
            pytest.skip("golden fixture regenerated")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert key in golden, (
            f"no golden fixture for {key}; regenerate with "
            f"REPRO_UPDATE_GOLDEN=1")
        want = golden[key]
        assert got["shape"] == want["shape"], f"{key}: output shape changed"
        np.testing.assert_allclose(
            [got["mean"], got["std"]], [want["mean"], want["std"]],
            rtol=0, atol=2e-5,
            err_msg=f"{key}: output statistics drifted from golden fixture")
        np.testing.assert_allclose(
            got["samples"], want["samples"], rtol=0, atol=2e-5,
            err_msg=f"{key}: sampled output values drifted from golden "
                    f"fixture")

    def test_golden_file_covers_every_deployable_entry(self):
        if not GOLDEN_PATH.exists():
            pytest.skip("golden fixture file missing")
        golden = json.loads(GOLDEN_PATH.read_text())
        missing = {_entry_key(e) for e in ENTRIES} - set(golden)
        assert not missing, (
            f"golden fixtures missing for {sorted(missing)}; regenerate "
            f"with REPRO_UPDATE_GOLDEN=1")
