"""Learning-rate schedules.

The paper halves the learning rate every 200 epochs starting from 2e-4;
:class:`StepLR` reproduces that shape on a per-step granularity.
"""

from __future__ import annotations


class StepLR:
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> float:
        """Advance one step and return the current learning rate."""
        self._count += 1
        decays = self._count // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from base lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer, total_steps: int, min_lr: float = 0.0):
        import math
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self._math = math
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> float:
        self._count = min(self._count + 1, self.total_steps)
        cos = 0.5 * (1 + self._math.cos(self._math.pi * self._count / self.total_steps))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
        return self.optimizer.lr
