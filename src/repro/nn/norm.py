"""Normalization layers.

BatchNorm matters to the reproduction: the paper's Table V attributes part
of SCALES' OPs saving to *removing* BatchNorm from SRResNet-E2FIF, and BTM
is motivated by the FP cost of BN in BNNs.  LayerNorm is what removes
channel-to-channel variation in transformer SR networks (Sec. III-B).
"""

from __future__ import annotations

import numpy as np

from .. import grad as G
from ..grad import Tensor
from . import init
from .module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalization over NCHW tensors with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = G.mean(x, axis=(0, 2, 3), keepdims=True)
            varv = G.mean((x - mu) * (x - mu), axis=(0, 2, 3), keepdims=True)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mu.data.reshape(-1))
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * varv.data.reshape(-1))
            x_hat = (x - mu) / G.sqrt(varv + self.eps)
        else:
            mu = self.running_mean.reshape(1, -1, 1, 1)
            varv = self.running_var.reshape(1, -1, 1, 1)
            x_hat = (x - Tensor(mu)) / Tensor(np.sqrt(varv + self.eps))
        w = G.reshape(self.weight, (1, self.num_features, 1, 1))
        b = G.reshape(self.bias, (1, self.num_features, 1, 1))
        return x_hat * w + b


class LayerNorm(Module):
    """Layer normalization over the last axis (transformer token norm)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = G.mean(x, axis=-1, keepdims=True)
        centered = x - mu
        varv = G.mean(centered * centered, axis=-1, keepdims=True)
        x_hat = centered / G.sqrt(varv + self.eps)
        return x_hat * self.weight + self.bias
