"""The committed public surface of ``repro.api`` — CI's api-surface gate.

``tests/api/public_surface.txt`` is the contract: one exported name per
line, sorted.  Growing the surface means committing the new name there
(a conscious, reviewable act); a name disappearing or appearing without
the file changing fails this test.
"""

from pathlib import Path

import repro
import repro.api

SURFACE_FILE = Path(__file__).parent / "public_surface.txt"


def test_all_matches_committed_surface():
    committed = SURFACE_FILE.read_text().split()
    assert sorted(repro.api.__all__) == committed, (
        "repro.api.__all__ drifted from tests/api/public_surface.txt; "
        "update the file if the change is intentional")


def test_surface_is_sorted_and_unique():
    committed = SURFACE_FILE.read_text().split()
    assert committed == sorted(set(committed))


def test_every_name_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name


def test_package_exports_every_subpackage():
    # satellite of the same PR: repro.__all__ lists every subpackage
    expected = {"analysis", "api", "binarize", "cost", "data", "deploy",
                "experiments", "grad", "infer", "metrics", "models", "nn",
                "optim", "perf", "serve", "train", "viz"}
    assert expected <= set(repro.__all__)
    for name in expected:
        assert getattr(repro, name, None) is not None, name


def test_api_docstring_names_the_lifecycle():
    for term in ("ModelSpec", "EngineConfig", "Engine", "InferResult"):
        assert term in repro.api.__doc__
