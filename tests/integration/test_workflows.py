"""Cross-module workflows a downstream user would actually run.

Each test chains several subsystems end to end: train -> checkpoint ->
reload, train -> compile -> deploy, synthetic -> files -> evaluation.
"""

import numpy as np
import pytest

from repro import grad as G
from repro.data import benchmark_suite, folder_suite, training_pool
from repro.deploy import compile_model
from repro.infer import self_ensemble, tiled_super_resolve
from repro.metrics import psnr_y
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer, evaluate, super_resolve
from repro.viz import write_png


@pytest.fixture(scope="module")
def trained_scales_model():
    """One small trained SCALES SRResNet shared by the workflow tests."""
    with G.default_dtype("float32"):
        init.seed(42)
        model = build_model("srresnet", scale=2, scheme="scales",
                            preset="tiny", light_tail=True, head_kernel=3)
        pool = training_pool(scale=2, n_images=4, size=(64, 64))
        Trainer(model, pool, TrainConfig(steps=30, batch_size=4,
                                         patch_size=16, seed=7)).fit()
    return model


class TestCheckpointWorkflow:
    def test_save_reload_identical_outputs(self, trained_scales_model, tmp_path):
        path = str(tmp_path / "model.npz")
        trained_scales_model.save(path)
        with G.default_dtype("float32"):
            init.seed(0)  # different init: loading must overwrite it
            fresh = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny", light_tail=True, head_kernel=3)
            fresh.load(path)
            img = np.random.default_rng(1).random((8, 8, 3)).astype(np.float32)
            np.testing.assert_allclose(super_resolve(fresh, img),
                                       super_resolve(trained_scales_model, img),
                                       atol=1e-6)

    def test_resume_training_from_checkpoint(self, trained_scales_model, tmp_path):
        path = str(tmp_path / "model.npz")
        trained_scales_model.save(path)
        with G.default_dtype("float32"):
            init.seed(3)
            resumed = build_model("srresnet", scale=2, scheme="scales",
                                  preset="tiny", light_tail=True, head_kernel=3)
            resumed.load(path)
            pool = training_pool(scale=2, n_images=4, size=(64, 64))
            history = Trainer(resumed, pool,
                              TrainConfig(steps=5, batch_size=4, patch_size=16,
                                          seed=11, calibrate=False)).fit()
        assert np.isfinite(history).all()


class TestDeploymentWorkflow:
    def test_train_compile_evaluate(self, trained_scales_model):
        with G.default_dtype("float32"):
            deployed = compile_model(trained_scales_model)
            pairs = benchmark_suite("b100", 2, 2, (32, 32))
            float_result = evaluate(trained_scales_model, pairs)
            packed_result = evaluate(deployed, pairs)
        assert abs(float_result.psnr - packed_result.psnr) < 1e-3

    def test_self_ensemble_over_packed_model(self, trained_scales_model):
        with G.default_dtype("float32"):
            deployed = compile_model(trained_scales_model)
            img = np.random.default_rng(2).random((8, 8, 3)).astype(np.float32)
            out = self_ensemble(deployed, img, n_transforms=4)
        assert out.shape == (16, 16, 3)
        assert np.isfinite(out).all()

    def test_tiled_inference_over_packed_model(self, trained_scales_model):
        with G.default_dtype("float32"):
            deployed = compile_model(trained_scales_model)
            img = np.random.default_rng(3).random((24, 24, 3)).astype(np.float32)
            whole = np.clip(super_resolve(deployed, img), 0, 1)
            tiled = tiled_super_resolve(deployed, img, 2, tile=16, overlap=8)
        assert np.abs(whole - tiled).mean() < 0.02


class TestFileBasedEvaluation:
    def test_folder_suite_matches_synthetic_suite(self, trained_scales_model,
                                                  tmp_path):
        # Writing the suite to PNG and reading it back must reproduce the
        # in-memory evaluation up to 8-bit quantization of the HR images.
        from repro.data import hr_images

        images = hr_images("b100", 2, (32, 32))
        for i, img in enumerate(images):
            write_png(tmp_path / f"{i}.png", img)
        with G.default_dtype("float32"):
            direct = evaluate(trained_scales_model,
                              benchmark_suite("b100", 2, 2, (32, 32)))
            from_files = evaluate(trained_scales_model,
                                  folder_suite(tmp_path, scale=2))
        assert abs(direct.psnr - from_files.psnr) < 0.2
