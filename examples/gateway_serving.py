"""Serve a model zoo over HTTP: export artifacts, start a gateway,
fire concurrent network traffic, drain gracefully.

The network front door on top of ``examples/model_server.py``'s
in-process story:

1. export two packed deploy artifacts into one directory — the zoo —
   through ``Engine.from_spec(...).export(...)``;
2. start a :class:`repro.gateway.Gateway`: a multi-process worker pool
   (one ``ModelServer`` per worker) behind one HTTP front door, with
   consistent-hash routing over the model key so each model's traffic
   stays on a worker with warm caches;
3. fire concurrent requests from several :class:`GatewayClient`
   threads plus a short seeded open-loop Poisson run
   (:func:`repro.gateway.run_open_loop`);
4. verify **zero dropped** and **zero incorrect** responses — every
   output bit-identical to direct ``Engine.from_artifact(...).infer``
   on the same artifact — then close the gateway (graceful drain) and
   print the stats.

CI runs this as the gateway smoke step.  Run:
``PYTHONPATH=src python examples/gateway_serving.py``
"""

import tempfile
import threading

import numpy as np

from repro import grad as G
from repro.api import Engine, EngineConfig, ModelSpec
from repro.gateway import Gateway, GatewayClient, GatewayConfig, run_open_loop
from repro.serve import ServerConfig

ZOO = (
    ModelSpec("srresnet", scheme="scales", scale=2),
    ModelSpec("edsr", scheme="e2fif", scale=2),
)
SHAPE = (16, 16, 3)
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 25
DISTINCT_PER_MODEL = 4


def export_zoo(directory):
    print("Exporting the zoo (2 packed artifacts)...")
    paths = {}
    for spec in ZOO:
        engine = Engine.from_spec(
            spec, config=EngineConfig(seed=0, dtype="float32"))
        path = engine.export(f"{directory}/{spec.artifact_name()}")
        engine.close()
        paths[spec.route] = path
        print(f"  {spec.route}  ->  {path.name}")
    return paths


def make_inputs():
    inputs = {}
    for c, spec in enumerate(ZOO):
        rng = np.random.default_rng(c)
        inputs[spec.route] = [
            rng.random(SHAPE).astype(np.float32)
            for _ in range(DISTINCT_PER_MODEL)
        ]
    return inputs


def main() -> None:
    zoo_dir = tempfile.mkdtemp(prefix="repro_gateway_zoo_")
    with G.default_dtype("float32"):
        artifact_paths = export_zoo(zoo_dir)
    inputs = make_inputs()

    print("\nComputing references via direct Engine.from_artifact runs...")
    references = {}
    for route, path in artifact_paths.items():
        engine = Engine.from_artifact(path, EngineConfig(dtype="float32"))
        references[route] = [
            r.unwrap() for r in engine.infer_many(inputs[route])]
        engine.close()

    config = GatewayConfig(
        n_workers=2,
        quota_rate_per_s=500.0,  # generous: metering on, nobody shed
        server=ServerConfig(latency_budget_s=0.005, dtype="float32"),
    )
    print(f"\nStarting the gateway ({config.n_workers} workers)...")
    with Gateway(zoo_dir, config) as gateway:
        host, port = gateway.address
        print(f"  front door: http://{host}:{port}")
        routes_served = sorted(f"{a}/{s}/x{x}"
                               for a, s, x in gateway.catalog)
        print(f"  models: {', '.join(routes_served)}")

        total = N_CLIENTS * REQUESTS_PER_CLIENT
        print(f"\nFiring {total} requests from {N_CLIENTS} "
              f"client threads over HTTP...")
        routes = sorted(inputs)
        results = {}

        def client_thread(worker):
            client = GatewayClient(gateway.address,
                                   client_id=f"client-{worker}")
            out = []
            for i in range(REQUESTS_PER_CLIENT):
                route = routes[(worker + i) % len(routes)]
                idx = (worker * 7 + i) % DISTINCT_PER_MODEL
                out.append((route, idx,
                            client.infer(inputs[route][idx], route)))
            results[worker] = out

        threads = [threading.Thread(target=client_thread, args=(w,))
                   for w in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        dropped = incorrect = served = 0
        for worker_results in results.values():
            for route, idx, result in worker_results:
                if not result.ok:
                    dropped += 1
                elif not np.array_equal(result.output,
                                        references[route][idx]):
                    incorrect += 1
                else:
                    served += 1
        print(f"  served={served} dropped={dropped} incorrect={incorrect}")
        if dropped or incorrect or served != total:
            raise SystemExit(
                f"FAIL: {dropped} dropped / {incorrect} incorrect of {total}")

        print("\nOpen-loop Poisson load (seeded, 2 seconds)...")
        report = run_open_loop(
            gateway.address, routes[0], inputs[routes[0]],
            rate_rps=25.0, duration_s=2.0, seed=0)
        print(f"  offered {report.offered_rps:.1f} rps -> "
              f"goodput ratio {report.goodput_ratio:.2f}, "
              f"p99 {report.p99_ms:.1f} ms, "
              f"shed={report.shed} errors={report.errors}")
        if report.errors:
            raise SystemExit(f"FAIL: {report.errors} errors under load")

        stats = gateway.stats()
        print(f"\n  gateway counters: {stats['gateway']}")
        print("  per-worker coalesced:", {
            wid: ws["server"]["coalesced"]
            for wid, ws in stats["workers"].items()})
        print("\nDraining the gateway (graceful close)...")
    print("OK: all responses bit-identical, nothing dropped")


if __name__ == "__main__":
    main()
