"""Layer-wise scaling factor + channel-wise threshold (Sec. IV-A).

Each binary layer owns one learnable scalar ``alpha`` (the layer-wise
scaling factor capturing layer-to-layer variation) and a learnable
per-channel threshold ``beta`` (ReActNet-style, capturing the channel-wise
shift visible in Fig. 3d).  Both are trained end-to-end through the
Eq. 2 / Eq. 3 straight-through gradients in :mod:`repro.binarize.ste`.

Data-dependent calibration
--------------------------
The paper trains for 300 epochs, long enough for ``alpha``/``beta`` to find
each layer's activation statistics from their generic init (alpha = 1,
beta = 0).  At this repo's reduced step budgets that search dominates the
run, so :func:`calibrate_lsf` seeds both parameters from one forward pass:

* ``beta``  <- per-channel mean of the pre-binarization activations (the
  centering E2FIF obtains implicitly from its BatchNorm), and
* ``alpha`` <- ``mean |x - beta|``, the L1-optimal binary scale of
  XNOR-Net (it minimizes ``||(x - beta) - alpha * sign(x - beta)||_1``).

Calibration happens *inside* the forward pass (each binarizer calibrates
before producing its output), so downstream layers see statistics computed
with every upstream binarizer already calibrated.  Training afterwards
refines both parameters exactly as in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..grad import Tensor, no_grad
from ..nn import Module, Parameter
from .ste import lsf_binarize


class _LSFBinarizerBase(Module):
    """Shared calibration plumbing for the two binarizer layouts."""

    def __init__(self) -> None:
        super().__init__()
        self._calibrating = False
        self._calibrate_alpha = False

    def _channel_stats(self, data: np.ndarray) -> Tuple[np.ndarray, float]:
        """Return (per-channel mean shaped like beta, scalar mean |x - mean|)."""
        raise NotImplementedError

    def _maybe_calibrate(self, x: Tensor) -> None:
        if not self._calibrating:
            return
        beta, alpha = self._channel_stats(np.asarray(x.data))
        self.beta.data[...] = beta
        if self._calibrate_alpha:
            self.alpha.data[...] = max(float(alpha), 1e-3)
        self._calibrating = False

    def forward(self, x: Tensor) -> Tensor:
        self._maybe_calibrate(x)
        return lsf_binarize(x, self.alpha, self.beta)


class LSFBinarizer2d(_LSFBinarizerBase):
    """Activation binarizer for NCHW feature maps."""

    def __init__(self, channels: int, init_alpha: float = 1.0):
        super().__init__()
        self.channels = channels
        self.alpha = Parameter(np.full((1, 1, 1, 1), float(init_alpha)))
        self.beta = Parameter(np.zeros((1, channels, 1, 1)))

    def _channel_stats(self, data: np.ndarray) -> Tuple[np.ndarray, float]:
        beta = data.mean(axis=(0, 2, 3)).reshape(1, -1, 1, 1)
        alpha = float(np.abs(data - beta).mean())
        return beta, alpha


class LSFBinarizerTokens(_LSFBinarizerBase):
    """Activation binarizer for (B, L, C) token tensors."""

    def __init__(self, channels: int, init_alpha: float = 1.0):
        super().__init__()
        self.channels = channels
        # Trailing-axis shapes broadcast over both (B, L, C) and (B, C).
        self.alpha = Parameter(np.full((1,), float(init_alpha)))
        self.beta = Parameter(np.zeros((channels,)))

    def _channel_stats(self, data: np.ndarray) -> Tuple[np.ndarray, float]:
        flat = data.reshape(-1, data.shape[-1])
        beta = flat.mean(axis=0)
        alpha = float(np.abs(flat - beta).mean())
        return beta, alpha


def calibrate_lsf(model: Module, batch: np.ndarray,
                  calibrate_alpha: bool = False) -> int:
    """Data-dependent init of every LSF binarizer in ``model``.

    Runs one no-grad forward pass over ``batch`` (an NCHW ndarray); each
    :class:`LSFBinarizer2d` / :class:`LSFBinarizerTokens` it reaches resets
    ``beta`` to the per-channel mean of its input, and — when
    ``calibrate_alpha`` is true — ``alpha`` to the L1-optimal scale
    ``mean |x - beta|`` (XNOR-Net).  Beta-only is the default: centering the
    threshold is what short training budgets cannot recover on their own,
    while the layer-wise scale trains quickly from its generic init and
    seeding it too aggressively was measurably worse in our sweeps (see
    DESIGN.md).  Returns the number of binarizers calibrated.  A model
    without LSF binarizers is left untouched (and the forward pass is
    skipped).
    """
    binarizers = [m for m in model.modules() if isinstance(m, _LSFBinarizerBase)]
    if not binarizers:
        return 0
    for b in binarizers:
        b._calibrating = True
        b._calibrate_alpha = calibrate_alpha
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.asarray(batch)))
    finally:
        model.train(was_training)
        # Binarizers never reached by this input shape stay uncalibrated.
        for b in binarizers:
            b._calibrating = False
    return len(binarizers)
