"""The merged capability registry: can this cell compile, export, serve?

Three previously-separate sources answered parts of that question:

* :func:`repro.deploy.registry.classify_recipe` / ``deploy_registry``
  — compile *coverage* (``full`` / ``partial`` / ``none``) probed
  against the compiler table;
* the packed-engine backend switch (``fast`` / ``reference``,
  ``REPRO_PACKED_IMPL``);
* the autograd conv backend switch (``fast`` / ``reference``,
  ``REPRO_CONV_IMPL``).

:class:`Capability` merges them into one answer the
:class:`repro.api.Engine` consults *before* doing work: ``compile()``
on a cell whose capability says ``can_compile == False`` fails
immediately with the registry's own explanation, instead of deep inside
``compile_model``.  Export and serving ride on compilation — an
artifact exists iff the cell compiles, and the model server admits an
artifact iff its recipe classifies as deployable — so the three flags
are currently aligned by construction; they are kept separate in the
type because future backends (e.g. a remote serving target) can split
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..deploy.engine import _BACKENDS as _PACKED_BACKENDS
from ..deploy.registry import DeployEntry, classify_recipe, deploy_registry
from ..grad.conv import _BACKENDS as _CONV_BACKENDS
from .results import EngineError
from .spec import ModelSpec

__all__ = ["Capability", "capability", "capability_matrix"]


@dataclass(frozen=True)
class Capability:
    """Everything the facade knows about one zoo cell, up front."""

    architecture: str
    scheme: str
    scale: int
    preset: str
    #: compile coverage: ``"full"`` | ``"partial"`` | ``"none"``
    coverage: str
    #: the registry's human-readable explanation
    detail: str
    #: packed-layer backends available on this build
    packed_backends: Tuple[str, ...] = tuple(_PACKED_BACKENDS)
    #: autograd conv backends available on this build
    conv_backends: Tuple[str, ...] = tuple(_CONV_BACKENDS)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.architecture, self.scheme, self.scale)

    @property
    def can_compile(self) -> bool:
        """``compile_model`` succeeds (>= 1 layer packs)."""
        return self.coverage in ("full", "partial")

    @property
    def can_export(self) -> bool:
        """``save_artifact`` produces a loadable artifact."""
        return self.can_compile

    @property
    def can_serve(self) -> bool:
        """``ModelServer`` admits this cell's artifact."""
        return self.can_compile

    def require(self, action: str = "compile") -> None:
        """Raise :class:`EngineError` when this cell cannot ``action``."""
        allowed = {"compile": self.can_compile, "export": self.can_export,
                   "serve": self.can_serve}
        if action not in allowed:
            raise KeyError(f"unknown capability action {action!r}")
        if not allowed[action]:
            raise EngineError(
                f"{self.architecture}/{self.scheme}/x{self.scale} cannot "
                f"{action}: coverage is {self.coverage!r} ({self.detail})")


def _from_entry(entry: DeployEntry) -> Capability:
    return Capability(architecture=entry.architecture, scheme=entry.scheme,
                      scale=entry.scale, preset=entry.preset,
                      coverage=entry.coverage, detail=entry.detail)


def capability(spec: ModelSpec) -> Capability:
    """The capability record for one spec (validated, never raises for
    deployability — inspect the flags, or call :meth:`Capability.require`)."""
    spec = ModelSpec.coerce(spec)
    return _from_entry(classify_recipe(spec.to_recipe()))


def capability_matrix(scales: Sequence[int] = (2,),
                      preset: str = "tiny") -> List[Capability]:
    """Capability records for every cell the zoo builds — the
    deploy registry's matrix lifted into the public API."""
    return [_from_entry(e) for e in deploy_registry(scales, preset)]
