"""Tests for the classification substrate (motivation-study support)."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.models import resnet18
from repro.train.classification import (
    CLASS_KINDS,
    ClassifierTrainer,
    SyntheticClassificationDataset,
    accuracy,
    cross_entropy,
)

from ..helpers import rng


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(5))

    def test_confident_correct_is_small(self):
        logits = np.full((2, 3), -10.0)
        logits[:, 1] = 10.0
        loss = cross_entropy(Tensor(logits), np.array([1, 1]))
        assert float(loss.data) < 1e-6

    def test_confident_wrong_is_large(self):
        logits = np.full((1, 3), -10.0)
        logits[:, 0] = 10.0
        loss = cross_entropy(Tensor(logits), np.array([2]))
        assert float(loss.data) > 10.0

    def test_gradient_is_softmax_minus_onehot(self):
        x = Tensor(rng(0).normal(size=(3, 4)), requires_grad=True)
        labels = np.array([0, 1, 2])
        cross_entropy(x, labels).backward()
        probs = np.exp(x.data - x.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.eye(4)[labels]
        np.testing.assert_allclose(x.grad, (probs - onehot) / 3, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))

    def test_numerical_stability_large_logits(self):
        loss = cross_entropy(Tensor(np.array([[1e4, -1e4]])), np.array([0]))
        assert np.isfinite(float(loss.data))


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5


class TestDataset:
    def test_size_and_labels(self):
        ds = SyntheticClassificationDataset(n_per_class=3, image_size=16)
        assert len(ds) == 3 * len(CLASS_KINDS)
        assert ds.num_classes == len(CLASS_KINDS)
        assert set(np.unique(ds.labels)) == set(range(len(CLASS_KINDS)))

    def test_batch_shapes(self):
        ds = SyntheticClassificationDataset(n_per_class=2, image_size=16)
        batch = ds.batch(5)
        assert batch.images.shape == (5, 3, 16, 16)
        assert batch.labels.shape == (5,)

    def test_determinism(self):
        a = SyntheticClassificationDataset(n_per_class=2, image_size=16, seed=3)
        b = SyntheticClassificationDataset(n_per_class=2, image_size=16, seed=3)
        np.testing.assert_array_equal(a.images, b.images)


class TestClassifierTrainer:
    def test_training_improves_over_chance(self):
        with G.default_dtype("float32"):
            ds = SyntheticClassificationDataset(n_per_class=4, image_size=16,
                                                kinds=("gradient", "checkerboard"))
            model = resnet18(num_classes=2, base_width=8)
            trainer = ClassifierTrainer(model, ds, lr=2e-3, batch_size=8)
            trainer.fit(steps=25)
            # Two visually trivial classes: accuracy must beat chance.
            assert trainer.evaluate(n_batches=4) > 0.6

    def test_loss_history_recorded(self):
        with G.default_dtype("float32"):
            ds = SyntheticClassificationDataset(n_per_class=2, image_size=16)
            model = resnet18(num_classes=ds.num_classes, base_width=8)
            trainer = ClassifierTrainer(model, ds, batch_size=4)
            trainer.fit(steps=3)
            assert len(trainer.history) == 3
            assert all(np.isfinite(v) for v in trainer.history)

    def test_evaluate_restores_mode(self):
        with G.default_dtype("float32"):
            ds = SyntheticClassificationDataset(n_per_class=2, image_size=16)
            model = resnet18(num_classes=ds.num_classes, base_width=8)
            trainer = ClassifierTrainer(model, ds, batch_size=4)
            model.train()
            trainer.evaluate(n_batches=1)
            assert model.training
