"""Channel-wise re-scaling (Sec. IV-C, Fig. 7).

GlobalAvgPool aggregates spatial information, a Conv1d with kernel size 5
slides across the channel axis to capture inter-channel structure, and a
sigmoid produces one scale per channel (Eq. 5).  The branch costs only
``k`` FP parameters — the paper contrasts this with the
GlobalAvgPool-Linear-ReLU-Linear-Sigmoid block of Real-to-Binary Net,
which needs ``2 C^2 / r`` parameters (a ratio of ``2 C^2 / (r k)``,
about 1638x at C=256, r=16, k=5).
"""

from __future__ import annotations

from .. import grad as G
from ..grad import Tensor
from ..nn import Conv1d, Module


class ChannelRescale(Module):
    """GlobalAvgPool -> Conv1d(k) -> sigmoid -> (B, C, 1, 1) scales."""

    def __init__(self, channels: int, kernel_size: int = 5):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd to preserve channel count")
        self.channels = channels
        self.kernel_size = kernel_size
        self.conv = Conv1d(1, 1, kernel_size, padding=kernel_size // 2, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        b, c = x.shape[0], x.shape[1]
        pooled = G.global_avg_pool2d(x)                      # (B, C, 1, 1)
        seq = G.reshape(pooled, (b, 1, c))                   # (B, 1, C)
        mixed = self.conv(seq)                               # (B, 1, C)
        scales = G.sigmoid(G.reshape(mixed, (b, c, 1, 1)))   # (B, C, 1, 1)
        return scales

    def num_fp_parameters(self) -> int:
        """FP parameter count of the branch (= kernel size, per the paper)."""
        return self.kernel_size
