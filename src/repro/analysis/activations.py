"""Activation capture and distribution statistics (Sec. III, Figs. 1/3/4/5).

The motivation study of the paper inspects the inputs of body conv/linear
layers in FP SR networks and classifiers.  :class:`ActivationRecorder`
hooks arbitrary module types and stores their *inputs* (pre-activation,
pre-binarization — the tensors a binarizer would see); the helpers below
turn them into the per-pixel / per-channel / per-layer summaries the
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from ..grad import Tensor, no_grad
from ..nn import Module


class ActivationRecorder:
    """Record inputs (default) or outputs of selected sub-modules."""

    def __init__(self, model: Module, module_types: Tuple[Type, ...],
                 capture: str = "input", name_filter: Optional[str] = None):
        if capture not in ("input", "output"):
            raise ValueError("capture must be 'input' or 'output'")
        self.model = model
        self.capture = capture
        self.records: Dict[str, List[np.ndarray]] = {}
        self._removers = []
        for name, module in model.named_modules():
            if not isinstance(module, module_types):
                continue
            if name_filter and name_filter not in name:
                continue
            self._removers.append(
                module.register_forward_hook(self._make_hook(name)))

    def _make_hook(self, name: str):
        def hook(module, inputs, output):
            if self.capture == "input":
                value = inputs[0].data if inputs and isinstance(inputs[0], Tensor) else None
            else:
                value = output.data if isinstance(output, Tensor) else None
            if value is not None:
                self.records.setdefault(name, []).append(np.array(value))
        return hook

    def run(self, x: np.ndarray, train_mode: bool = False) -> None:
        """Forward ``x`` (NCHW array) through the model, recording.

        ``train_mode=True`` keeps batch statistics live — required when
        recording an untrained classifier whose BatchNorm running stats
        have never been fitted (the Table II study).
        """
        was_training = self.model.training
        self.model.train(train_mode)
        try:
            with no_grad():
                self.model(Tensor(x))
        finally:
            self.model.train(was_training)

    def close(self) -> None:
        for remove in self._removers:
            remove()
        self._removers.clear()

    def __enter__(self) -> "ActivationRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def layer_names(self) -> List[str]:
        return list(self.records)


@dataclass
class DistributionSummary:
    """Five-number summaries of value distributions (one row per group).

    ``groups`` is pixels, channels or layers depending on the figure; each
    row is (min, q1, median, q3, max) — the data a box plot draws.
    """

    label: str
    rows: np.ndarray = field(default_factory=lambda: np.empty((0, 5)))

    @property
    def spread(self) -> float:
        """Mean interquartile range across groups (distribution width)."""
        return float(np.mean(self.rows[:, 3] - self.rows[:, 1]))

    @property
    def center_variation(self) -> float:
        """Variance of the medians across groups — the paper's 'variation'."""
        return float(np.var(self.rows[:, 2]))


def _five_numbers(values: np.ndarray) -> np.ndarray:
    return np.percentile(values, [0, 25, 50, 75, 100])


def pixel_distributions(feature_map: np.ndarray, n_pixels: int = 20,
                        seed: int = 0, label: str = "pixels") -> DistributionSummary:
    """Sample pixels from a (C, H, W) map; each pixel -> C values (Fig. 3a)."""
    c, h, w = feature_map.shape
    rng = np.random.default_rng(seed)
    idx = rng.choice(h * w, size=min(n_pixels, h * w), replace=False)
    rows = [_five_numbers(feature_map.reshape(c, -1)[:, i]) for i in idx]
    return DistributionSummary(label, np.stack(rows))


def channel_distributions(feature_map: np.ndarray, n_channels: int = 20,
                          seed: int = 0, label: str = "channels") -> DistributionSummary:
    """Sample channels from a (C, H, W) map; each channel -> HW values (Fig. 3d)."""
    c = feature_map.shape[0]
    rng = np.random.default_rng(seed)
    idx = rng.choice(c, size=min(n_channels, c), replace=False)
    rows = [_five_numbers(feature_map[i].reshape(-1)) for i in idx]
    return DistributionSummary(label, np.stack(rows))


def layer_distributions(records: Dict[str, List[np.ndarray]],
                        label: str = "layers") -> DistributionSummary:
    """One five-number row per recorded layer (Fig. 3c / Fig. 5c-d)."""
    rows = [_five_numbers(np.concatenate([a.reshape(-1) for a in arrays]))
            for arrays in records.values()]
    return DistributionSummary(label, np.stack(rows))


def token_distributions(tokens: np.ndarray, n_tokens: int = 20,
                        seed: int = 0, label: str = "tokens") -> DistributionSummary:
    """Sample tokens from an (L, C) tensor (Fig. 5a-b)."""
    length = tokens.shape[0]
    rng = np.random.default_rng(seed)
    idx = rng.choice(length, size=min(n_tokens, length), replace=False)
    rows = [_five_numbers(tokens[i]) for i in idx]
    return DistributionSummary(label, np.stack(rows))


def binary_feature_maps(model: Module, x: np.ndarray,
                        binarizer_types: Tuple[Type, ...]) -> Dict[str, np.ndarray]:
    """Capture the {-1,+1}-valued maps after each activation binarizer (Fig. 1)."""
    with ActivationRecorder(model, binarizer_types, capture="output") as rec:
        rec.run(x)
        return {name: arrays[0] for name, arrays in rec.records.items()}


def binary_map_richness(binary_map: np.ndarray) -> float:
    """Texture-richness proxy for a binary map: mean per-channel edge density.

    Fig. 1's visual point is that SCALES' binary maps keep structure while
    the baseline's collapse; edge density (sign-change rate between
    horizontally/vertically adjacent cells) quantifies that.
    """
    arr = binary_map
    if arr.ndim == 4:
        arr = arr[0]
    flips_h = np.mean(arr[:, :, 1:] != arr[:, :, :-1])
    flips_v = np.mean(arr[:, 1:, :] != arr[:, :-1, :])
    return float((flips_h + flips_v) / 2.0)
