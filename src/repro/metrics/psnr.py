"""PSNR on the Y channel (the paper's primary metric)."""

from __future__ import annotations

import numpy as np

from ..data.color import rgb_to_y, shave_border


def psnr(sr: np.ndarray, hr: np.ndarray, shave: int = 0,
         max_value: float = 1.0) -> float:
    """Peak signal-to-noise ratio between two images in [0, max_value].

    Accepts (H, W) or (H, W, C) arrays; ``shave`` crops the border first
    (the SR convention is ``shave = scale``).
    """
    if sr.shape != hr.shape:
        raise ValueError(f"shape mismatch: {sr.shape} vs {hr.shape}")
    if shave:
        sr = shave_border(sr, shave)
        hr = shave_border(hr, shave)
    mse = float(np.mean((sr.astype(np.float64) - hr.astype(np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10(max_value ** 2 / mse))


def psnr_y(sr_rgb: np.ndarray, hr_rgb: np.ndarray, shave: int = 0) -> float:
    """PSNR over the BT.601 luma channel, as reported in Tables III–VI."""
    return psnr(rgb_to_y(sr_rgb), rgb_to_y(hr_rgb), shave=shave)
