"""Reproductions of every table in the paper (Tables I–VI).

Each function returns a list of row dicts (plus helpers to format them);
the pytest-benchmark files in ``benchmarks/`` call these and assert the
qualitative shape the paper reports.  Absolute dB values differ from the
paper (tiny models, synthetic data, short training — see DESIGN.md), but
the orderings and ratio structure are the reproduction target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import grad as G
from ..analysis import ActivationRecorder, variance_stats
from ..binarize import TABLE1_METHODS
from ..cost import count_cost, count_cost_for_hr, paper_calibrated_model
from ..data import benchmark_suite
from ..models import build_model, resnet18, SwinViT
from ..nn import Conv2d, Linear, init
from ..train import evaluate, evaluate_bicubic
from . import cache
from .presets import ExperimentPreset, get_preset

Row = Dict[str, object]


# ----------------------------------------------------------------------
# Table I — adaptability / hardware-cost comparison of BNN-SR methods
# ----------------------------------------------------------------------
def table1_adaptability() -> List[Row]:
    """The static comparison matrix of Table I, one row per method."""
    return [cls.adaptability() for cls in TABLE1_METHODS]


def format_table1(rows: Sequence[Row]) -> str:
    def mark(value: bool) -> str:
        return "yes" if value else "no"

    lines = [f"{'Method':<18} {'Spa.':<5} {'Chl.':<5} {'Layer':<6} {'Img.':<5} HW cost"]
    for row in rows:
        lines.append(f"{row['method']:<18} {mark(row['spatial']):<5} "
                     f"{mark(row['channel']):<5} {mark(row['layer']):<6} "
                     f"{mark(row['image']):<5} {row['hw_cost']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table II — activation variance: SR networks vs classifiers
# ----------------------------------------------------------------------
def table2_variance(n_images: int = 4, image_size: int = 32,
                    seed: int = 3) -> List[Row]:
    """Variance of activations along the four axes for the four networks.

    Inputs are structured synthetic images (noise has no pixel-to-pixel
    structure, which is exactly what this table measures).  SR networks
    receive inputs in the 0-255 range — the convention of the official
    EDSR/SwinIR code, and the reason the paper's Fig. 3 magnitudes reach
    +-40.  Classifiers receive normalized [0,1] inputs and run with live
    batch statistics: their BatchNorm is what keeps variation small, and
    untrained running stats would misrepresent it.
    """
    from ..data import hr_images

    rows: List[Row] = []

    def record(model, module_types, inputs, name, name_filter=None,
               train_mode=False):
        with ActivationRecorder(model, module_types, capture="input",
                                name_filter=name_filter) as rec:
            for x in inputs:
                rec.run(x, train_mode=train_mode)
            stats = variance_stats(name, rec.records)
        return dict(network=name, **stats.as_dict())

    with G.default_dtype("float32"):
        init.seed(11)
        images = [img.transpose(2, 0, 1)[None]
                  for img in hr_images("set14", n_images,
                                       (image_size, image_size))]

        sr_range = [255.0 * x for x in images]
        edsr = build_model("edsr", scale=2, scheme="fp", preset="tiny")
        rows.append(record(edsr, (Conv2d,), sr_range, "EDSR",
                           name_filter="body"))

        resnet = resnet18(base_width=16)
        rows.append(record(resnet, (Conv2d,), images, "ResNet",
                           name_filter="stages", train_mode=True))

        swinir = build_model("swinir", scale=2, scheme="fp", preset="tiny")
        rows.append(record(swinir, (Linear,), sr_range, "SwinIR",
                           name_filter="groups"))

        swinvit = SwinViT(embed_dim=16, depth=2, num_heads=2)
        rows.append(record(swinvit, (Linear,), images, "SwinViT",
                           name_filter="blocks", train_mode=True))
    return rows


# ----------------------------------------------------------------------
# Table III — CNN comparison (SRResNet): PSNR/SSIM + Params/OPs
# ----------------------------------------------------------------------
TABLE3_SCHEMES = ("fp", "bicubic", "bam", "btm", "e2fif", "scales")

#: Paper Table III (x4 rows) for side-by-side reporting.
PAPER_TABLE3_X4 = {
    "fp": {"params_k": 1517, "ops_g": 228.5, "set5": 31.76, "urban100": 25.54},
    "bicubic": {"set5": 28.42, "urban100": 23.14},
    "bam": {"params_k": 37, "ops_g": 7.1, "set5": 31.24, "urban100": 24.95},
    "btm": {"params_k": 35, "ops_g": 6.4, "set5": 31.25, "urban100": 25.01},
    "e2fif": {"params_k": 35, "ops_g": 6.4, "set5": 31.33, "urban100": 25.08},
    "scales": {"params_k": 34, "ops_g": 6.1, "set5": 31.54, "urban100": 25.27},
}


def table3_srresnet(scale: int = 4, preset: Optional[ExperimentPreset] = None,
                    suites: Sequence[str] = ("set5", "set14", "b100", "urban100"),
                    schemes: Sequence[str] = TABLE3_SCHEMES) -> List[Row]:
    """Train/evaluate SRResNet under every scheme; count full-size costs."""
    preset = preset or get_preset()
    eval_sets = {name: benchmark_suite(name, scale, preset.eval_images,
                                       (preset.eval_image_size, preset.eval_image_size))
                 for name in suites}
    rows: List[Row] = []
    for scheme in schemes:
        row: Row = {"method": scheme, "scale": scale}
        if scheme == "bicubic":
            for name, pairs in eval_sets.items():
                result = evaluate_bicubic(pairs)
                row[f"{name}_psnr"] = result.psnr
                row[f"{name}_ssim"] = result.ssim
            row["params_k"] = None
            row["ops_g"] = None
        else:
            overrides = {} if scheme == "fp" else {"light_tail": True, "head_kernel": 3}
            model = cache.get_trained_model("srresnet", scheme, scale, preset,
                                            **overrides)
            for name, pairs in eval_sets.items():
                result = evaluate(model, pairs)
                row[f"{name}_psnr"] = result.psnr
                row[f"{name}_ssim"] = result.ssim
            # Cost at paper size (1280x720 HR), independent of training.
            with G.default_dtype("float32"):
                init.seed(0)
                cost_model = build_model("srresnet", scale=scale, scheme=scheme,
                                         preset="paper", **overrides)
                report = count_cost_for_hr(cost_model, scale=scale)
            row["params_k"] = report.params_effective / 1e3
            row["ops_g"] = report.ops_effective / 1e9
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table IV — transformer comparison (SwinIR / HAT)
# ----------------------------------------------------------------------
TABLE4_SCHEMES = ("fp", "bibert", "scales", "bicubic")

PAPER_TABLE4 = {
    ("swinir", 2): {"fp": 38.14, "bibert": 35.58, "scales": 36.97},      # Set5 PSNR
    ("swinir", 4): {"fp": 32.44, "bibert": 29.52, "scales": 29.96},
    ("hat", 2): {"fp": 38.73, "bibert": 28.29, "scales": 37.34},
    ("hat", 4): {"fp": 33.18, "bibert": 26.92, "scales": 31.23},
}


def table4_transformer(architecture: str = "swinir", scale: int = 4,
                       preset: Optional[ExperimentPreset] = None,
                       suites: Sequence[str] = ("set5", "b100", "urban100"),
                       schemes: Sequence[str] = TABLE4_SCHEMES) -> List[Row]:
    """Train/evaluate a transformer SR network under fp / BiBERT / SCALES.

    A ``bicubic`` pseudo-scheme adds the no-model reference row so the
    benchmark can check the trained models clear the interpolation floor
    on the suites with learnable headroom.
    """
    preset = preset or get_preset()
    window = 4  # tiny preset window size
    eval_sets = {name: benchmark_suite(name, scale, preset.eval_images,
                                       (preset.eval_image_size, preset.eval_image_size),
                                       lr_multiple=window)
                 for name in suites}
    rows: List[Row] = []
    for scheme in schemes:
        row: Row = {"method": scheme, "architecture": architecture, "scale": scale}
        if scheme == "bicubic":
            for name, pairs in eval_sets.items():
                result = evaluate_bicubic(pairs)
                row[f"{name}_psnr"] = result.psnr
                row[f"{name}_ssim"] = result.ssim
            row["params_k"] = None
            row["ops_g"] = None
            rows.append(row)
            continue
        model = cache.get_trained_model(architecture, scheme, scale, preset,
                                        transformer=True)
        for name, pairs in eval_sets.items():
            result = evaluate(model, pairs)
            row[f"{name}_psnr"] = result.psnr
            row[f"{name}_ssim"] = result.ssim
        with G.default_dtype("float32"):
            init.seed(0)
            cost_model = build_model(architecture, scale=scale, scheme=scheme,
                                     preset="paper")
            report = count_cost_for_hr(cost_model, scale=scale,
                                       window_multiple=cost_model.window_size)
        row["params_k"] = report.params_effective / 1e3
        row["ops_g"] = report.ops_effective / 1e9
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table V — component ablation on SRResNet
# ----------------------------------------------------------------------
TABLE5_VARIANTS = ("e2fif", "scales_lsf", "scales_lsf_channel",
                   "scales_lsf_spatial", "scales")

PAPER_TABLE5 = {
    "e2fif": {"ops_g": 1.83, "set5": 31.27, "urban100": 25.07},
    "scales_lsf": {"ops_g": 1.56, "set5": 31.30, "urban100": 25.09},
    "scales_lsf_channel": {"ops_g": 1.63, "set5": 31.42, "urban100": 25.14},
    "scales_lsf_spatial": {"ops_g": 1.67, "set5": 31.48, "urban100": 25.24},
    "scales": {"ops_g": 1.74, "set5": 31.54, "urban100": 25.27},
}


def table5_ablation(scale: int = 4, preset: Optional[ExperimentPreset] = None,
                    suites: Sequence[str] = ("set5", "urban100")) -> List[Row]:
    """Component ablation: LSF, +channel, +spatial, full SCALES vs E2FIF.

    OPs are computed on a 128x128 input as in the paper's Table V.
    """
    preset = preset or get_preset()
    eval_sets = {name: benchmark_suite(name, scale, preset.eval_images,
                                       (preset.eval_image_size, preset.eval_image_size))
                 for name in suites}
    rows: List[Row] = []
    for scheme in TABLE5_VARIANTS:
        model = cache.get_trained_model("srresnet", scheme, scale, preset,
                                        light_tail=True, head_kernel=3)
        row: Row = {"method": scheme}
        for name, pairs in eval_sets.items():
            result = evaluate(model, pairs)
            row[f"{name}_psnr"] = result.psnr
            row[f"{name}_ssim"] = result.ssim
        with G.default_dtype("float32"):
            init.seed(0)
            cost_model = build_model("srresnet", scale=scale, scheme=scheme,
                                     preset="paper", light_tail=True, head_kernel=3)
            report = count_cost(cost_model, (1, 3, 16, 16), target_lr_hw=(128, 128))
        row["ops_g"] = report.ops_effective / 1e9
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table VI — mobile latency (analytic model)
# ----------------------------------------------------------------------
PAPER_TABLE6_ROWS = {
    "fp": 1649.0, "e2fif": 197.0, "scales_chl64": 237.0, "scales_chl40": 166.0,
}


def table6_latency(scale: int = 4) -> List[Row]:
    """Predicted mobile latency for the four Table VI configurations."""
    latency_model = paper_calibrated_model()
    configs = [
        ("fp", "fp", {}),
        ("e2fif", "e2fif", {"light_tail": True, "head_kernel": 3}),
        ("scales_chl64", "scales", {"light_tail": True, "head_kernel": 3}),
        ("scales_chl40", "scales", {"light_tail": True, "head_kernel": 3,
                                    "n_feats": 40}),
    ]
    rows: List[Row] = []
    with G.default_dtype("float32"):
        for label, scheme, overrides in configs:
            init.seed(0)
            model = build_model("srresnet", scale=scale, scheme=scheme,
                                preset="paper", **overrides)
            report = count_cost(model, (1, 3, 16, 16), target_lr_hw=(128, 128))
            rows.append({
                "method": label,
                "params_k": report.params_effective / 1e3,
                "ops_g": report.ops_effective / 1e9,
                "latency_ms": latency_model.predict(report),
                "paper_latency_ms": PAPER_TABLE6_ROWS[label],
            })
    return rows


def format_rows(rows: Sequence[Row], columns: Optional[Sequence[str]] = None,
                float_format: str = "{:.3f}") -> str:
    """Simple fixed-width text table for runner output."""
    if not rows:
        return "(empty)"
    columns = list(columns or rows[0].keys())
    widths = {c: max(len(c), 12) for c in columns}
    lines = ["  ".join(f"{c:<{widths[c]}}" for c in columns)]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c)
            if isinstance(value, float):
                cells.append(f"{float_format.format(value):<{widths[c]}}")
            else:
                cells.append(f"{str(value):<{widths[c]}}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
