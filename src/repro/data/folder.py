"""Load real image datasets from a directory (DIV2K / Set5 / ... bridge).

The synthetic suites make this repo self-contained, but a user with the
actual DIV2K / Set5 / Set14 / B100 / Urban100 files on disk should be
able to run every experiment on them.  This module reads a directory of
PNG or netpbm images (the two formats :mod:`repro.viz` decodes without
external libraries) and produces the same ``SRPair`` lists the synthetic
suites yield, with the same degradation pipeline.

Usage::

    pairs = folder_suite("~/data/Set5", scale=4)
    result = evaluate(model, pairs)
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..viz.png import read_png
from ..viz.ppm import read_ppm
from .datasets import SRPair, make_pair

_READERS = {".png": read_png, ".ppm": read_ppm, ".pgm": read_ppm}


def list_images(folder: Union[str, Path]) -> List[Path]:
    """Sorted list of readable image files in ``folder``."""
    folder = Path(folder).expanduser()
    if not folder.is_dir():
        raise FileNotFoundError(f"{folder} is not a directory")
    return sorted(p for p in folder.iterdir()
                  if p.suffix.lower() in _READERS)


def load_image(path: Union[str, Path]) -> np.ndarray:
    """Read one image file to an ``(H, W, 3)`` float array in [0, 1]."""
    path = Path(path)
    reader = _READERS.get(path.suffix.lower())
    if reader is None:
        raise ValueError(
            f"unsupported image format {path.suffix!r}; "
            f"supported: {sorted(_READERS)}")
    arr = reader(path).astype(np.float64) / 255.0
    if arr.ndim == 2:
        arr = np.repeat(arr[:, :, None], 3, axis=2)
    return arr


def folder_suite(folder: Union[str, Path], scale: int = 2,
                 n_images: Optional[int] = None,
                 crop: Optional[Tuple[int, int]] = None,
                 lr_multiple: int = 1,
                 degradation: str = "bd") -> List[SRPair]:
    """LR/HR pairs from a directory of HR images.

    Parameters
    ----------
    folder:
        Directory of ``.png`` / ``.ppm`` / ``.pgm`` HR images.
    scale, lr_multiple, degradation:
        Forwarded to :func:`repro.data.make_pair` — identical semantics
        to the synthetic suites.
    n_images:
        Keep only the first N images (sorted by filename).
    crop:
        Optional center crop ``(h, w)`` applied before degradation, for
        bounding NumPy inference cost on 2K-resolution files.
    """
    paths = list_images(folder)
    if not paths:
        raise FileNotFoundError(f"no supported images in {folder}")
    if n_images is not None:
        paths = paths[:n_images]
    pairs: List[SRPair] = []
    for path in paths:
        hr = load_image(path)
        if crop is not None:
            ch, cw = crop
            h, w = hr.shape[:2]
            if h < ch or w < cw:
                raise ValueError(
                    f"{path.name} is {h}x{w}, smaller than crop {ch}x{cw}")
            y0, x0 = (h - ch) // 2, (w - cw) // 2
            hr = hr[y0:y0 + ch, x0:x0 + cw]
        pairs.append(make_pair(hr, scale, name=path.stem,
                               lr_multiple=lr_multiple,
                               degradation=degradation))
    return pairs
