"""Tests for the straight-through estimators, including finite-difference
verification of the paper's Eq. 2 / Eq. 3 gradient formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import grad as G
from repro.grad import Tensor
from repro.binarize.ste import approx_sign_ste, lsf_binarize, sign_ste

from ..helpers import rng


class TestSignSTE:
    def test_output_is_binary(self):
        out = sign_ste(Tensor(rng(0).normal(size=(100,))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_zero_maps_to_plus_one(self):
        assert sign_ste(Tensor([0.0])).data[0] == 1.0

    def test_grad_passthrough_inside_clip(self):
        x = Tensor([0.5, -0.5], requires_grad=True)
        G.sum(sign_ste(x)).backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_grad_zero_outside_clip(self):
        x = Tensor([2.0, -2.0], requires_grad=True)
        G.sum(sign_ste(x)).backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_binary_property(self, seed):
        x = np.random.default_rng(seed).normal(size=20) * 5
        out = sign_ste(Tensor(x)).data
        assert np.all(np.abs(out) == 1.0)


class TestApproxSignSTE:
    def test_forward_same_as_sign(self):
        x = rng(1).normal(size=(50,))
        np.testing.assert_array_equal(approx_sign_ste(Tensor(x)).data,
                                      np.where(x >= 0, 1.0, -1.0))

    def test_polynomial_gradient_values(self):
        x = Tensor([-0.5, 0.5, -1.5, 1.5], requires_grad=True)
        G.sum(approx_sign_ste(x)).backward()
        # g(u) = 2 + 2u on (-1, 0], 2 - 2u on (0, 1], 0 outside.
        np.testing.assert_allclose(x.grad, [1.0, 1.0, 0.0, 0.0])

    def test_gradient_peaks_at_zero(self):
        x = Tensor([-1e-6], requires_grad=True)
        G.sum(approx_sign_ste(x)).backward()
        assert x.grad[0] == pytest.approx(2.0, abs=1e-4)


class TestLSFBinarize:
    """Eq. 1 forward + Eq. 2/3 gradients."""

    def _setup(self, alpha_value=0.7, seed=0):
        r = rng(seed)
        x = Tensor(r.normal(size=(2, 3, 4, 4)) * 1.5, requires_grad=True)
        alpha = Tensor(np.full((1, 1, 1, 1), alpha_value), requires_grad=True)
        beta = Tensor(r.normal(size=(1, 3, 1, 1)) * 0.3, requires_grad=True)
        return x, alpha, beta

    def test_forward_values(self):
        x, alpha, beta = self._setup()
        out = lsf_binarize(x, alpha, beta)
        u = (x.data - beta.data) / alpha.data
        expected = alpha.data * np.where(u >= 0, 1.0, -1.0)
        np.testing.assert_allclose(out.data, expected)

    def test_output_magnitude_is_alpha(self):
        x, alpha, beta = self._setup(alpha_value=0.35)
        out = lsf_binarize(x, alpha, beta)
        np.testing.assert_allclose(np.abs(out.data), 0.35)

    def test_eq2_alpha_gradient_formula(self):
        """d x_hat/d alpha = sign(u) - u*g(u), the four branches of Eq. 2."""
        x, alpha, beta = self._setup()
        upstream = rng(9).normal(size=x.shape)
        out = lsf_binarize(x, alpha, beta)
        out.backward(upstream)

        u = (x.data - beta.data) / alpha.data
        g = np.zeros_like(u)
        left = (u > -1) & (u <= 0)
        right = (u > 0) & (u <= 1)
        g[left] = 2 + 2 * u[left]
        g[right] = 2 - 2 * u[right]
        # Eq. 2 expanded: -1 | -2u^2-2u-1 | 2u^2-2u+1 | 1
        expected_branches = np.where(
            u <= -1, -1.0, np.where(
                u <= 0, -2 * u ** 2 - 2 * u - 1, np.where(
                    u <= 1, 2 * u ** 2 - 2 * u + 1, 1.0)))
        derived = np.where(u >= 0, 1.0, -1.0) - u * g
        np.testing.assert_allclose(derived, expected_branches, atol=1e-12)
        np.testing.assert_allclose(alpha.grad,
                                   (upstream * derived).sum(keepdims=True)
                                   .reshape(alpha.shape) * 0 + (upstream * derived).sum(),
                                   rtol=1e-10)

    def test_eq3_beta_gradient_formula(self):
        """d x_hat/d beta = -g(u): -2-2u | -2+2u | 0 (Eq. 3)."""
        x, alpha, beta = self._setup()
        upstream = rng(10).normal(size=x.shape)
        out = lsf_binarize(x, alpha, beta)
        out.backward(upstream)

        u = (x.data - beta.data) / alpha.data
        expected = np.where(
            (u > -1) & (u <= 0), -2 - 2 * u, np.where(
                (u > 0) & (u <= 1), -2 + 2 * u, 0.0))
        per_channel = (upstream * expected).sum(axis=(0, 2, 3)).reshape(beta.shape)
        np.testing.assert_allclose(beta.grad, per_channel, rtol=1e-10)

    def test_x_gradient_is_polynomial(self):
        x, alpha, beta = self._setup()
        out = lsf_binarize(x, alpha, beta)
        G.sum(out).backward()
        u = (x.data - beta.data) / alpha.data
        g = np.where((u > -1) & (u <= 0), 2 + 2 * u,
                     np.where((u > 0) & (u <= 1), 2 - 2 * u, 0.0))
        np.testing.assert_allclose(x.grad, g, rtol=1e-10)

    def test_alpha_saturation_gradient(self):
        """Far outside [beta-alpha, beta+alpha], d/d alpha = sign(u)."""
        x = Tensor(np.array([10.0, -10.0]), requires_grad=True)
        alpha = Tensor(np.array([1.0]), requires_grad=True)
        beta = Tensor(np.array([0.0]), requires_grad=True)
        G.sum(lsf_binarize(x, alpha, beta)).backward()
        assert alpha.grad[0] == pytest.approx(1.0 - 1.0)  # +1 and -1 cancel

    def test_min_alpha_floor(self):
        x = Tensor([1.0])
        alpha = Tensor([0.0])
        beta = Tensor([0.0])
        out = lsf_binarize(x, alpha, beta, min_alpha=1e-3)
        assert abs(out.data[0]) == pytest.approx(1e-3)

    def test_negative_alpha_preserved(self):
        x = Tensor([1.0])
        alpha = Tensor([-0.5])
        beta = Tensor([0.0])
        out = lsf_binarize(x, alpha, beta)
        # u = 1/-0.5 = -2 -> sign -1; x_hat = -0.5 * -1 = 0.5
        assert out.data[0] == pytest.approx(0.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), alpha=st.floats(0.1, 3.0))
    def test_magnitude_property(self, seed, alpha):
        x = np.random.default_rng(seed).normal(size=10)
        out = lsf_binarize(Tensor(x), Tensor([alpha]), Tensor([0.0]))
        np.testing.assert_allclose(np.abs(out.data), alpha, rtol=1e-10)
