"""Train -> compile -> export -> load -> infer: the deploy artifact flow.

The paper's phone deployment assumes a trained network is exported once
and served from its packed form.  This example walks that full path
through the typed public API (:mod:`repro.api`):

1. ``Engine.from_spec(...).train(...)`` — train a small
   SCALES-binarized SRResNet;
2. ``engine.export(path)`` — compile onto the packed XNOR-popcount
   engine and write a one-file ``.npz`` deploy artifact (bit-packed
   uint64 weight words + scales/thresholds + the FP remainder; the
   float binary weights never touch disk);
3. ``Engine.from_artifact(path)`` — rebuild a servable packed engine
   straight from the artifact (the float model is not reconstructed);
4. run typed inference and verify the facade's outputs are
   bit-identical to hand-wiring ``load_artifact`` +
   ``InferencePipeline`` — the layers the facade drives.

Run:  python examples/export_and_serve.py
"""

import os
import tempfile

import numpy as np

from repro.api import Engine, EngineConfig, ModelSpec, capability_matrix
from repro.data import training_pool
from repro.deploy import artifact_report, load_artifact, read_artifact_meta
from repro.infer import InferencePipeline
from repro.train import TrainConfig


def main() -> None:
    spec = ModelSpec("srresnet", scheme="scales", scale=2,
                     overrides={"light_tail": True, "head_kernel": 3})
    config = EngineConfig(dtype="float32", seed=42, batch_size=4)
    engine = Engine.from_spec(spec, config=config)

    print("Capability check (before any work):")
    cap = engine.capability()
    print(f"  {spec.route}: coverage={cap.coverage} "
          f"compile={cap.can_compile} export={cap.can_export} "
          f"serve={cap.can_serve}")

    print("\nTraining SCALES-binarized SRResNet (quick demo schedule)...")
    pool = training_pool(scale=spec.scale, n_images=8, size=(64, 64))
    engine.train(pool, TrainConfig(steps=80, batch_size=8, patch_size=16,
                                   lr=3e-4, lr_step=60, seed=7))

    workdir = tempfile.mkdtemp(prefix="repro_deploy_")
    float_ckpt = os.path.join(workdir, "srresnet_scales_x2_float.npz")

    print("\nExporting the packed deploy artifact...")
    artifact = engine.export(os.path.join(workdir, spec.artifact_name()))
    engine.model.save(float_ckpt)
    report = artifact_report(artifact)
    print(f"  artifact          : {artifact}")
    print(f"  on disk           : {os.path.getsize(artifact)} bytes "
          f"(float checkpoint: {os.path.getsize(float_ckpt)} bytes)")
    print(f"  packed layers     : {report.n_binary_layers}")
    print(f"  binary weights    : {report.packed_weight_bytes} bytes "
          f"packed vs {report.dense_weight_bytes} dense -> "
          f"{report.weight_compression:.1f}x")

    meta = read_artifact_meta(artifact)
    print(f"  recipe            : {meta['recipe']['architecture']} / "
          f"{meta['recipe']['scheme']} / x{meta['recipe']['scale']}")

    print("\nLoading the artifact into a servable engine "
          "(no float model rebuild)...")
    served = Engine.from_artifact(artifact, config=config)

    print("Running typed inference (micro-batched)...")
    rng = np.random.default_rng(0)
    images = [rng.random((24, 24, 3)).astype(np.float32) for _ in range(6)]
    results = served.infer_many(images)
    assert all(r.ok for r in results)

    print("Verifying against the hand-wired low-level path...")
    with config.scope():
        pipeline = InferencePipeline(load_artifact(artifact, tile=None),
                                     batch_size=4)
        reference = pipeline.map(images)
    worst = 0.0
    for result, expected in zip(results, reference):
        worst = max(worst, float(np.abs(result.unwrap() - expected).max()))
    if worst != 0.0:
        raise SystemExit(f"FAIL: facade outputs drifted from the hand-wired "
                         f"pipeline (max diff {worst:.1e})")
    print(f"  {len(results)} images served, bit-identical vs "
          f"load_artifact + InferencePipeline")

    live = engine.infer(images[0]).unwrap()
    loaded = served.infer(images[0]).unwrap()
    if not np.array_equal(live, loaded):
        raise SystemExit("FAIL: loaded artifact drifted from the live "
                         "compiled engine")
    print("  loaded vs live compiled engine: bit-identical")

    print("\nZoo-wide deploy coverage (capability registry):")
    for coverage in ("full", "partial"):
        cells = sorted(f"{c.architecture}/{c.scheme}"
                       for c in capability_matrix() if c.coverage == coverage)
        print(f"  {coverage:8s}: {', '.join(cells)}")


if __name__ == "__main__":
    main()
