"""The acceptance round-trip: Engine lifecycle vs the hand-wired layers.

Proves the facade adds types, not numerics:

* ``Engine.from_spec -> train -> compile -> export -> Engine.from_artifact
  -> infer`` is bit-identical to the equivalent hand-wired
  ``compile_model`` + ``InferencePipeline`` path;
* ``Engine.serve`` (a ModelServer round-trip) returns the same typed
  ``InferResult`` objects — with bit-identical images — as
  ``Engine.infer`` for identical inputs;
* ``Engine.from_artifact -> infer`` matches a direct
  ``InferencePipeline`` on the same artifact across >= 3 deployable
  zoo cells.
"""

import numpy as np
import pytest

from repro.api import Engine, EngineConfig, EngineError, InferResult, ModelSpec
from repro.data import training_pool
from repro.deploy import compile_model, load_artifact
from repro.infer import InferencePipeline
from repro.nn import init
from repro.train import TrainConfig

SPEC = ModelSpec("srresnet", scheme="scales", scale=2,
                 overrides={"light_tail": True, "head_kernel": 3})


def _images(n=3, shape=(12, 12, 3), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(shape).astype(np.float32) for _ in range(n)]


@pytest.fixture(scope="module")
def trained_engine():
    engine = Engine.from_spec(SPEC, config=EngineConfig(seed=3))
    pool = training_pool(scale=2, n_images=4, size=(32, 32))
    engine.train(pool, TrainConfig(steps=12, batch_size=4, patch_size=8,
                                   seed=5, log_every=1000))
    return engine


@pytest.fixture(scope="module")
def hand_wired(trained_engine):
    """The same trained weights driven through the layers by hand."""
    compiled = compile_model(trained_engine.model)
    return InferencePipeline(compiled, batch_size=8)


class TestAcceptanceRoundTrip:
    def test_full_lifecycle_is_bit_identical_to_hand_wiring(
            self, trained_engine, hand_wired, tmp_path):
        images = _images()
        path = trained_engine.export(tmp_path / "roundtrip.rbd.npz")
        assert path.exists()
        assert trained_engine.state == "exported"

        served = Engine.from_artifact(path)
        assert served.spec == SPEC
        assert served.state == "exported"
        facade = served.infer_many(images)
        reference = hand_wired.map(images)
        for result, expected in zip(facade, reference):
            assert isinstance(result, InferResult)
            assert result.ok and result.model == SPEC.key
            assert np.array_equal(result.unwrap(), expected)

    def test_engine_infer_matches_hand_wiring_pre_export(
            self, trained_engine, hand_wired):
        images = _images(seed=1)
        trained_engine.compile()
        for result, expected in zip(trained_engine.infer_many(images),
                                    hand_wired.map(images)):
            assert np.array_equal(result.unwrap(), expected)

    def test_serve_returns_same_typed_results_as_infer(
            self, trained_engine, tmp_path):
        images = _images(seed=2)
        trained_engine.export(tmp_path / "serve.rbd.npz")
        direct = trained_engine.infer_many(images)
        with trained_engine.serve() as session:
            served = session.infer_many(images)
            # and via the non-blocking ticket path
            tickets = [session.submit(img) for img in images]
            session.server.drain()
            ticketed = [t.result(timeout=60) for t in tickets]
        for a, b, c in zip(direct, served, ticketed):
            assert type(a) is type(b) is type(c) is InferResult
            assert a.status == b.status == c.status == "ok"
            assert a.model == b.model == c.model == SPEC.key
            assert np.array_equal(a.image, b.image)
            assert np.array_equal(a.image, c.image)


# Three deployable zoo cells (matching the model_server example's zoo):
ZOO_CELLS = [
    ModelSpec("srresnet", scheme="scales", scale=2),
    ModelSpec("edsr", scheme="e2fif", scale=2),
    ModelSpec("rdn", scheme="scales_lsf", scale=2),
]


class TestArtifactBitIdentityAcrossZoo:
    @pytest.mark.parametrize("spec", ZOO_CELLS, ids=lambda s: s.route)
    def test_from_artifact_matches_direct_pipeline(self, spec, tmp_path):
        engine = Engine.from_spec(spec, config=EngineConfig(seed=11))
        path = engine.export(tmp_path / spec.artifact_name())
        images = _images(n=2, shape=(10, 14, 3))

        facade = Engine.from_artifact(path).infer_many(images)
        direct = InferencePipeline(
            load_artifact(path, tile=None), batch_size=8).map(images)
        for result, expected in zip(facade, direct):
            assert np.array_equal(result.unwrap(), expected)


class TestLifecycleStates:
    def test_infer_works_on_uncompiled_float_model(self):
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=0))
        assert engine.state == "spec"
        result = engine.infer(_images(n=1)[0])
        assert result.ok and result.image.shape == (24, 24, 3)

    def test_train_invalidates_compiled_state(self, tmp_path):
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=0))
        engine.export(tmp_path / "stale.rbd.npz")
        assert engine.state == "exported"
        pool = training_pool(scale=2, n_images=2, size=(24, 24))
        engine.train(pool, TrainConfig(steps=2, batch_size=2, patch_size=8,
                                       log_every=1000))
        assert engine.state == "spec"

    def test_artifact_backed_engine_refuses_training(self, tmp_path):
        path = Engine.from_spec(
            SPEC, config=EngineConfig(seed=0)).export(tmp_path / "a.rbd.npz")
        with pytest.raises(EngineError, match="no float model"):
            Engine.from_artifact(path).train()

    def test_undeployable_cell_fails_before_work(self):
        engine = Engine.from_spec("srresnet", scheme="fp",
                                  config=EngineConfig(seed=0))
        with pytest.raises(EngineError, match="coverage"):
            engine.compile()
        with pytest.raises(EngineError, match="coverage"):
            engine.export()

    def test_tiled_config_is_bit_identical(self, tmp_path):
        image = _images(n=1, shape=(20, 20, 3))[0]
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=4))
        plain = engine.infer(image).unwrap()
        tiled_engine = Engine.from_spec(
            SPEC, config=EngineConfig(seed=4, tile=8, tile_overlap=4))
        assert np.array_equal(tiled_engine.infer(image).unwrap(), plain)

    def test_dtype_scope_matches_hand_wiring_under_same_dtype(self):
        from repro import grad as G
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=6,
                                                            dtype="float32"))
        engine.compile()
        image = _images(n=1)[0]
        facade = engine.infer(image).unwrap()
        with G.default_dtype("float32"):
            init.seed(6)
            model = SPEC.build()
            direct = InferencePipeline(compile_model(model),
                                       batch_size=8).map([image])[0]
        assert np.array_equal(facade, direct)


class TestFromSpecKeywords:
    def test_explicit_overrides_keyword(self):
        engine = Engine.from_spec(
            "srresnet", scheme="scales",
            overrides={"light_tail": True, "head_kernel": 3})
        assert engine.spec == ModelSpec(
            "srresnet", scheme="scales",
            overrides={"light_tail": True, "head_kernel": 3})

    def test_bare_keywords_merge_over_overrides_dict(self):
        engine = Engine.from_spec("srresnet", scheme="scales",
                                  overrides={"n_feats": 16}, n_feats=8)
        assert engine.spec.overrides["n_feats"] == 8

    def test_spec_plus_extra_keywords_raises(self):
        with pytest.raises(EngineError, match="overrides"):
            Engine.from_spec(SPEC, light_tail=False)

    def test_recipe_dict_spec(self):
        engine = Engine.from_spec(SPEC.to_recipe(),
                                  config=EngineConfig(seed=0))
        assert engine.spec == SPEC


class TestRequestRouting:
    def test_matching_request_model_is_accepted(self):
        from repro.api import InferRequest
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=0))
        result = engine.infer(InferRequest(image=_images(n=1)[0],
                                           model=SPEC.key))
        assert result.ok

    def test_mismatched_request_model_raises(self):
        from repro.api import InferRequest
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=0))
        with pytest.raises(EngineError, match="multi-model routing"):
            engine.infer(InferRequest(image=_images(n=1)[0],
                                      model=("edsr", "e2fif", 2)))


class TestTypedErrors:
    class _Broken:
        training = False

        def eval(self):
            return self

        def train(self, mode=True):
            return self

        def __call__(self, x):
            raise RuntimeError("kaboom")

    def test_execution_failure_is_a_typed_result(self):
        engine = Engine(SPEC, model=self._Broken())
        result = engine.infer(_images(n=1)[0])
        assert isinstance(result, InferResult)
        assert result.status == "error"
        assert "kaboom" in result.detail
        with pytest.raises(EngineError, match="kaboom"):
            result.unwrap()

    def test_failed_flush_does_not_poison_the_pipeline(self):
        engine = Engine(SPEC, model=self._Broken())
        engine.infer(_images(n=1)[0])
        assert engine.pipeline().pending() == 0

    def test_result_unwrap_on_success(self):
        image = np.zeros((2, 2, 3))
        assert np.array_equal(InferResult.success(image).unwrap(), image)

    def test_engine_without_model(self):
        with pytest.raises(EngineError, match="no model"):
            Engine(SPEC).infer(_images(n=1)[0])

    def test_bad_image_rejected_before_stranding_batchmates(self):
        engine = Engine.from_spec(SPEC, config=EngineConfig(seed=0))
        good = _images(n=1)[0]
        with pytest.raises(EngineError, match=r"\(H, W, C\)"):
            engine.infer_many([good, np.zeros((4, 4))])
        # the valid batch-mate must not be left queued for a handle
        # nobody holds
        assert engine.pipeline().pending() == 0
        assert engine.infer(good).ok


class TestCrossSurfaceDtypeParity:
    def test_serve_matches_infer_under_non_default_dtype(self, tmp_path):
        """The PR 5 parity gap, closed: with ``EngineConfig.dtype``
        non-default (float32 under the float64 process default),
        ``Engine.serve`` must be bit-identical to ``Engine.infer`` —
        the configured dtype rides into the server and scopes every
        flush thread, instead of flushes running under the ambient
        process default."""
        init.seed(0)
        engine = Engine.from_spec(
            "srresnet", scheme="scales", scale=2, preset="tiny",
            config=EngineConfig(dtype="float32", seed=7))
        engine.export(tmp_path / "parity.rbd.npz")
        images = _images(seed=9)
        direct = [r.unwrap() for r in engine.infer_many(images)]
        assert all(out.dtype == np.float32 for out in direct)
        with engine.serve() as session:
            served = [r.unwrap() for r in session.infer_many(images)]
        for a, b in zip(direct, served):
            assert b.dtype == np.float32
            assert np.array_equal(a, b)
