"""Consistent-hash ring: stable request→worker routing.

The gateway shards the artifact zoo across workers by model key so
each worker's :class:`~repro.serve.ModelServer` only ever loads the
slice of models routed to it — its LRU stays hot and its result cache
actually hits.  A plain ``hash(key) % n_workers`` would reshuffle
*every* model when one worker dies; consistent hashing moves only the
dead worker's share.

Standard construction: every node is hashed onto a circle at
``replicas`` pseudo-random points (virtual nodes, for load spread), a
key routes to the first node point at or after the key's own hash,
wrapping around.  Hashes are SHA-256-derived, so placement is stable
across processes and Python versions (no ``PYTHONHASHSEED``
dependence — the gateway and a test asserting routing agree forever).

``route(key, exclude=...)`` is the failover walk: with the dead
worker's node excluded the walk continues clockwise to the next live
node, which is exactly where the key lands once the dead node is
removed from the ring — failover traffic goes where the rebalanced
ring would put it anyway.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """A stable 64-bit position on the circle for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over hashable node ids.

    Parameters
    ----------
    replicas:
        Virtual nodes per real node.  More replicas → smoother key
        spread and smaller variance in how much of a dead node's share
        each survivor inherits; 64 is plenty for a handful of workers.

    Not thread-safe by itself; the gateway mutates it only under its
    own worker-table lock.
    """

    def __init__(self, nodes: Iterable[Hashable] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []       # sorted circle positions
        self._owners: List[Hashable] = []  # owner of each position
        self._nodes: List[Hashable] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def nodes(self) -> Tuple[Hashable, ...]:
        """Every node currently on the ring, in insertion order."""
        return tuple(self._nodes)

    def add(self, node: Hashable) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        for i in range(self.replicas):
            point = _point(f"{node!r}#{i}")
            at = bisect.bisect(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: Hashable) -> None:
        """Take ``node`` off the ring (idempotent); only its keys move."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def route(self, key: Hashable,
              exclude: Iterable[Hashable] = ()) -> Optional[Hashable]:
        """The node owning ``key`` — or, with ``exclude``, the next
        node clockwise not in the excluded set.

        Returns ``None`` when no non-excluded node remains (every
        worker tried/dead): the caller's signal to give up with 503
        rather than loop.
        """
        if not self._points:
            return None
        excluded = set(exclude)
        start = bisect.bisect(self._points, _point(repr(key)))
        n = len(self._points)
        seen = set()
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in seen:
                continue
            seen.add(owner)
            if owner not in excluded:
                return owner
        return None
