"""Tests for per-channel weight binarization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import grad as G
from repro.grad import Tensor
from repro.binarize import binarize_weight, weight_scale

from ..helpers import rng


class TestForward:
    def test_scale_is_per_channel_abs_mean(self):
        w = rng(0).normal(size=(4, 3, 3, 3))
        out = binarize_weight(Tensor(w)).data
        for c in range(4):
            expected = np.abs(w[c]).mean()
            np.testing.assert_allclose(np.abs(out[c]), expected, rtol=1e-12)

    def test_sign_preserved(self):
        w = rng(1).normal(size=(2, 5))
        out = binarize_weight(Tensor(w)).data
        np.testing.assert_array_equal(np.sign(out), np.where(w >= 0, 1.0, -1.0))

    def test_linear_weights_per_row(self):
        w = rng(2).normal(size=(6, 10))
        scales = weight_scale(Tensor(w))
        np.testing.assert_allclose(scales, np.abs(w).mean(axis=1))

    def test_conv1d_weights(self):
        w = rng(3).normal(size=(2, 1, 5))
        out = binarize_weight(Tensor(w)).data
        assert out.shape == w.shape

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_l1_preservation_property(self, seed):
        """Binarization preserves the per-channel l1 norm exactly."""
        w = np.random.default_rng(seed).normal(size=(3, 4, 3, 3))
        out = binarize_weight(Tensor(w)).data
        np.testing.assert_allclose(np.abs(out).sum(axis=(1, 2, 3)),
                                   np.abs(w).sum(axis=(1, 2, 3)), rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_best_binary_approximation_property(self, seed):
        """mean|w|*sign(w) is the optimal s*b approximation (XNOR-Net thm)."""
        w = np.random.default_rng(seed).normal(size=(1, 8))
        out = binarize_weight(Tensor(w)).data
        best_err = np.sum((w - out) ** 2)
        r = np.random.default_rng(seed + 1)
        for _ in range(20):
            s = abs(r.normal()) + 1e-3
            b = np.where(r.normal(size=w.shape) > 0, 1.0, -1.0)
            assert np.sum((w - s * b) ** 2) >= best_err - 1e-9


class TestBackward:
    def test_scale_term_matches_finite_difference(self):
        """sign() is piecewise constant, so the *true* derivative of
        s * sign(w) contains only the through-scale term; finite
        differences must match (analytic grad - STE surrogate term)."""
        w_data = rng(4).normal(size=(2, 6)) * 0.5  # inside the clip region
        upstream = rng(5).normal(size=(2, 6))
        w = Tensor(w_data, requires_grad=True)
        out = binarize_weight(w)
        out.backward(upstream)

        scale = np.abs(w_data).mean(axis=1, keepdims=True)
        ste_term = scale * upstream * (np.abs(w_data) <= 1.0)

        eps = 1e-6
        numeric = np.zeros_like(w_data)
        it = np.nditer(w_data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = w_data[idx]
            w_data[idx] = orig + eps
            f_plus = (binarize_weight(Tensor(w_data)).data * upstream).sum()
            w_data[idx] = orig - eps
            f_minus = (binarize_weight(Tensor(w_data)).data * upstream).sum()
            w_data[idx] = orig
            numeric[idx] = (f_plus - f_minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(w.grad - ste_term, numeric, atol=1e-5)

    def test_ste_clipped_outside_unit(self):
        w = Tensor(np.array([[3.0, -0.2, 0.2, -3.0]]), requires_grad=True)
        G.sum(binarize_weight(w)).backward()
        # Only the scale-term gradient survives for |w| > 1.
        n = 4
        scale_term = np.sign(w.data) / n * np.sign(w.data).sum()
        expected_large = scale_term[0, 0]
        assert w.grad[0, 0] == pytest.approx(expected_large)
