"""Tile-delta planner: content hashing, dirty/reused split, isolation."""

import numpy as np

from repro.infer import plan_tiles, tile_view
from repro.serve import TileReuseCache, content_key
from repro.stream import plan_frame_delta

MODEL = ("srresnet", "scales", 2)


def _frame(seed=0, h=16, w=16, c=3):
    rng = np.random.default_rng(seed)
    return rng.random((h, w, c)).astype(np.float32)


def _fill_cache(frame, plan, cache):
    """Pretend every tile of ``frame`` was computed: cache fake SR."""
    for i, spec in enumerate(plan.tiles):
        view = tile_view(frame, spec, plan.tile_h, plan.tile_w)
        key = content_key(MODEL, view)
        sr = np.full((plan.tile_h * 2, plan.tile_w * 2, 3), i / 100.0,
                     dtype=np.float64)
        cache.put(key, sr)


class TestPlanning:
    def test_cold_cache_everything_dirty(self):
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        cache = TileReuseCache(1 << 20)
        delta = plan_frame_delta(frame, plan, MODEL, cache)
        assert len(delta.keys) == len(plan.tiles) == 4
        assert delta.dirty == (0, 1, 2, 3)
        assert delta.reused == ()
        assert delta.reuse_ratio == 0.0

    def test_no_cache_everything_dirty(self):
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        delta = plan_frame_delta(frame, plan, MODEL, cache=None)
        assert delta.dirty == (0, 1, 2, 3)

    def test_identical_frame_fully_reused(self):
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        cache = TileReuseCache(1 << 20)
        _fill_cache(frame, plan, cache)
        delta = plan_frame_delta(frame.copy(), plan, MODEL, cache)
        assert delta.dirty == ()
        assert delta.reused == (0, 1, 2, 3)
        assert delta.reuse_ratio == 1.0
        assert sorted(delta.cached) == [0, 1, 2, 3]

    def test_single_pixel_change_dirties_only_covering_tiles(self):
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        cache = TileReuseCache(1 << 20)
        _fill_cache(frame, plan, cache)
        changed = frame.copy()
        changed[2, 3, 0] += 0.5  # inside tile 0 only (overlap 0)
        delta = plan_frame_delta(changed, plan, MODEL, cache)
        assert delta.dirty == (0,)
        assert delta.reused == (1, 2, 3)

    def test_overlap_change_dirties_every_covering_tile(self):
        # With overlap, a pixel in the shared band belongs to several
        # tiles; all of them must go dirty.
        frame = _frame(h=24, w=24)
        plan = plan_tiles(24, 24, 16, overlap=8)  # stride 8, 2x2 tiles
        cache = TileReuseCache(1 << 20)
        _fill_cache(frame, plan, cache)
        changed = frame.copy()
        changed[12, 12, 1] += 0.25  # inside all four tiles' footprints
        delta = plan_frame_delta(changed, plan, MODEL, cache)
        assert delta.reused == ()
        assert len(delta.dirty) == len(plan.tiles)

    def test_duplicate_content_tiles_share_keys(self):
        frame = np.zeros((16, 16, 3), dtype=np.float32)  # uniform
        plan = plan_tiles(16, 16, 8, overlap=0)
        delta = plan_frame_delta(frame, plan, MODEL, cache=None)
        assert len(set(delta.keys)) == 1
        assert len(delta.dirty) == 4  # all dirty, but one distinct key

    def test_model_key_partitions_the_cache(self):
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        cache = TileReuseCache(1 << 20)
        _fill_cache(frame, plan, cache)
        other = ("edsr", "e2fif", 2)
        delta = plan_frame_delta(frame, plan, other, cache)
        assert delta.reused == ()  # same bytes, different model

    def test_cached_tiles_are_eager_isolated_copies(self):
        # Eviction between plan and stitch must not strand the frame:
        # the delta carries private copies fetched at plan time.
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        cache = TileReuseCache(1 << 20)
        _fill_cache(frame, plan, cache)
        delta = plan_frame_delta(frame, plan, MODEL, cache)
        before = {i: sr.copy() for i, sr in delta.cached.items()}
        cache.clear()  # adversarial eviction after planning
        for i, sr in delta.cached.items():
            np.testing.assert_array_equal(sr, before[i])

    def test_planner_keys_match_server_content_keys(self):
        # The stream's tile keys are exactly the serving layer's
        # content keys over the same bytes, so a dirty tile coalesces
        # with identical in-flight work server-side.
        frame = _frame()
        plan = plan_tiles(16, 16, 8, overlap=0)
        delta = plan_frame_delta(frame, plan, MODEL, cache=None)
        for i, spec in enumerate(plan.tiles):
            view = tile_view(frame, spec, plan.tile_h, plan.tile_w)
            assert delta.keys[i] == content_key(MODEL, view)
            assert delta.keys[i] == content_key(
                MODEL, np.ascontiguousarray(view)
            )
