"""BAM: bit-accumulation mechanism (Xin et al., ECCV 2020).

BAM binarizes each layer relative to an *accumulation of previous
forward passes*: we keep a running full-precision accumulator of the
layer input (per channel and spatial position) and use it as the
binarization threshold.  This reproduces the method's signature
properties from Table I — spatially adaptive (the threshold varies per
pixel) but **not** input/image adaptive (the threshold comes from
history, not the current image) — and its hardware cost: an extra FP
accumulation per layer at inference.

The accumulator is kept per spatial shape so the layer works on both
training patches and full evaluation images.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ... import grad as G
from ...grad import Tensor
from ...nn import BatchNorm2d, Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class BAMBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True,
                 momentum: float = 0.1):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.momentum = momentum
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        # The original BAM keeps BatchNorm after the binary conv (its FP
        # cost is part of why Table III shows BAM as the heaviest BNN).
        self.bn = BatchNorm2d(out_channels)
        self.skip = stride == 1 and in_channels == out_channels
        self._accumulators: Dict[Tuple[int, ...], np.ndarray] = {}

    def _threshold(self, x: Tensor) -> np.ndarray:
        key = x.shape[1:]
        batch_mean = x.data.mean(axis=0)
        if key not in self._accumulators:
            self._accumulators[key] = batch_mean.copy()
        elif self.training:
            acc = self._accumulators[key]
            self._accumulators[key] = (1 - self.momentum) * acc + self.momentum * batch_mean
        return self._accumulators[key]

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        threshold = self._threshold(x)
        xb = approx_sign_ste(x - Tensor(threshold[None]))
        w_hat = binarize_weight(self.weight)
        out = self.bn(G.conv2d(xb, w_hat, self.bias, stride=self.stride,
                               padding=self.padding))
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "BAM", "spatial": True, "channel": False,
                "layer": False, "image": False, "hw_cost": "Extra FP Accum."}
