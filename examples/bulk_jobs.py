"""Crash-safe bulk inference: manifest -> journaled run -> resume.

The serving layer (``examples/model_server.py``) answers one request
at a time; this example is the offline counterpart — push a directory
of frames through the artifact zoo as a *job*, with a write-ahead
journal making the run resumable after any interruption:

1. export two tiny packed artifacts (the zoo);
2. write a job manifest (inputs x models, JSON);
3. run it with deterministic fault injection armed — flaky items that
   fail their first attempt (exercising retry/backoff) and a poison
   item that fails every attempt (exercising quarantine);
4. re-run the same manifest: everything already done is skipped by
   output content hash — the resume path that also covers SIGKILL;
5. corrupt one output and re-run again: the journal invalidates
   exactly that item and redoes it bit-identically;
6. render the journal status table and audit for duplicate work.

Run:  python examples/bulk_jobs.py
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro import grad as G
from repro.deploy import compile_model
from repro.jobs import (ChaosConfig, JobRunner, format_status,
                        load_manifest, audit_journal, replay_journal)
from repro.models import build_model
from repro.nn import init


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_jobs_"))
    zoo = workdir / "zoo"
    frames = workdir / "frames"
    zoo.mkdir()
    frames.mkdir()

    print("Exporting a tiny artifact zoo...")
    with G.default_dtype("float32"):
        for arch, scheme in (("srresnet", "scales"), ("edsr", "e2fif")):
            init.seed(0)
            model = build_model(arch, scale=2, scheme=scheme, preset="tiny")
            compile_model(model, freeze=str(zoo / f"{arch}_{scheme}.npz"))

    print("Writing 8 input frames...")
    rng = np.random.default_rng(3)
    for i in range(8):
        np.save(frames / f"frame_{i:03d}.npy",
                rng.random((12, 12, 3)).astype(np.float32))

    manifest_path = workdir / "manifest.json"
    manifest_path.write_text(json.dumps({
        "artifacts": "zoo",
        "inputs": ["frames/*.npy"],
        "models": ["srresnet/scales/x2", "edsr/e2fif/x2"],
        "output_dir": "out",
        "shard_size": 4,
        "batch_size": 4,
        "workers": 0,
        "retry": {"max_attempts": 3, "base_delay_s": 0.01},
    }, indent=2))
    manifest = load_manifest(manifest_path)
    n_items = len(manifest.items())
    print(f"Manifest: {n_items} items "
          f"({len(manifest.inputs)} frames x {len(manifest.models)} models)")

    # Deterministic fault injection: ~1/4 of items fail their first
    # attempt transiently; ~1/10 are poison and end up quarantined.
    chaos = ChaosConfig(seed=5, flaky_rate=0.25, poison_rate=0.1)
    runner = JobRunner(manifest, chaos=chaos, fsync=False)

    print("\nRun 1 (with injected faults)...")
    report = runner.run()
    print(f"  done={report.done} quarantined={report.quarantined} "
          f"retries={report.failures} in {report.wall_s:.2f}s")
    if not report.complete:
        raise SystemExit("FAIL: run did not complete")

    print("\nRun 2 (same command = resume; everything skips)...")
    resumed = JobRunner(manifest, chaos=chaos, fsync=False).run()
    print(f"  done={resumed.done} skipped={resumed.skipped} "
          f"quarantined={resumed.quarantined}")
    if resumed.done != 0 or resumed.skipped != report.done:
        raise SystemExit("FAIL: resume re-ran completed work")

    victim = next(i for i in manifest.items()
                  if Path(i.output).is_file())
    original = Path(victim.output).read_bytes()
    print(f"\nCorrupting {Path(victim.output).name} and re-running...")
    np.save(victim.output, np.zeros((1, 1, 3), np.float32))
    healed = JobRunner(manifest, chaos=chaos, fsync=False).run()
    print(f"  invalidated={healed.invalidated} redone={healed.done}")
    if healed.invalidated != 1 or healed.done != 1:
        raise SystemExit("FAIL: corrupted output was not redone")
    if Path(victim.output).read_bytes() != original:
        raise SystemExit("FAIL: redone output is not bit-identical")
    print("  redone output is bit-identical to the original")

    print("\nJournal status:")
    print(format_status(runner.journal_path))

    findings = audit_journal(replay_journal(runner.journal_path))
    duplicates = [f for f in findings if "more than once" in f]
    if duplicates:
        raise SystemExit(f"FAIL: duplicate processing: {duplicates}")
    print(f"\nOK — journal at {runner.journal_path} "
          f"({os.path.getsize(runner.journal_path)} bytes), no duplicates")


if __name__ == "__main__":
    main()
