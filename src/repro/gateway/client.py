"""A small typed client for the gateway wire protocol.

Anything that speaks HTTP can talk to the gateway; this client exists
so in-repo callers (tests, the load generator, the example) don't each
re-implement the codec and status mapping.  One request = one fresh
``http.client.HTTPConnection``, so a client instance is safe to share
across threads — the load generator hammers one from dozens.
"""

from __future__ import annotations

import http.client
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from . import wire

__all__ = ["GatewayClient", "GatewayResult"]


@dataclass(frozen=True)
class GatewayResult:
    """One ``/infer`` round-trip, whatever its outcome.

    ``ok`` requests carry the decoded ``output`` array; refusals and
    failures carry the wire ``status`` / ``reason`` and the HTTP code,
    so callers branch on data instead of catching exceptions — the
    serving layer's typed-result convention, over the network.
    """

    http_status: int
    status: str
    output: Optional[np.ndarray] = None
    reason: str = ""
    retryable: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def unwrap(self) -> np.ndarray:
        """The output array; raises on anything but success."""
        if not self.ok:
            raise RuntimeError(
                f"gateway request failed: HTTP {self.http_status} "
                f"{self.status}: {self.reason}")
        return self.output


class GatewayClient:
    """Talk to a :class:`repro.gateway.Gateway` at ``(host, port)``.

    ``client_id`` rides on every request as ``X-Client-Id`` — the
    identity the gateway's per-client token buckets meter.
    """

    def __init__(self, address: Union[str, Tuple[str, int]],
                 client_id: str = "default",
                 timeout_s: float = 120.0) -> None:
        if isinstance(address, str):
            address = address.split("//")[-1].rstrip("/")
            host, _, port = address.partition(":")
            self.host, self.port = host, int(port)
        else:
            self.host, self.port = address[0], int(address[1])
        self.client_id = client_id
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Tuple[int, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            headers = {"X-Client-Id": self.client_id}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, wire.loads(response.read())
        finally:
            conn.close()

    def infer(self, image: np.ndarray, model: str,
              deadline_s: Optional[float] = None) -> GatewayResult:
        """Run one ``(H, W, C)`` image; returns a :class:`GatewayResult`
        (network errors still raise — there is no response to type)."""
        request: Dict[str, Any] = {
            "model": model, "image": wire.encode_array(np.asarray(image))}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        status, body = self._request("POST", "/infer", wire.dumps(request))
        if status == 200 and body.get("status") == "ok":
            return GatewayResult(http_status=status, status="ok",
                                 output=wire.decode_array(body["output"]))
        return GatewayResult(
            http_status=status, status=str(body.get("status", "error")),
            reason=str(body.get("reason", "")),
            retryable=bool(body.get("retryable", False)))

    def health(self) -> Dict:
        return self._request("GET", "/healthz")[1]

    def models(self) -> Tuple[str, ...]:
        return tuple(self._request("GET", "/models")[1]["models"])

    def stats(self) -> Dict:
        return self._request("GET", "/stats")[1]
