"""Parameter and operation counting (Sec. V-E).

The paper reports ``OPs = OPs_f + OPs_b / 64`` and
``Params = Param_f + Param_b / 32`` following Bi-Real Net / DoReFa, with
OPs evaluated on a 1280x720 HR image (Tables III/IV) or a 128x128 input
(Tables V/VI).

Counting convention (calibrated to reproduce the deltas of Table V):

* conv / linear multiply-accumulate = 2 OPs (binary MACs land in the
  1-bit pool and are divided by 64);
* BatchNorm = 8 OPs per element — the (x - mu)/sigma * gamma + beta chain
  cannot be folded into a binary conv, which is exactly why Table V
  credits SCALES' OPs drop to BN removal (LayerNorm counted the same);
* global average pooling and broadcast re-scale applications = 1 OP per
  element; sigmoid = 4 OPs per produced scale value;
* attention score/value matmuls are full-precision MACs (2 OPs each).

Shapes are observed with forward hooks on a *probe* input, then scaled to
the target resolution by output-area ratio — exact for convolutions and
window attention (windows are fixed-size, so attention cost is linear in
area too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..grad import Tensor, no_grad
from ..nn import (
    BatchNorm2d,
    Conv1d,
    Conv2d,
    LayerNorm,
    Linear,
    Module,
    WindowAttention,
)
from ..binarize import BinaryLayerBase
from ..binarize.baselines import (
    BAMBinaryConv2d,
    BTMBinaryConv2d,
    DAQBinaryConv2d,
    LMBBinaryConv2d,
)

BN_OPS_PER_ELEMENT = 8.0
POOL_OPS_PER_ELEMENT = 1.0
RESCALE_OPS_PER_ELEMENT = 1.0
SIGMOID_OPS_PER_VALUE = 4.0
MAC_OPS = 2.0


@dataclass
class CostReport:
    """Aggregate parameter / operation cost of one model at one input size."""

    fp_params: float = 0.0
    binary_params: float = 0.0
    fp_ops: float = 0.0
    binary_ops: float = 0.0
    n_counted_layers: int = 0
    per_layer: List[Tuple[str, str, float, float]] = field(default_factory=list)

    @property
    def params_effective(self) -> float:
        """Paper's storage metric: FP params + binary params / 32."""
        return self.fp_params + self.binary_params / 32.0

    @property
    def ops_effective(self) -> float:
        """Paper's compute metric: FP OPs + binary OPs / 64."""
        return self.fp_ops + self.binary_ops / 64.0

    def scaled(self, factor: float) -> "CostReport":
        """Scale all *operation* counts by ``factor`` (params unchanged)."""
        return CostReport(
            fp_params=self.fp_params,
            binary_params=self.binary_params,
            fp_ops=self.fp_ops * factor,
            binary_ops=self.binary_ops * factor,
            n_counted_layers=self.n_counted_layers,
            per_layer=[(n, k, f * factor, b * factor)
                       for (n, k, f, b) in self.per_layer],
        )


def count_params(model: Module) -> Tuple[float, float]:
    """(fp_params, binary_params): binary layers store 1-bit main weights."""
    fp = 0.0
    binary = 0.0
    for module in model.modules():
        own = module._parameters
        is_binary = isinstance(module, BinaryLayerBase) and getattr(module, "binary", False)
        has_binary_weights = is_binary or getattr(module, "binary_weights", False)
        for name, param in own.items():
            if has_binary_weights and name == "weight":
                binary += param.size
            else:
                fp += param.size
        if isinstance(module, BatchNorm2d):
            # Running mean/var ship with the deployed model; counting them
            # is what makes E2FIF's BN heavier than SCALES' side branches.
            fp += module.running_mean.size + module.running_var.size
    return fp, binary


def _conv2d_macs(module, out_shape: Tuple[int, ...]) -> float:
    b, c_out, h, w = out_shape
    return float(b * h * w * c_out * module.in_channels * module.kernel_size ** 2)


def _conv1d_macs(module, out_shape: Tuple[int, ...]) -> float:
    b, c_out, length = out_shape
    return float(b * length * c_out * module.in_channels * module.kernel_size)


def _linear_macs(module, out_shape: Tuple[int, ...]) -> float:
    tokens = float(np.prod(out_shape[:-1]))
    return tokens * module.in_features * module.out_features


def _elements(shape: Tuple[int, ...]) -> float:
    return float(np.prod(shape))


def count_cost(model: Module, lr_shape: Tuple[int, int, int, int],
               target_lr_hw: Optional[Tuple[int, int]] = None,
               seed: int = 0) -> CostReport:
    """Measure the cost of ``model`` on input shape ``lr_shape`` (NCHW).

    ``target_lr_hw`` scales operation counts to a larger LR resolution by
    area ratio (how the 1280x720-HR numbers of Tables III/IV are obtained
    without running a full-size NumPy forward pass).
    """
    report = CostReport()
    report.fp_params, report.binary_params = count_params(model)
    records: List[Tuple[Module, str, Tuple, Tuple[int, ...]]] = []
    names = {id(m): n for n, m in model.named_modules()}

    def hook(module, inputs, output):
        in_shapes = tuple(t.shape for t in inputs if isinstance(t, Tensor))
        out_shape = output.shape if isinstance(output, Tensor) else ()
        records.append((module, names.get(id(module), "?"), in_shapes, out_shape))

    removers = [m.register_forward_hook(hook) for m in model.modules()]
    was_training = model.training
    model.eval()
    rng = np.random.default_rng(seed)
    try:
        with no_grad():
            model(Tensor(rng.random(lr_shape)))
    finally:
        for remove in removers:
            remove()
        model.train(was_training)

    for module, name, in_shapes, out_shape in records:
        fp_ops = 0.0
        binary_ops = 0.0
        kind = type(module).__name__
        if isinstance(module, BinaryLayerBase):
            in_shape = in_shapes[0]
            if hasattr(module, "kernel_size"):
                macs = _conv2d_macs(module, out_shape) * MAC_OPS
            else:
                macs = _linear_macs(module, out_shape) * MAC_OPS
            if getattr(module, "binary", True):
                binary_ops += macs
            else:
                fp_ops += macs  # weight-only binarization: FP accumulations
            out_elems = _elements(out_shape)
            in_elems = _elements(in_shape)
            if getattr(module, "use_spatial", False):
                # Branch conv hooked separately; count sigmoid + apply.
                scale_values = out_elems / out_shape[1]
                fp_ops += SIGMOID_OPS_PER_VALUE * scale_values
                fp_ops += RESCALE_OPS_PER_ELEMENT * out_elems
            if getattr(module, "use_channel", False):
                fp_ops += POOL_OPS_PER_ELEMENT * in_elems          # GAP
                fp_ops += SIGMOID_OPS_PER_VALUE * in_shape[1]      # sigmoid
                fp_ops += RESCALE_OPS_PER_ELEMENT * out_elems      # apply
            if isinstance(module, BAMBinaryConv2d):
                fp_ops += 2.0 * in_elems                           # FP accumulation
            if isinstance(module, BTMBinaryConv2d):
                fp_ops += 2.0 * in_elems                           # image mean + apply
            if isinstance(module, LMBBinaryConv2d):
                k = module.neighborhood
                fp_ops += MAC_OPS * k * k * in_elems               # per-pixel threshold
            if isinstance(module, DAQBinaryConv2d):
                fp_ops += 4.0 * in_elems + out_elems               # mean/std + apply
        elif isinstance(module, Conv2d):
            fp_ops += _conv2d_macs(module, out_shape) * MAC_OPS
        elif isinstance(module, Conv1d):
            fp_ops += _conv1d_macs(module, out_shape) * MAC_OPS
        elif isinstance(module, Linear):
            fp_ops += _linear_macs(module, out_shape) * MAC_OPS
        elif isinstance(module, (BatchNorm2d, LayerNorm)):
            fp_ops += BN_OPS_PER_ELEMENT * _elements(out_shape)
        elif isinstance(module, WindowAttention):
            bw, n, c = in_shapes[0]
            head_dim = module.head_dim
            heads = module.num_heads
            # q@k^T and attn@v, per window.
            fp_ops += MAC_OPS * 2.0 * bw * heads * n * n * head_dim
        else:
            continue
        if fp_ops or binary_ops:
            report.fp_ops += fp_ops
            report.binary_ops += binary_ops
            report.n_counted_layers += 1
            report.per_layer.append((name, kind, fp_ops, binary_ops))

    if target_lr_hw is not None:
        probe_area = lr_shape[2] * lr_shape[3]
        target_area = target_lr_hw[0] * target_lr_hw[1]
        report = report.scaled(target_area / probe_area)
    return report


def count_cost_for_hr(model: Module, scale: int,
                      hr_hw: Tuple[int, int] = (720, 1280),
                      probe_lr: int = 16,
                      window_multiple: int = 1) -> CostReport:
    """Cost at the paper's evaluation resolution (1280x720 HR image).

    A small probe forward runs at ``probe_lr`` (rounded up to the window
    multiple for transformers) and is scaled to ``hr_hw / scale``.
    """
    multiple = max(window_multiple, 1)
    probe = max(probe_lr, multiple)
    probe += (-probe) % multiple
    target = (hr_hw[0] // scale, hr_hw[1] // scale)
    return count_cost(model, (1, 3, probe, probe), target_lr_hw=target)
