"""Training and evaluation loops.

Mirrors the paper's protocol at reduced scale: L1 loss, ADAM with
beta = (0.9, 0.999), eps = 1e-8, patch training with augmentation, and a
halving step LR schedule.  Evaluation reports PSNR/SSIM on the Y channel
with an upscale-factor border shave, exactly as Tables III-V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import grad as G
from ..data import PatchSampler, SRPair
from ..grad import Tensor, no_grad
from ..metrics import psnr_y, ssim_y
from ..nn import Module
from ..optim import Adam, StepLR
from .loss import get_loss


@dataclass
class TrainConfig:
    """Hyper-parameters (paper defaults, scaled-down steps)."""

    steps: int = 200
    batch_size: int = 8
    patch_size: int = 16
    lr: float = 2e-4
    lr_step: int = 150          # paper: halve every 200 epochs
    lr_gamma: float = 0.5
    loss: str = "l1"
    seed: int = 0
    log_every: int = 50
    #: seed LSF binarizers from one batch's statistics before step 1
    #: (see :func:`repro.binarize.calibrate_lsf`); harmless no-op for
    #: models without LSF binarizers.
    calibrate: bool = True
    #: LR pixels cropped from each patch edge before the loss — removes the
    #: boundary artifacts of computing the bicubic image residual on a
    #: patch instead of the full image.
    border_margin: int = 2


@dataclass
class EvalResult:
    """PSNR/SSIM over one suite (means over images)."""

    psnr: float
    ssim: float
    per_image_psnr: List[float] = field(default_factory=list)
    per_image_ssim: List[float] = field(default_factory=list)


def _nchw_to_image(batch: np.ndarray) -> np.ndarray:
    return np.clip(batch[0].transpose(1, 2, 0), 0.0, 1.0)


def super_resolve(model: Module, lr_image: np.ndarray) -> np.ndarray:
    """Run one (H, W, 3) LR image through ``model`` -> (sH, sW, 3) SR image."""
    x = Tensor(lr_image.transpose(2, 0, 1)[None])
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            out = model(x)
    finally:
        model.train(was_training)
    return _nchw_to_image(out.data)


def evaluate(model: Module, pairs: Sequence[SRPair],
             shave: Optional[int] = None) -> EvalResult:
    """Mean Y-channel PSNR/SSIM of ``model`` over LR/HR pairs."""
    psnrs: List[float] = []
    ssims: List[float] = []
    for pair in pairs:
        sr = super_resolve(model, pair.lr)
        border = shave if shave is not None else pair.scale
        psnrs.append(psnr_y(sr, pair.hr, shave=border))
        ssims.append(ssim_y(sr, pair.hr, shave=border))
    return EvalResult(psnr=float(np.mean(psnrs)), ssim=float(np.mean(ssims)),
                      per_image_psnr=psnrs, per_image_ssim=ssims)


def evaluate_bicubic(pairs: Sequence[SRPair], shave: Optional[int] = None) -> EvalResult:
    """The Bicubic baseline row of Table III."""
    from ..data.resize import upscale

    psnrs: List[float] = []
    ssims: List[float] = []
    for pair in pairs:
        sr = np.clip(upscale(pair.lr, pair.scale), 0.0, 1.0)
        border = shave if shave is not None else pair.scale
        psnrs.append(psnr_y(sr, pair.hr, shave=border))
        ssims.append(ssim_y(sr, pair.hr, shave=border))
    return EvalResult(psnr=float(np.mean(psnrs)), ssim=float(np.mean(ssims)),
                      per_image_psnr=psnrs, per_image_ssim=ssims)


class Trainer:
    """Patch-based SR trainer."""

    def __init__(self, model: Module, train_pairs: Sequence[SRPair],
                 config: Optional[TrainConfig] = None, lr_multiple: int = 1):
        self.model = model
        self.config = config or TrainConfig()
        self.sampler = PatchSampler(list(train_pairs),
                                    patch_size=self.config.patch_size,
                                    batch_size=self.config.batch_size,
                                    seed=self.config.seed,
                                    lr_multiple=lr_multiple)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.schedule = StepLR(self.optimizer, self.config.lr_step,
                               self.config.lr_gamma)
        self.loss_fn = get_loss(self.config.loss)
        self.history: List[float] = []
        self._calibrated = False

    def calibrate(self) -> int:
        """Seed LSF binarizer thresholds from one calibration batch.

        Idempotent, and drawn from a *dedicated* sampler so that enabling
        calibration never shifts the training batch stream (models with and
        without LSF binarizers stay exactly comparable).
        """
        from ..binarize import calibrate_lsf

        if self._calibrated:
            return 0
        self._calibrated = True
        calib_sampler = PatchSampler(self.sampler.pairs,
                                     patch_size=self.config.patch_size,
                                     batch_size=self.config.batch_size,
                                     seed=self.config.seed + 9999,
                                     lr_multiple=self.sampler.lr_multiple)
        lr_batch, _ = calib_sampler.batch()
        return calibrate_lsf(self.model, lr_batch)

    def step(self) -> float:
        """One optimization step; returns the loss value."""
        lr_batch, hr_batch = self.sampler.batch()
        self.model.train()
        prediction = self.model(Tensor(lr_batch))
        target = Tensor(hr_batch)
        margin = self.config.border_margin
        if margin:
            scale = hr_batch.shape[2] // lr_batch.shape[2]
            crop = margin * scale
            sl = (slice(None), slice(None), slice(crop, -crop), slice(crop, -crop))
            prediction = prediction[sl]
            target = target[sl]
        loss = self.loss_fn(prediction, target)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        self.schedule.step()
        value = float(loss.data)
        self.history.append(value)
        return value

    def fit(self, steps: Optional[int] = None, verbose: bool = False) -> List[float]:
        """Run ``steps`` optimization steps (default: config.steps)."""
        total = steps if steps is not None else self.config.steps
        if self.config.calibrate:
            self.calibrate()
        for i in range(total):
            value = self.step()
            if verbose and (i + 1) % self.config.log_every == 0:
                print(f"step {i + 1}/{total}  loss {value:.4f}")
        return self.history

    def smoothed_loss(self, window: int = 20) -> float:
        """Mean of the last ``window`` losses (for convergence tests)."""
        if not self.history:
            raise RuntimeError("no training steps recorded")
        return float(np.mean(self.history[-window:]))
