"""Unit and property tests for the bit-packing codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy import pack_signs, packed_words, popcount_u64, unpack_signs
from repro.deploy.packing import WORD_BITS


class TestPackedWords:
    def test_exact_multiples(self):
        assert packed_words(0) == 0
        assert packed_words(64) == 1
        assert packed_words(128) == 2

    def test_rounding_up(self):
        assert packed_words(1) == 1
        assert packed_words(65) == 2
        assert packed_words(127) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            packed_words(-1)


class TestPackSigns:
    def test_known_pattern(self):
        # +1 at positions 0 and 2 -> bits 0b101 = 5.
        signs = np.array([1.0, -1.0, 1.0])
        packed = pack_signs(signs)
        assert packed.shape == (1,)
        assert packed[0] == np.uint64(5)

    def test_bit_position_convention(self):
        # A lone +1 at position i sets bit i of word i // 64.
        for i in (0, 5, 63, 64, 100):
            signs = -np.ones(130)
            signs[i] = 1.0
            packed = pack_signs(signs)
            word, bit = divmod(i, WORD_BITS)
            assert packed[word] == np.uint64(1) << np.uint64(bit)
            others = [w for j, w in enumerate(packed) if j != word]
            assert all(w == 0 for w in others)

    def test_zero_counts_as_positive(self):
        packed = pack_signs(np.array([0.0, -1.0]))
        assert packed[0] == np.uint64(1)

    def test_leading_axes_preserved(self):
        signs = np.where(np.random.default_rng(0).random((2, 3, 70)) > 0.5, 1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (2, 3, 2)

    def test_scalar_input_raises(self):
        with pytest.raises(ValueError):
            pack_signs(np.float64(1.0))

    def test_unpack_word_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            unpack_signs(np.zeros((1, 2), dtype=np.uint64), 64)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers(0, 2**31))
    def test_roundtrip(self, k, seed):
        rng = np.random.default_rng(seed)
        signs = np.where(rng.random((3, k)) > 0.5, 1.0, -1.0)
        recovered = unpack_signs(pack_signs(signs), k)
        np.testing.assert_array_equal(recovered, signs)


class TestPopcount:
    def test_known_values(self):
        values = np.array([0, 1, 3, 0xFF, 2**63, 2**64 - 1], dtype=np.uint64)
        expected = [0, 1, 2, 8, 1, 64]
        np.testing.assert_array_equal(popcount_u64(values), expected)

    def test_shape_preserved(self):
        words = np.zeros((2, 3, 4), dtype=np.uint64)
        assert popcount_u64(words).shape == (2, 3, 4)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_python_bin(self, value):
        arr = np.array([value], dtype=np.uint64)
        assert popcount_u64(arr)[0] == bin(value).count("1")


class TestPackingEdgeCases:
    """Word-boundary, degenerate-shape and codec-equivalence cases."""

    def test_k_exactly_one_word(self):
        rng = np.random.default_rng(10)
        signs = np.where(rng.random((5, WORD_BITS)) > 0.5, 1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (5, 1)
        np.testing.assert_array_equal(unpack_signs(packed, WORD_BITS), signs)

    @pytest.mark.parametrize("k", [1, 63, 65, 100, 127, 129])
    def test_k_not_a_word_multiple(self, k):
        rng = np.random.default_rng(k)
        signs = np.where(rng.random((4, k)) > 0.5, 1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (4, packed_words(k))
        np.testing.assert_array_equal(unpack_signs(packed, k), signs)

    def test_single_row(self):
        signs = np.where(np.random.default_rng(11).random((1, 70)) > 0.5,
                         1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (1, 2)
        np.testing.assert_array_equal(unpack_signs(packed, 70), signs)

    def test_empty_batch_roundtrip(self):
        signs = np.empty((0, 70))
        packed = pack_signs(signs)
        assert packed.shape == (0, 2)
        assert unpack_signs(packed, 70).shape == (0, 70)

    def test_output_dtype_and_padding_bits_zero(self):
        packed = pack_signs(np.ones((2, 65)))
        assert packed.dtype == np.uint64
        # Bits 65..127 must stay zero so both gemm operands pad equally.
        assert packed[0, 1] == np.uint64(1)

    def test_empty_batch_binary_gemm(self):
        from repro.deploy import binary_gemm
        a = pack_signs(np.empty((0, 64)))
        b = pack_signs(np.where(np.random.default_rng(12).random((3, 64)) > 0.5,
                                1.0, -1.0))
        out = binary_gemm(a, b, 64)
        assert out.shape == (0, 3)
        out = binary_gemm(b, a, 64)
        assert out.shape == (3, 0)

    @pytest.mark.parametrize("k", [64, 128])
    def test_exact_word_multiple_gemm(self, k):
        from repro.deploy import binary_gemm
        rng = np.random.default_rng(k)
        a = np.where(rng.random((5, k)) > 0.5, 1.0, -1.0)
        b = np.where(rng.random((4, k)) > 0.5, 1.0, -1.0)
        out = binary_gemm(pack_signs(a), pack_signs(b), k)
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int32))


class TestSeededRoundTripSweep:
    """Deterministic randomized sweep of the pack/unpack codec.

    Complements the hypothesis properties above with a fixed, exhaustive
    grid over the shapes that have bitten packed kernels before: K=1,
    K straddling every word boundary, single rows, and tall panels.
    """

    WIDTHS = (1, 2, 63, 64, 65, 127, 128, 129, 191, 200, 1000)
    ROWS = (1, 3, 17)

    @pytest.mark.parametrize("k", WIDTHS)
    @pytest.mark.parametrize("rows", ROWS)
    def test_roundtrip(self, rows, k):
        rng = np.random.default_rng(1000 * rows + k)
        signs = np.where(rng.random((rows, k)) > 0.5, 1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (rows, packed_words(k))
        np.testing.assert_array_equal(unpack_signs(packed, k), signs)

    @pytest.mark.parametrize("k", WIDTHS)
    def test_tail_bits_are_zero(self, k):
        # All-ones rows: every bit beyond k must stay 0 so both GEMM
        # operands pad identically.
        packed = pack_signs(np.ones((2, k)))
        total = int(popcount_u64(packed).sum())
        assert total == 2 * k

    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_3d_panels(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 300))
        signs = np.where(rng.random((2, 3, k)) > 0.5, 1.0, -1.0)
        np.testing.assert_array_equal(unpack_signs(pack_signs(signs), k),
                                      signs)


class TestSwarPopcountOracle:
    def test_matches_lut_reference(self):
        from repro.deploy import popcount_u64_lut
        rng = np.random.default_rng(13)
        words = rng.integers(0, 2**64, size=(64, 33), dtype=np.uint64)
        np.testing.assert_array_equal(popcount_u64(words),
                                      popcount_u64_lut(words))

    def test_extremes(self):
        from repro.deploy import popcount_u64_lut
        words = np.array([0, 2**64 - 1, 0xAAAAAAAAAAAAAAAA,
                          0x5555555555555555], dtype=np.uint64)
        np.testing.assert_array_equal(popcount_u64(words), [0, 64, 32, 32])
        np.testing.assert_array_equal(popcount_u64_lut(words), [0, 64, 32, 32])
