"""PNG / PPM codecs: roundtrips, format details and failure modes."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import read_png, read_ppm, write_png, write_ppm


class TestPngRoundtrip:
    def test_rgb_uint8(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, size=(7, 5, 3), dtype=np.uint8)
        path = tmp_path / "x.png"
        write_png(path, img)
        np.testing.assert_array_equal(read_png(path), img)

    def test_grayscale(self, tmp_path):
        img = np.arange(20, dtype=np.uint8).reshape(4, 5)
        path = tmp_path / "g.png"
        write_png(path, img)
        out = read_png(path)
        assert out.ndim == 2
        np.testing.assert_array_equal(out, img)

    def test_float_quantization(self, tmp_path):
        img = np.array([[0.0, 0.5, 1.0]])
        path = tmp_path / "f.png"
        write_png(path, img)
        np.testing.assert_array_equal(read_png(path), [[0, 128, 255]])

    def test_single_channel_3d(self, tmp_path):
        img = np.zeros((3, 3, 1), dtype=np.uint8)
        write_png(tmp_path / "c1.png", img)
        assert read_png(tmp_path / "c1.png").shape == (3, 3)

    def test_signature(self, tmp_path):
        path = tmp_path / "sig.png"
        write_png(path, np.zeros((2, 2), dtype=np.uint8))
        assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"

    def test_bad_shape_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "bad.png", np.zeros((2, 2, 4)))

    def test_out_of_range_int_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "bad.png", np.array([[300]]))

    def test_not_png_raises(self, tmp_path):
        path = tmp_path / "no.png"
        path.write_bytes(b"definitely not a png")
        with pytest.raises(ValueError, match="not a PNG"):
            read_png(path)

    def test_crc_corruption_detected(self, tmp_path):
        path = tmp_path / "c.png"
        write_png(path, np.zeros((2, 2), dtype=np.uint8))
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF  # flip a bit inside IHDR payload
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="CRC"):
            read_png(path)

    @settings(max_examples=20, deadline=None)
    @given(h=st.integers(min_value=1, max_value=12),
           w=st.integers(min_value=1, max_value=12),
           channels=st.sampled_from([1, 3]), seed=st.integers(0, 2**31))
    def test_roundtrip_property(self, h, w, channels, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        shape = (h, w) if channels == 1 else (h, w, 3)
        img = rng.integers(0, 256, size=shape, dtype=np.uint8)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.png"
            write_png(path, img)
            np.testing.assert_array_equal(read_png(path), img)


class TestPngFilterDecoding:
    def _manual_png(self, tmp_path, scanlines, width, height, color_type):
        """Assemble a PNG with explicit filter bytes for decoder coverage."""
        def chunk(tag, payload):
            return (struct.pack(">I", len(payload)) + tag + payload
                    + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF))

        ihdr = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
        blob = (b"\x89PNG\r\n\x1a\n" + chunk(b"IHDR", ihdr)
                + chunk(b"IDAT", zlib.compress(scanlines))
                + chunk(b"IEND", b""))
        path = tmp_path / "manual.png"
        path.write_bytes(blob)
        return path

    def test_sub_and_up_filters(self, tmp_path):
        # Row 0: filter 1 (Sub); row 1: filter 2 (Up).  Gray 3x2.
        row0 = bytes([1, 10, 5, 5])       # decodes to 10, 15, 20
        row1 = bytes([2, 1, 1, 1])        # decodes to 11, 16, 21
        path = self._manual_png(tmp_path, row0 + row1, 3, 2, 0)
        np.testing.assert_array_equal(read_png(path),
                                      [[10, 15, 20], [11, 16, 21]])

    def test_average_filter(self, tmp_path):
        row = bytes([3, 10, 10, 10])      # avg of (left, up=0)
        path = self._manual_png(tmp_path, row, 3, 1, 0)
        np.testing.assert_array_equal(read_png(path), [[10, 15, 17]])

    def test_paeth_filter(self, tmp_path):
        row0 = bytes([0, 10, 20, 30])
        row1 = bytes([4, 5, 5, 5])
        path = self._manual_png(tmp_path, row0 + row1, 3, 1 + 1, 0)
        out = read_png(path)
        assert out.shape == (2, 3)
        np.testing.assert_array_equal(out[0], [10, 20, 30])


class TestPpm:
    def test_rgb_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, size=(6, 4, 3), dtype=np.uint8)
        path = tmp_path / "x.ppm"
        write_ppm(path, img)
        np.testing.assert_array_equal(read_ppm(path), img)

    def test_gray_roundtrip(self, tmp_path):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = tmp_path / "x.pgm"
        write_ppm(path, img)
        np.testing.assert_array_equal(read_ppm(path), img)

    def test_float_input(self, tmp_path):
        path = tmp_path / "f.pgm"
        write_ppm(path, np.array([[1.0, 0.0]]))
        np.testing.assert_array_equal(read_ppm(path), [[255, 0]])

    def test_comment_handling(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 1\n255\n\x07\x09")
        np.testing.assert_array_equal(read_ppm(path), [[7, 9]])

    def test_magic_rejected(self, tmp_path):
        path = tmp_path / "t.pbm"
        path.write_bytes(b"P1\n1 1\n1\n")
        with pytest.raises(ValueError, match="magic"):
            read_ppm(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\nxx")
        with pytest.raises(ValueError, match="truncated"):
            read_ppm(path)
