"""Tests for the LSF binarizer modules and the two re-scaling branches."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.binarize import (
    ChannelRescale,
    LSFBinarizer2d,
    LSFBinarizerTokens,
    SpatialRescale2d,
    SpatialRescaleTokens,
)

from ..helpers import rng


class TestLSFBinarizers:
    def test_2d_output_binary_with_alpha_magnitude(self):
        binarizer = LSFBinarizer2d(4, init_alpha=0.8)
        out = binarizer(Tensor(rng(0).normal(size=(2, 4, 5, 5))))
        np.testing.assert_allclose(np.abs(out.data), 0.8)

    def test_2d_learnable_params(self):
        binarizer = LSFBinarizer2d(4)
        assert binarizer.alpha.shape == (1, 1, 1, 1)
        assert binarizer.beta.shape == (1, 4, 1, 1)
        out = binarizer(Tensor(rng(1).normal(size=(1, 4, 3, 3))))
        G.sum(out).backward()
        assert binarizer.alpha.grad is not None
        assert binarizer.beta.grad is not None

    def test_tokens_layout(self):
        binarizer = LSFBinarizerTokens(8)
        out = binarizer(Tensor(rng(2).normal(size=(2, 10, 8))))
        assert out.shape == (2, 10, 8)
        np.testing.assert_allclose(np.abs(out.data), 1.0)

    def test_beta_shifts_threshold(self):
        binarizer = LSFBinarizer2d(1)
        binarizer.beta.data[:] = 0.5
        x = Tensor(np.full((1, 1, 2, 2), 0.4))
        out = binarizer(x)
        np.testing.assert_allclose(out.data, -1.0)  # 0.4 < threshold 0.5


class TestSpatialRescale:
    def test_2d_shape_one_channel(self):
        branch = SpatialRescale2d(8)
        out = branch(Tensor(rng(0).normal(size=(2, 8, 6, 6))))
        assert out.shape == (2, 1, 6, 6)

    def test_output_in_sigmoid_range(self):
        branch = SpatialRescale2d(8)
        out = branch(Tensor(rng(1).normal(size=(1, 8, 4, 4)) * 10))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_stride_matches_conv_output(self):
        branch = SpatialRescale2d(8, stride=2)
        out = branch(Tensor(rng(2).normal(size=(1, 8, 8, 8))))
        assert out.shape == (1, 1, 4, 4)

    def test_input_dependence(self):
        """The scale map changes with the input — the paper's key property
        (input-dependent, captures image-to-image variation)."""
        branch = SpatialRescale2d(4)
        a = branch(Tensor(rng(3).normal(size=(1, 4, 4, 4)))).data
        b = branch(Tensor(rng(4).normal(size=(1, 4, 4, 4)))).data
        assert not np.allclose(a, b)

    def test_tokens_variant(self):
        branch = SpatialRescaleTokens(8)
        out = branch(Tensor(rng(5).normal(size=(2, 10, 8))))
        assert out.shape == (2, 10, 1)
        assert np.all((out.data > 0) & (out.data < 1))

    def test_parameter_count_is_small(self):
        # 1x1 conv: C weights + 1 bias — "little parameters" per the paper.
        branch = SpatialRescale2d(64)
        assert sum(p.size for p in branch.parameters()) == 65


class TestChannelRescale:
    def test_shape(self):
        branch = ChannelRescale(16)
        out = branch(Tensor(rng(0).normal(size=(2, 16, 5, 5))))
        assert out.shape == (2, 16, 1, 1)

    def test_sigmoid_range(self):
        branch = ChannelRescale(8)
        out = branch(Tensor(rng(1).normal(size=(1, 8, 4, 4)) * 20))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_fp_parameter_count_is_kernel_size(self):
        """The paper's claim: only k FP parameters (vs 2C^2/r for SE)."""
        branch = ChannelRescale(256, kernel_size=5)
        assert branch.num_fp_parameters() == 5
        assert sum(p.size for p in branch.parameters()) == 5

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            ChannelRescale(8, kernel_size=4)

    def test_channel_mixing(self):
        """Conv1d couples nearby channels: changing one channel's content
        shifts its neighbours' scales."""
        branch = ChannelRescale(8, kernel_size=5)
        x = rng(2).normal(size=(1, 8, 4, 4))
        base = branch(Tensor(x)).data
        x2 = x.copy()
        x2[0, 3] += 5.0
        bumped = branch(Tensor(x2)).data
        changed = np.abs(bumped - base)[0, :, 0, 0] > 1e-9
        assert changed[1:6].any() and changed[3]

    def test_input_dependence(self):
        branch = ChannelRescale(8)
        a = branch(Tensor(rng(3).normal(size=(1, 8, 3, 3)))).data
        b = branch(Tensor(rng(4).normal(size=(1, 8, 3, 3)))).data
        assert not np.allclose(a, b)

    def test_parameter_ratio_vs_se_block(self):
        """Reproduce the Sec. IV-C arithmetic: 2C^2/(r k) ~ 1638x at
        C=256, r=16, k=5."""
        c, r, k = 256, 16, 5
        se_params = 2 * c * c // r
        ours = ChannelRescale(c, k).num_fp_parameters()
        assert se_params / ours == pytest.approx(1638.4, rel=1e-3)
