"""Quickstart: binarize an SR network with SCALES, train it, evaluate it.

Runs in about a minute on a laptop CPU (everything is NumPy).

    python examples/quickstart.py
"""

from repro import grad as G
from repro.data import benchmark_suite, training_pool
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer, evaluate, evaluate_bicubic

G.set_default_dtype("float32")   # 2x faster than the float64 default
init.seed(42)                    # reproducible weights


def main() -> None:
    scale = 4

    # 1. Build a SRResNet whose body convs are SCALES binary layers
    #    (layer-wise scaling factor + spatial & channel re-scaling).
    model = build_model("srresnet", scale=scale, scheme="scales",
                        preset="tiny", light_tail=True, head_kernel=3)
    print(f"model parameters: {model.num_parameters():,}")

    # 2. Train on the synthetic DIV2K substitute (L1 loss, ADAM — the
    #    paper's recipe at laptop scale).
    pool = training_pool(scale=scale, n_images=16, size=(96, 96))
    config = TrainConfig(steps=600, batch_size=8, patch_size=16, lr=3e-4,
                         lr_step=400)
    trainer = Trainer(model, pool, config)
    trainer.fit(verbose=True)
    print(f"final training loss: {trainer.smoothed_loss():.4f}")

    # 3. Evaluate PSNR/SSIM against bicubic on the texture suite (B100-
    #    style, where x4 reconstruction headroom is largest) and the
    #    repeated-geometry suite (Urban100-style, the paper's headline).
    for name in ("b100", "urban100"):
        suite = benchmark_suite(name, scale=scale, n_images=8, size=(64, 64))
        ours = evaluate(model, suite)
        bicubic = evaluate_bicubic(suite)
        print(f"{name:>9}:  SCALES {ours.psnr:.2f} dB / SSIM {ours.ssim:.3f}"
              f"  |  bicubic {bicubic.psnr:.2f} dB / SSIM {bicubic.ssim:.3f}")


if __name__ == "__main__":
    main()
