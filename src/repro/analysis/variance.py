"""Activation-variance statistics (Table II).

The paper quantifies four variation axes for each network:

* channel-to-channel: variance of per-channel means;
* pixel-to-pixel: variance of per-pixel (across-channel) means;
* layer-to-layer: variance of per-layer means;
* image-to-image: variance of per-image means;

computed over the recorded body-layer inputs.  SR networks (EDSR, SwinIR)
show orders of magnitude more variation than classifiers (ResNet,
SwinViT) because classifiers normalize aggressively — the numbers here
reproduce that contrast, not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass
class VarianceStats:
    """Table II row for one network."""

    network: str
    channel_to_channel: float
    pixel_to_pixel: float
    layer_to_layer: float
    image_to_image: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "chl-to-chl": self.channel_to_channel,
            "pixel-to-pixel": self.pixel_to_pixel,
            "layer-to-layer": self.layer_to_layer,
            "image-to-image": self.image_to_image,
        }


def _per_layer_arrays(records: Dict[str, List[np.ndarray]]) -> Dict[str, np.ndarray]:
    """Concatenate the per-image captures of each layer along batch."""
    return {name: np.concatenate(arrays, axis=0) for name, arrays in records.items()}


def variance_stats(network: str, records: Dict[str, List[np.ndarray]]) -> VarianceStats:
    """Compute the four Table II statistics from recorder output.

    Accepts NCHW conv activations or (B, L, C) token activations; token
    tensors treat L as the "pixel" axis and C as channels.
    """
    layers = _per_layer_arrays(records)
    if not layers:
        raise ValueError("no recorded activations")

    channel_vars: List[float] = []
    pixel_vars: List[float] = []
    layer_means: List[float] = []
    image_means: List[float] = []
    for arr in layers.values():
        if arr.ndim == 4:      # (B, C, H, W)
            channel_means = arr.mean(axis=(0, 2, 3))
            pixel_means = arr.mean(axis=1).reshape(arr.shape[0], -1)
            per_image = arr.mean(axis=(1, 2, 3))
        elif arr.ndim == 3:    # (B, L, C)
            channel_means = arr.mean(axis=(0, 1))
            pixel_means = arr.mean(axis=2)
            per_image = arr.mean(axis=(1, 2))
        else:
            raise ValueError(f"unsupported activation rank {arr.ndim}")
        channel_vars.append(float(np.var(channel_means)))
        pixel_vars.append(float(np.var(pixel_means)))
        layer_means.append(float(arr.mean()))
        image_means.extend(per_image.tolist())

    return VarianceStats(
        network=network,
        channel_to_channel=float(np.mean(channel_vars)),
        pixel_to_pixel=float(np.mean(pixel_vars)),
        layer_to_layer=float(np.var(layer_means)),
        image_to_image=float(np.var(image_means)),
    )
