"""The `Engine` facade: one front door for the whole model lifecycle.

The five organically-grown entry layers — ``models.build_model``,
``deploy.compile_model``, ``deploy.serialize.save_artifact`` /
``load_artifact``, ``infer.InferencePipeline`` and
``serve.ModelServer`` — stay exactly where they are; :class:`Engine`
drives them through one typed, stateful object:

.. code-block:: python

    from repro.api import Engine, EngineConfig

    engine = (Engine.from_spec("srresnet", scheme="scales", scale=2,
                               config=EngineConfig(dtype="float32", seed=42))
              .train(steps=200)
              .compile())
    path = engine.export("srresnet_scales_x2.rbd.npz")

    served = Engine.from_artifact(path)        # no float model rebuilt
    result = served.infer(lr_image)            # typed InferResult
    sr = result.unwrap()

    with served.serve() as session:            # ModelServer round-trip,
        result2 = session.infer(lr_image)      # same InferResult type

Lifecycle states: a *spec-backed* engine starts with a float model
(train / compile / export all available); an *artifact-backed* engine
(``from_artifact``) starts compiled, with no float model (training
raises a typed :class:`EngineError`).  Inference works in every state —
on the packed model when compiled, on the float model otherwise — and
always executes through :class:`repro.infer.InferencePipeline`, so a
facade result is bit-identical to hand-wiring the layers with the same
knobs (the round-trip tests enforce this).

Every operation runs inside :meth:`EngineConfig.scope`: backend and
dtype overrides are set-and-restored around the call.  They are still
the process-global switches while active — scoped in time, not per
thread — so engines with conflicting explicit backends/dtypes should
not run concurrently (see the dtype note on :meth:`Engine.serve`).
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

import numpy as np

from .capabilities import Capability, capability
from .config import EngineConfig
from .results import EngineError, InferRequest, InferResult
from .spec import ModelSpec

__all__ = ["Engine"]


class Engine:
    """Typed facade over train -> compile -> export -> infer -> serve.

    Construct through :meth:`from_spec` or :meth:`from_artifact`; the
    bare constructor is for wiring pre-built models in (``model=`` a
    float model, ``compiled=`` a ``compile_model`` output).
    """

    def __init__(self, spec: Union[ModelSpec, str], *,
                 config: Optional[EngineConfig] = None,
                 model=None, compiled=None,
                 artifact_path: Optional[Path] = None) -> None:
        self.spec = ModelSpec.coerce(spec)
        self.config = config if config is not None else EngineConfig()
        self.model = model
        self.compiled = compiled
        self.artifact_path = (Path(artifact_path)
                              if artifact_path is not None else None)
        self.trainer = None
        self._pipeline = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: Union[ModelSpec, str],
                  config: Optional[EngineConfig] = None,
                  **spec_kwargs: Any) -> "Engine":
        """Build the float model for a spec (or an architecture name
        plus ``scheme= / scale= / preset= / overrides``) and wrap it.

        Constructor overrides ride along either way: as an explicit
        ``overrides={...}`` dict or as bare extra keywords
        (``light_tail=True``); the two merge, bare keywords winning.
        ``config.seed`` (when set) seeds the RNG first, so weight
        initialization is reproducible; ``config.dtype`` scopes the
        build's default dtype.
        """
        overrides = dict(spec_kwargs.pop("overrides", {}))
        overrides.update({k: spec_kwargs.pop(k) for k in list(spec_kwargs)
                          if k not in ("scheme", "scale", "preset")})
        if overrides and not isinstance(spec, (ModelSpec, dict)):
            spec_kwargs["overrides"] = overrides
        elif overrides:
            raise EngineError(
                "constructor overrides go inside the ModelSpec/recipe when "
                f"one is passed (got extra keywords {sorted(overrides)})")
        spec = ModelSpec.coerce(spec, **spec_kwargs)
        engine = cls(spec, config=config)
        with engine.config.scope():
            engine.model = spec.build(seed=engine.config.seed)
        return engine

    @classmethod
    def from_artifact(cls, path, config: Optional[EngineConfig] = None
                      ) -> "Engine":
        """Load a packed deploy artifact into a compiled engine.

        The spec is recovered from the artifact's build recipe; the
        float model is never rebuilt (packed sites load as packed
        layers).  The artifact's stored tiling configuration is *not*
        adopted — tiling is an execution knob and belongs to
        ``config.tile`` under the facade.
        """
        from ..deploy.serialize import load_artifact, read_artifact_meta
        meta = read_artifact_meta(path)
        if meta.get("recipe") is None:
            raise EngineError(
                f"{path} carries no build recipe; load it with "
                "repro.deploy.load_artifact(skeleton=...) instead")
        spec = ModelSpec.from_recipe(meta["recipe"])
        engine = cls(spec, config=config, artifact_path=Path(path))
        with engine.config.scope():
            engine.compiled = load_artifact(path, tile=None)
        return engine

    # -- introspection -----------------------------------------------------

    @property
    def state(self) -> str:
        """``"spec"`` (float model only), ``"compiled"``, or
        ``"exported"`` (compiled with an on-disk artifact)."""
        if self.compiled is not None:
            return "exported" if self.artifact_path is not None else "compiled"
        return "spec"

    def capability(self) -> Capability:
        """Can this cell compile / export / serve?  Answered from the
        merged registry before any work happens."""
        return capability(self.spec)

    def __repr__(self) -> str:
        return (f"Engine({self.spec.route!r}, state={self.state!r}, "
                f"preset={self.spec.preset!r})")

    # -- lifecycle ---------------------------------------------------------

    def train(self, pool=None, train_config=None, *,
              steps: Optional[int] = None, verbose: bool = False) -> "Engine":
        """Train the float model (paper recipe: L1 + ADAM).

        ``pool`` defaults to the synthetic DIV2K substitute at this
        spec's scale; ``train_config`` is a
        :class:`repro.train.TrainConfig` (``steps=`` overrides just the
        step count).  Returns ``self`` for chaining; the fitted
        :class:`repro.train.Trainer` stays available as ``.trainer``.
        """
        if self.model is None:
            raise EngineError(
                "artifact-backed engines have no float model to train; "
                "rebuild one with Engine.from_spec")
        from ..data import training_pool
        from ..train import TrainConfig, Trainer
        config = train_config if train_config is not None else TrainConfig()
        if steps is not None:
            config = replace(config, steps=steps)
        if pool is None:
            pool = training_pool(scale=self.spec.scale)
        with self.config.scope():
            self.trainer = Trainer(self.model, pool, config)
            self.trainer.fit(verbose=verbose)
        # Weights changed: any compiled twin or pipeline is stale.
        self.compiled = None
        self.artifact_path = None
        self._pipeline = None
        return self

    def compile(self, force: bool = False) -> "Engine":
        """Swap binary layers for packed twins (``deploy.compile_model``).

        Checks the capability registry first, so an undeployable cell
        fails with the registry's explanation instead of a compiler
        error.  No-op when already compiled (``force=True`` recompiles
        from the float model).
        """
        if self.compiled is not None and not force:
            return self
        if self.model is None:
            raise EngineError(
                "nothing to compile: artifact-backed engines are already "
                "compiled (pass force=False)" if self.artifact_path
                else "engine has no model")
        self.capability().require("compile")
        from ..deploy.engine import compile_model
        with self.config.scope():
            self.compiled = compile_model(self.model)
        self._pipeline = None
        return self

    def export(self, path=None) -> Path:
        """Write the packed deploy artifact (compiling first if needed).

        ``path`` defaults to the spec's canonical artifact name in the
        current directory.  When ``config.tile`` is set the tiling
        configuration is recorded in the artifact.  Returns the written
        path (also kept as ``.artifact_path``).
        """
        self.capability().require("export")
        self.compile()
        from ..deploy.engine import TiledInference
        from ..deploy.serialize import save_artifact
        target = self.compiled
        if self.config.tile is not None:
            target = TiledInference(
                self.compiled, tile=self.config.tile,
                overlap=self.config.tile_overlap,
                batch_size=self.config.tile_batch_size,
                n_threads=self.config.n_threads)
        with self.config.scope():
            written = save_artifact(target, path, recipe=self.spec.to_recipe())
        self.artifact_path = Path(written)
        return self.artifact_path

    # -- inference ---------------------------------------------------------

    def pipeline(self):
        """The engine's :class:`repro.infer.InferencePipeline` (built
        lazily from the config; the escape hatch to the low-level API)."""
        if self._pipeline is None:
            model = self.compiled if self.compiled is not None else self.model
            if model is None:
                raise EngineError("engine has no model to run")
            from ..infer.pipeline import InferencePipeline
            self._pipeline = InferencePipeline.from_config(
                model, self.config, scale=self.spec.scale)
        return self._pipeline

    def infer(self, image: Union[np.ndarray, InferRequest]) -> InferResult:
        """Run one ``(H, W, C)`` image; returns a typed
        :class:`InferResult` (never raises for execution failures)."""
        return self.infer_many([image])[0]

    def infer_many(self, images: Sequence[Union[np.ndarray, InferRequest]]
                   ) -> List[InferResult]:
        """Run a batch of images through one micro-batched flush.

        Execution failures resolve as ``status == "error"`` results —
        the same typed outcome a :class:`repro.serve.ModelServer`
        round-trip produces — and images the failed flush did complete
        keep their ``"ok"`` results, mirroring the server's salvage
        semantics.
        """
        requests = [img if isinstance(img, InferRequest)
                    else InferRequest(image=np.asarray(img)) for img in images]
        key = self.spec.key
        from ..serve.server import parse_model_key
        arrays = []
        for req in requests:
            if req.model is not None and parse_model_key(req.model) != key:
                raise EngineError(
                    f"request routed to {req.model!r} but this engine runs "
                    f"{self.spec.route}; use a ServeSession (Engine.serve / "
                    "serve_directory) for multi-model routing")
            array = np.asarray(req.image)
            if array.ndim != 3:
                # Misuse is validated up front (and raises) so a bad
                # image can never strand its batch-mates in the queue.
                raise EngineError(
                    f"expected an (H, W, C) image, got shape {array.shape}")
            arrays.append(array)
        pipeline = self.pipeline()
        handles = []
        try:
            for array in arrays:
                handles.append(pipeline.submit(array))
        except Exception:
            pipeline.discard_pending(handles)
            raise
        try:
            with self.config.scope():
                pipeline.flush()
        except Exception as exc:
            pipeline.discard_pending([h for h in handles if not h.done()])
            message = f"{type(exc).__name__}: {exc}"
            return [InferResult.success(h.result(), key) if h.done()
                    else InferResult.failure(key, message) for h in handles]
        return [InferResult.success(h.result(), key) for h in handles]

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Release the engine's models and pipeline.

        Bulk workers cycle many engines through a bounded cache
        (:class:`repro.jobs.worker.EngineCache`); ``close()`` drops the
        packed/float models and the lazily built pipeline so their
        arrays free immediately instead of waiting on the cycle
        collector.  The engine keeps its spec/config and stays
        introspectable (``state`` returns to ``"spec"``); any further
        lifecycle call fails with the usual typed
        :class:`EngineError` for an engine with no model.
        """
        if self._pipeline is not None:
            self._pipeline.close()
        self._pipeline = None
        self.compiled = None
        self.model = None
        self.trainer = None
        self.artifact_path = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- serving -----------------------------------------------------------

    def serve(self, artifact_dir=None,
              config: Optional[EngineConfig] = None):
        """Start a :class:`repro.api.ServeSession` for this engine.

        With no ``artifact_dir`` the engine serves the directory
        containing its artifact — exporting into a fresh private
        temporary directory first when not yet exported (that zoo then
        holds only this engine's artifact and remains on disk after the
        session closes — it is recorded as ``.artifact_path`` and is
        the caller's to delete; an already-exported engine's directory
        may contain, and will serve, sibling artifacts).
        The session's default model is this engine's
        spec, so ``session.infer(image)`` round-trips through the
        :class:`repro.serve.ModelServer` and returns the same
        :class:`InferResult` objects ``Engine.infer`` does.

        Note on dtype: ``config.dtype`` is threaded into the server
        (:meth:`EngineConfig.to_server_config`), which applies it as a
        thread-scoped override around every model load and flush — so
        served outputs are bit-identical to direct ``infer`` under a
        non-default dtype too, without touching the process-wide
        default (the cross-surface round-trip tests enforce this).
        """
        from .serving import ServeSession
        self.capability().require("serve")
        if artifact_dir is None:
            if self.artifact_path is None:
                workdir = tempfile.mkdtemp(prefix="repro_engine_zoo_")
                self.export(Path(workdir) / self.spec.artifact_name())
            artifact_dir = self.artifact_path.parent
        return ServeSession.over_directory(
            artifact_dir, config if config is not None else self.config,
            default_model=self.spec.key)

    def stream(self, stream_config=None, *, session=None,
               stream_id: Optional[str] = None):
        """Open a :class:`repro.stream.StreamSession` for video SR.

        Frames submitted to the returned session are tile-delta
        planned against a per-stream tile cache, dirty tiles are
        served through this engine's artifact, and results are
        delivered strictly in sequence.  With no ``session`` the
        engine opens (and owns) a :meth:`serve` session — closing the
        stream closes it.  Pass an existing :class:`ServeSession` to
        share one server across many concurrent streams.

        ``stream_config`` is a :class:`repro.stream.StreamConfig`;
        when omitted, the stream's tile geometry follows the engine's
        ``config.tile`` / ``config.tile_overlap``, which is exactly
        the geometry that makes streamed frames bit-identical to
        one-shot :meth:`infer` with tiling enabled.
        """
        from ..stream import StreamConfig, StreamSession
        owns = session is None
        if session is None:
            session = self.serve()
        if stream_config is None:
            kwargs = {"overlap": self.config.tile_overlap}
            if self.config.tile is not None:
                kwargs["tile"] = self.config.tile
            stream_config = StreamConfig(**kwargs)
        return StreamSession(
            session, self.spec.key, self.spec.scale, stream_config,
            stream_id=stream_id, owns_backend=owns)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, pairs, shave: Optional[int] = None):
        """Mean Y-channel PSNR/SSIM over LR/HR pairs
        (:func:`repro.train.evaluate` on the float model when present,
        else the compiled one)."""
        from ..train import evaluate
        model = self.model if self.model is not None else self.compiled
        if model is None:
            raise EngineError("engine has no model to evaluate")
        with self.config.scope():
            return evaluate(model, pairs, shave=shave)
