"""Train -> export -> load -> serve: the packed deployment artifact flow.

The paper's phone deployment assumes a trained network is exported once
and served from its packed form.  This example walks that full path:

1. train a small SCALES-binarized SRResNet;
2. ``compile_model(..., freeze=...)`` — compile onto the packed
   XNOR-popcount engine *and* write a one-file ``.npz`` deploy artifact
   (bit-packed uint64 weight words + scales/thresholds + the FP
   remainder; the float binary weights never touch disk);
3. ``load_artifact`` — rebuild a servable packed model straight from the
   artifact (the float model is not reconstructed: packed sites load as
   packed layers);
4. serve it through :class:`repro.infer.InferencePipeline` and verify
   the served outputs are bit-identical to the live compiled model.

Run:  python examples/export_and_serve.py
"""

import os
import tempfile

import numpy as np

from repro import grad as G
from repro.data import training_pool
from repro.deploy import (artifact_report, compile_model, load_artifact,
                          read_artifact_meta, registry_matrix)
from repro.grad import Tensor, no_grad
from repro.infer import InferencePipeline
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer


def main() -> None:
    scale = 2
    with G.default_dtype("float32"):
        init.seed(42)
        model = build_model("srresnet", scale=scale, scheme="scales",
                            preset="tiny", light_tail=True, head_kernel=3)

        print("Training SCALES-binarized SRResNet (quick demo schedule)...")
        pool = training_pool(scale=scale, n_images=8, size=(64, 64))
        trainer = Trainer(model, pool, TrainConfig(steps=80, batch_size=8,
                                                   patch_size=16, lr=3e-4,
                                                   lr_step=60, seed=7))
        trainer.fit(verbose=False)

        workdir = tempfile.mkdtemp(prefix="repro_deploy_")
        artifact = os.path.join(workdir, "srresnet_scales_x2.rbd.npz")
        float_ckpt = os.path.join(workdir, "srresnet_scales_x2_float.npz")

        print("\nExporting the packed deploy artifact...")
        compiled = compile_model(model, freeze=artifact)
        model.save(float_ckpt)
        report = artifact_report(artifact)
        print(f"  artifact          : {artifact}")
        print(f"  on disk           : {os.path.getsize(artifact)} bytes "
              f"(float checkpoint: {os.path.getsize(float_ckpt)} bytes)")
        print(f"  packed layers     : {report.n_binary_layers}")
        print(f"  binary weights    : {report.packed_weight_bytes} bytes "
              f"packed vs {report.dense_weight_bytes} dense -> "
              f"{report.weight_compression:.1f}x")

        meta = read_artifact_meta(artifact)
        print(f"  recipe            : {meta['recipe']['architecture']} / "
              f"{meta['recipe']['scheme']} / x{meta['recipe']['scale']}")

        print("\nLoading the artifact into a servable model "
              "(no float model rebuild)...")
        served = load_artifact(artifact)

        print("Serving through InferencePipeline (micro-batched)...")
        pipeline = InferencePipeline(artifact, batch_size=4)
        rng = np.random.default_rng(0)
        images = [rng.random((24, 24, 3)).astype(np.float32)
                  for _ in range(6)]
        outputs = pipeline.map(images)

        print("Verifying served outputs against the live compiled model...")
        worst = 0.0
        for img, out in zip(images, outputs):
            with no_grad():
                x = Tensor(img.transpose(2, 0, 1)[None])
                live = np.clip(served(x).data[0].transpose(1, 2, 0), 0, 1)
            worst = max(worst, float(np.abs(out - live).max()))
        if worst != 0.0:
            raise SystemExit(f"FAIL: pipeline outputs drifted from the "
                             f"loaded model (max diff {worst:.1e})")
        print(f"  {len(outputs)} images served, bit-identical vs the "
              f"loaded model")

        with no_grad():
            x = Tensor(images[0].transpose(2, 0, 1)[None])
            a = compiled(x).data
            b = served(x).data
        if not np.array_equal(a, b):
            raise SystemExit("FAIL: loaded artifact drifted from the live "
                             "compiled model")
        print("  loaded vs live compiled: bit-identical")

        print("\nZoo-wide deploy coverage (registry):")
        matrix = registry_matrix()
        for coverage in ("full", "partial"):
            cells = sorted(f"{a}/{s}" for (a, s), c in matrix.items()
                           if c == coverage)
            print(f"  {coverage:8s}: {', '.join(cells)}")


if __name__ == "__main__":
    main()
