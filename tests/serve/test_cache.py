"""Result cache: content keys, byte-bounded LRU eviction, isolation."""

import numpy as np
import pytest

from repro.serve import ResultCache, TileReuseCache, content_key


def _arr(fill, shape=(4, 4, 3), dtype=np.float32):
    return np.full(shape, fill, dtype=dtype)


class TestContentKey:
    def test_identical_inputs_collide(self):
        a = _arr(0.25)
        b = a.copy()
        key = ("srresnet", "scales", 2)
        assert content_key(key, a) == content_key(key, b)

    def test_one_pixel_changes_key(self):
        a = _arr(0.25)
        b = a.copy()
        b[0, 0, 0] += 1e-3
        key = ("srresnet", "scales", 2)
        assert content_key(key, a) != content_key(key, b)

    def test_model_key_is_part_of_identity(self):
        a = _arr(0.25)
        assert content_key(("srresnet", "scales", 2), a) != content_key(
            ("edsr", "scales", 2), a
        )

    def test_dtype_and_shape_matter(self):
        a = _arr(0.25, dtype=np.float32)
        b = _arr(0.25, dtype=np.float64)
        key = ("srresnet", "scales", 2)
        assert content_key(key, a) != content_key(key, b)
        # Same bytes, different geometry must not collide.
        flat = np.zeros(12, dtype=np.float32)
        assert content_key(key, flat.reshape(2, 6)) != content_key(
            key, flat.reshape(6, 2)
        )

    def test_non_contiguous_input_hashes_like_its_copy(self):
        base = np.arange(48, dtype=np.float32).reshape(4, 4, 3)
        view = base[::2]
        key = ("srresnet", "scales", 2)
        assert content_key(key, view) == content_key(key, view.copy())

    def test_tile_slice_of_frame_hashes_like_its_copy(self):
        # The streaming planner hashes tile *views* of an HWC frame —
        # row-sliced, column-sliced, non-contiguous in memory.  Their
        # keys must match a packed copy or the tile cache (and the
        # server's coalescing) would never see repeats.
        frame = np.arange(16 * 20 * 3, dtype=np.float32)
        frame = frame.reshape(16, 20, 3)
        key = ("srresnet", "scales", 2)
        tile = frame[4:12, 6:14]  # interior tile: both axes strided
        assert not tile.flags["C_CONTIGUOUS"]
        assert content_key(key, tile) == content_key(
            key, np.ascontiguousarray(tile)
        )
        # And the same content at a different origin collides too.
        frame2 = np.zeros((16, 20, 3), dtype=np.float32)
        frame2[1:9, 2:10] = tile
        assert content_key(key, frame2[1:9, 2:10]) == content_key(
            key, tile.copy()
        )

    def test_fortran_order_hashes_like_c_order(self):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        f = np.asfortranarray(a)
        assert not f.flags["C_CONTIGUOUS"]
        key = ("srresnet", "scales", 2)
        assert content_key(key, f) == content_key(key, a)

    def test_negative_stride_view_hashes_like_its_copy(self):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        rev = a[::-1, ::-1]
        key = ("srresnet", "scales", 2)
        assert content_key(key, rev) == content_key(key, rev.copy())
        # Reversal changes content, so it must NOT collide with the
        # original orientation.
        assert content_key(key, rev) != content_key(key, a)


class TestResultCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(max_bytes=1 << 20)
        value = _arr(0.5)
        assert cache.get("k") is None
        assert cache.put("k", value)
        np.testing.assert_array_equal(cache.get("k"), value)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["current_bytes"] == value.nbytes

    def test_returned_array_is_isolated(self):
        cache = ResultCache(max_bytes=1 << 20)
        value = _arr(0.5)
        cache.put("k", value)
        value[:] = -1.0  # caller mutates after put
        out = cache.get("k")
        np.testing.assert_array_equal(out, _arr(0.5))
        out[:] = -2.0  # caller mutates the hit
        np.testing.assert_array_equal(cache.get("k"), _arr(0.5))

    def test_lru_eviction_by_bytes(self):
        entry_bytes = _arr(0.0).nbytes
        cache = ResultCache(max_bytes=2 * entry_bytes)
        cache.put("a", _arr(1.0))
        cache.put("b", _arr(2.0))
        cache.put("c", _arr(3.0))  # evicts "a"
        assert cache.get("a") is None
        np.testing.assert_array_equal(cache.get("b"), _arr(2.0))
        np.testing.assert_array_equal(cache.get("c"), _arr(3.0))
        assert cache.evictions == 1
        assert cache.current_bytes == 2 * entry_bytes

    def test_get_refreshes_recency(self):
        entry_bytes = _arr(0.0).nbytes
        cache = ResultCache(max_bytes=2 * entry_bytes)
        cache.put("a", _arr(1.0))
        cache.put("b", _arr(2.0))
        cache.get("a")  # "b" is now least recently used
        cache.put("c", _arr(3.0))
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_oversized_value_is_refused(self):
        cache = ResultCache(max_bytes=8)
        assert not cache.put("big", _arr(1.0))
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_replacing_a_key_updates_bytes(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("k", _arr(1.0, shape=(2, 2, 3)))
        cache.put("k", _arr(2.0, shape=(8, 8, 3)))
        assert len(cache) == 1
        assert cache.current_bytes == _arr(0.0, shape=(8, 8, 3)).nbytes
        np.testing.assert_array_equal(cache.get("k"), _arr(2.0, shape=(8, 8, 3)))

    def test_zero_budget_disables(self):
        cache = ResultCache(max_bytes=0)
        assert not cache.put("k", _arr(1.0))
        assert cache.get("k") is None

    def test_clear_keeps_lifetime_counters(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("k", _arr(1.0))
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.hits == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=-1)


class TestTileReuseCache:
    def test_inherits_lru_semantics(self):
        cache = TileReuseCache(max_bytes=1 << 20)
        value = _arr(0.5)
        assert cache.put("k", value)
        np.testing.assert_array_equal(cache.get("k"), value)
        got = cache.get("k")
        got[0, 0, 0] = 99.0  # copies out: stored value is isolated
        np.testing.assert_array_equal(cache.get("k"), value)

    def test_reuse_accounting_separate_from_probe_traffic(self):
        cache = TileReuseCache(max_bytes=1 << 20)
        cache.put("k", _arr(0.5))
        cache.get("k")
        cache.get("nope")
        # Raw probe counters move, reuse counters only via record_frame.
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.reuse_ratio == 0.0
        cache.record_frame(reused=3, computed=1)
        cache.record_frame(reused=1, computed=3)
        assert cache.reused_tiles == 4
        assert cache.computed_tiles == 4
        assert cache.reuse_ratio == 0.5
        stats = cache.stats()
        assert stats["reused_tiles"] == 4
        assert stats["computed_tiles"] == 4
        assert stats["reuse_ratio"] == 0.5

    def test_zero_budget_disables_reuse_storage(self):
        cache = TileReuseCache(max_bytes=0)
        assert not cache.put("k", _arr(0.5))
        assert cache.get("k") is None
        assert cache.reuse_ratio == 0.0
