"""Neural-network building blocks on top of :mod:`repro.grad`."""

from .module import Module, Parameter
from .sequential import ModuleList, Sequential
from .layers import (
    AvgPool2d,
    Conv1d,
    Conv2d,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    PixelShuffle,
    PReLU,
    ReLU,
    Sigmoid,
)
from .norm import BatchNorm2d, LayerNorm
from .attention import (
    Mlp,
    SwinBlock,
    WindowAttention,
    default_linear_factory,
    relative_position_index,
    shifted_window_attention_mask,
    window_partition,
    window_reverse,
)
from . import init

__all__ = [
    "Module", "Parameter", "ModuleList", "Sequential",
    "AvgPool2d", "Conv1d", "Conv2d", "Flatten", "GELU", "GlobalAvgPool2d",
    "Identity", "LeakyReLU", "Linear", "PixelShuffle", "PReLU", "ReLU", "Sigmoid",
    "BatchNorm2d", "LayerNorm",
    "Mlp", "SwinBlock", "WindowAttention", "default_linear_factory",
    "relative_position_index", "shifted_window_attention_mask",
    "window_partition", "window_reverse",
    "init",
]
