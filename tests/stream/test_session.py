"""StreamSession behavior over a controllable fake backend.

The fakes let these tests play adversarial scheduler: completion
order is shuffled across streams, tiles are withheld past deadlines,
and busy/error markers are injected — all without a real model, so
the ordering/deadline/shedding guarantees are exercised in
milliseconds.  The fake "SR" at ``scale=1`` is the identity, so a
correctly stitched frame equals its input exactly (overlap 0).
"""

import threading
import time

import numpy as np
import pytest

from repro.stream import StreamConfig, StreamError, StreamSession

MODEL = ("srresnet", "scales", 2)


class FakeFuture:
    def __init__(self, image):
        self.image = np.asarray(image)
        self._event = threading.Event()
        self._value = None

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        if not self._event.wait(timeout):
            raise TimeoutError("tile not served within timeout")
        return self._value

    def resolve(self, value=None):
        """Default resolution: identity 'SR' of the submitted tile."""
        if value is None:
            value = np.asarray(self.image, dtype=np.float64)
        self._value = value
        self._event.set()


class FakeBackend:
    """Duck-typed serving surface; completion is driven by the test."""

    def __init__(self):
        self.lock = threading.Lock()
        self.pending = []
        self.submitted = 0
        self.arrived = threading.Condition(self.lock)

    def submit(self, image, model=None, deadline_s=None):
        fut = FakeFuture(image)
        with self.lock:
            self.pending.append(fut)
            self.submitted += 1
            self.arrived.notify_all()
        return fut

    def wait_for_submissions(self, n, timeout=5.0):
        deadline = time.monotonic() + timeout
        with self.lock:
            while self.submitted < n:
                remaining = deadline - time.monotonic()
                assert remaining > 0, (
                    f"only {self.submitted}/{n} submissions arrived"
                )
                self.arrived.wait(remaining)

    def pop_pending(self):
        with self.lock:
            out, self.pending = self.pending, []
        return out


def _session(backend, **cfg):
    defaults = dict(tile=8, overlap=0, tile_cache_bytes=0)
    defaults.update(cfg)
    return StreamSession(
        backend, MODEL, scale=1, config=StreamConfig(**defaults)
    )


def _frames(n, seed=0, h=16, w=16):
    rng = np.random.default_rng(seed)
    return [rng.random((h, w, 3)).astype(np.float32) for _ in range(n)]


class TestOrderingUnderAdversarialScheduler:
    def test_64_frames_4_streams_shuffled_completion(self):
        """The satellite scenario: 64 frames across 4 streams, tile
        completion order shuffled by a chaos resolver; every stream
        must still deliver strictly in sequence."""
        backend = FakeBackend()
        n_streams, n_frames = 4, 16
        streams = [_session(backend) for _ in range(n_streams)]
        clips = [_frames(n_frames, seed=s) for s in range(n_streams)]

        rng = np.random.default_rng(1234)
        stop = threading.Event()

        def chaos_resolver():
            # Resolve pending tiles in random order, a few at a time,
            # interleaving streams arbitrarily.
            while not stop.is_set():
                ready = backend.pop_pending()
                if not ready:
                    time.sleep(0.001)
                    continue
                rng.shuffle(ready)
                for fut in ready:
                    fut.resolve()

        resolver = threading.Thread(target=chaos_resolver, daemon=True)
        resolver.start()
        try:
            tickets = [
                [s.submit_frame(f) for f in clip]
                for s, clip in zip(streams, clips)
            ]
            # Wait on the *last* ticket of each stream first: ordered
            # delivery means its resolution implies all predecessors.
            for s_idx, stream_tickets in enumerate(tickets):
                last = stream_tickets[-1].result(timeout=30.0)
                assert last.ok
                done_flags = [t.done() for t in stream_tickets]
                assert all(done_flags), (
                    f"stream {s_idx}: frame {n_frames - 1} delivered "
                    f"before predecessors {done_flags}"
                )
            for s_idx, (stream_tickets, clip) in enumerate(
                zip(tickets, clips)
            ):
                for k, (ticket, frame) in enumerate(
                    zip(stream_tickets, clip)
                ):
                    res = ticket.result(timeout=1.0)
                    assert res.ok and res.seq == k
                    # Identity SR at scale 1: stitched == input.
                    np.testing.assert_array_equal(
                        res.image, np.asarray(frame, dtype=np.float64)
                    )
        finally:
            stop.set()
            resolver.join(timeout=5.0)
            for s in streams:
                s.close(drain=False)

    def test_no_cross_stream_head_of_line_blocking(self):
        """A stream wedged on its first tile must not delay siblings
        sharing the same backend."""
        backend = FakeBackend()
        stuck = _session(backend)
        flowing = _session(backend)
        stuck_frame = _frames(1, seed=7)[0]
        flow_frames = _frames(8, seed=8)
        try:
            stuck_ticket = stuck.submit_frame(stuck_frame)
            backend.wait_for_submissions(4)  # stuck's 4 tiles queued
            wedged = backend.pop_pending()  # ...and withheld

            flow_tickets = [flowing.submit_frame(f) for f in flow_frames]

            def serve_flowing():
                served = 0
                while served < 8 * 4:  # 8 frames x 4 tiles each
                    for fut in backend.pop_pending():
                        fut.resolve()
                        served += 1
                    time.sleep(0.001)

            server = threading.Thread(target=serve_flowing, daemon=True)
            server.start()
            for t in flow_tickets:
                assert t.result(timeout=10.0).ok
            server.join(timeout=5.0)
            # The wedged stream is still pending — and unblocking it
            # completes it.
            assert not stuck_ticket.done()
            for fut in wedged:
                fut.resolve()
            assert stuck_ticket.result(timeout=10.0).ok
        finally:
            stuck.close(drain=False)
            flowing.close(drain=False)


class TestDeadlines:
    def test_drop_late_drops_only_late_frames(self):
        """Timed drop-late gate: the frame whose tiles are withheld
        past its deadline resolves dropped; predecessors and
        successors deliver untouched."""
        backend = FakeBackend()
        session = _session(backend, policy="drop-late")
        frames = _frames(4, seed=3)
        try:
            # Serve every submission promptly except frame 1's tiles
            # (submissions 5..8), which are withheld forever.
            withheld = []
            stop = threading.Event()

            def resolver():
                seen = 0
                while not stop.is_set():
                    for fut in backend.pop_pending():
                        seen += 1
                        if 4 < seen <= 8:
                            withheld.append(fut)
                        else:
                            fut.resolve()
                    time.sleep(0.001)

            thread = threading.Thread(target=resolver, daemon=True)
            thread.start()
            t0 = session.submit_frame(frames[0])
            t1 = session.submit_frame(frames[1], deadline_s=0.15)
            t2 = session.submit_frame(frames[2])
            t3 = session.submit_frame(frames[3])
            r0 = t0.result(timeout=10.0)
            r1 = t1.result(timeout=10.0)
            r2 = t2.result(timeout=10.0)
            r3 = t3.result(timeout=10.0)
            stop.set()
            thread.join(timeout=5.0)
            assert r0.ok
            assert r1.dropped
            assert r1.late_s >= 0.0 and "deadline expired" in r1.detail
            assert r2.ok and r3.ok  # successors unaffected
            stats = session.stats()
            assert stats["frames"]["frames_dropped"] == 1
            assert stats["frames"]["frames_ok"] == 3
            with pytest.raises(Exception) as err:
                r1.unwrap()
            assert "dropped" in str(err.value)
        finally:
            session.close(drain=False)

    def test_expired_before_processing_drops_without_submitting(self):
        backend = FakeBackend()
        session = _session(backend, policy="drop-late")
        try:
            # Wedge the collector with a normal frame so the next one
            # expires while still queued.
            first = session.submit_frame(_frames(1, seed=1)[0])
            backend.wait_for_submissions(4)
            wedged = backend.pop_pending()
            late = session.submit_frame(
                _frames(1, seed=2)[0], deadline_s=0.01
            )
            time.sleep(0.05)
            for fut in wedged:
                fut.resolve()
            assert first.result(timeout=10.0).ok
            result = late.result(timeout=10.0)
            assert result.dropped
            assert "before inference" in result.detail
            # No tiles of the dropped frame ever reached the backend.
            assert backend.submitted == 4
        finally:
            session.close(drain=False)

    def test_best_effort_reports_lateness_but_completes(self):
        backend = FakeBackend()
        session = _session(backend, policy="best-effort")
        try:
            ticket = session.submit_frame(
                _frames(1, seed=4)[0], deadline_s=0.01
            )
            backend.wait_for_submissions(4)
            time.sleep(0.05)  # well past the deadline
            for fut in backend.pop_pending():
                fut.resolve()
            result = ticket.result(timeout=10.0)
            assert result.ok
            assert result.late_s > 0.0
        finally:
            session.close()


class TestTileReuse:
    def test_identical_frames_hit_the_tile_cache(self):
        backend = FakeBackend()
        session = _session(backend, tile_cache_bytes=1 << 20)
        frame = _frames(1, seed=5)[0]
        try:
            stop = threading.Event()

            def resolver():
                while not stop.is_set():
                    for fut in backend.pop_pending():
                        fut.resolve()
                    time.sleep(0.001)

            thread = threading.Thread(target=resolver, daemon=True)
            thread.start()
            results = [
                session.submit_frame(frame.copy()).result(timeout=10.0)
                for _ in range(3)
            ]
            stop.set()
            thread.join(timeout=5.0)
            assert all(r.ok for r in results)
            assert results[0].reuse_ratio == 0.0
            assert results[1].reuse_ratio == 1.0
            assert results[2].reuse_ratio == 1.0
            assert backend.submitted == 4  # only the first frame paid
            for r in results[1:]:
                np.testing.assert_array_equal(
                    r.image, results[0].image
                )
        finally:
            session.close(drain=False)

    def test_uniform_frame_dedupes_identical_tiles(self):
        backend = FakeBackend()
        session = _session(backend, tile_cache_bytes=1 << 20)
        frame = np.full((16, 16, 3), 0.25, dtype=np.float32)
        try:
            ticket = session.submit_frame(frame)
            backend.wait_for_submissions(1)
            time.sleep(0.05)  # no further submissions should arrive
            assert backend.submitted == 1  # 4 tiles, 1 distinct key
            for fut in backend.pop_pending():
                fut.resolve()
            result = ticket.result(timeout=10.0)
            assert result.ok
            np.testing.assert_array_equal(
                result.image, np.asarray(frame, dtype=np.float64)
            )
        finally:
            session.close(drain=False)


class TestSessionContract:
    def test_sequence_numbers_must_increase(self):
        backend = FakeBackend()
        session = _session(backend)
        frame = _frames(1)[0]
        try:
            session.submit_frame(frame, seq=5)
            with pytest.raises(StreamError, match="must increase"):
                session.submit_frame(frame, seq=5)
            with pytest.raises(StreamError, match="must increase"):
                session.submit_frame(frame, seq=3)
            ticket = session.submit_frame(frame, seq=9)
            assert ticket.seq == 9
        finally:
            session.close(drain=False)

    def test_non_hwc_frame_rejected(self):
        backend = FakeBackend()
        session = _session(backend)
        try:
            with pytest.raises(StreamError, match="H, W, C"):
                session.submit_frame(np.zeros((16, 16), dtype=np.float32))
        finally:
            session.close(drain=False)

    def test_submit_after_close_rejected(self):
        backend = FakeBackend()
        session = _session(backend)
        session.close()
        with pytest.raises(StreamError, match="closed"):
            session.submit_frame(_frames(1)[0])

    def test_close_without_drain_drops_queued_frames(self):
        backend = FakeBackend()
        session = _session(backend)
        frames = _frames(3, seed=6)
        tickets = [session.submit_frame(f) for f in frames]
        backend.wait_for_submissions(4)  # frame 0 in flight, withheld
        session.close(drain=False)
        for t in tickets:
            result = t.result(timeout=10.0)
            assert result.dropped
            assert "closed" in result.detail

    def test_busy_marker_resolves_frame_as_error(self):
        class Busy:
            reason = "queue full"

        backend = FakeBackend()
        session = _session(backend)
        frames = _frames(2, seed=9)
        try:
            t0 = session.submit_frame(frames[0])
            backend.wait_for_submissions(4)
            pending = backend.pop_pending()
            pending[0].resolve(Busy())
            for fut in pending[1:]:
                fut.resolve()
            r0 = t0.result(timeout=10.0)
            assert r0.status == "error"
            assert "queue full" in r0.detail
            with pytest.raises(StreamError, match="failed"):
                r0.unwrap()
            # The stream survives: the next frame is unaffected.
            t1 = session.submit_frame(frames[1])
            backend.wait_for_submissions(8)
            for fut in backend.pop_pending():
                fut.resolve()
            assert t1.result(timeout=10.0).ok
        finally:
            session.close(drain=False)

    def test_backpressure_blocks_submit_until_space(self):
        backend = FakeBackend()
        session = _session(backend, max_pending_frames=2)
        frames = _frames(4, seed=10)
        try:
            stop = threading.Event()

            def resolver():
                while not stop.is_set():
                    for fut in backend.pop_pending():
                        fut.resolve()
                    time.sleep(0.001)

            thread = threading.Thread(target=resolver, daemon=True)
            thread.start()
            tickets = [session.submit_frame(f) for f in frames]
            for t in tickets:
                assert t.result(timeout=10.0).ok
            stop.set()
            thread.join(timeout=5.0)
        finally:
            session.close(drain=False)

    def test_stats_and_metrics_families(self):
        backend = FakeBackend()
        session = _session(backend, tile_cache_bytes=1 << 20)
        frame = _frames(1, seed=11)[0]
        try:
            ticket = session.submit_frame(frame)
            backend.wait_for_submissions(4)
            for fut in backend.pop_pending():
                fut.resolve()
            assert ticket.result(timeout=10.0).ok
            stats = session.stats()
            assert stats["frames"]["frames_in"] == 1
            assert stats["frames"]["frames_ok"] == 1
            assert stats["tiles"]["computed_tiles"] == 4
            assert stats["latency"]["count"] == 1
            dump = session.metrics.dump()
            names = {f["name"] for f in dump["families"]}
            assert "repro_stream_frames_in_total" in names
            assert "repro_stream_frames_out_total" in names
            assert "repro_stream_tiles_total" in names
            assert "repro_stream_tile_reuse_ratio" in names
            assert "repro_stream_frame_latency_seconds" in names
            assert "repro_stream_frame_quantile_seconds" in names
        finally:
            session.close()
