"""Tests for the CNN-based SR architectures."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.binarize import SCALESBinaryConv2d, get_conv_factory
from repro.models import EDSR, RCAN, RDN, SRResNet, build_model
from repro.models.common import Upsampler, bicubic_residual

from ..helpers import rng


def _input(size=12, batch=1):
    return Tensor(rng(0).random((batch, 3, size, size)))


class TestSRResNet:
    @pytest.mark.parametrize("scale", [2, 3, 4])
    def test_output_scales(self, scale):
        model = SRResNet(scale=scale, n_feats=8, n_blocks=1, head_kernel=3)
        out = model(_input(8))
        assert out.shape == (1, 3, 8 * scale, 8 * scale)

    def test_light_tail_params_smaller(self):
        heavy = SRResNet(scale=4, n_feats=16, n_blocks=1, head_kernel=3)
        light = SRResNet(scale=4, n_feats=16, n_blocks=1, head_kernel=3,
                         light_tail=True)
        assert light.num_parameters() < heavy.num_parameters()

    def test_fp_uses_bn_binary_does_not(self):
        from repro.nn import BatchNorm2d
        fp = SRResNet(n_feats=8, n_blocks=1)
        has_bn = any(isinstance(m, BatchNorm2d) for m in fp.modules())
        assert has_bn
        binary = SRResNet(n_feats=8, n_blocks=1,
                          conv_factory=get_conv_factory("scales"))
        block_bns = [m for m in binary.body.modules() if isinstance(m, BatchNorm2d)]
        assert not block_bns

    def test_image_residual_zero_init_gives_bicubic(self):
        from repro.data.resize import upscale
        model = SRResNet(scale=2, n_feats=8, n_blocks=1, head_kernel=3,
                         image_residual=True)
        x = rng(1).random((1, 3, 8, 8))
        out = model(Tensor(x)).data[0].transpose(1, 2, 0)
        expected = upscale(x[0].transpose(1, 2, 0), 2)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_no_image_residual_option(self):
        model = SRResNet(scale=2, n_feats=8, n_blocks=1, head_kernel=3,
                         image_residual=False)
        assert model(_input(8)).shape == (1, 3, 16, 16)


class TestEDSR:
    def test_forward_shape(self):
        model = EDSR(scale=2, n_feats=8, n_blocks=1)
        assert model(_input(8)).shape == (1, 3, 16, 16)

    def test_res_scale_applied(self):
        model = EDSR(scale=2, n_feats=8, n_blocks=1, res_scale=0.1)
        assert model(_input(8)).shape == (1, 3, 16, 16)

    def test_no_bn_anywhere(self):
        from repro.nn import BatchNorm2d
        model = EDSR(n_feats=8, n_blocks=2)
        assert not any(isinstance(m, BatchNorm2d) for m in model.modules())


class TestRDN:
    def test_forward_shape(self):
        model = RDN(scale=2, n_feats=8, growth=4, n_blocks=2, n_layers=2)
        assert model(_input(8)).shape == (1, 3, 16, 16)

    def test_dense_channel_growth(self):
        from repro.models.rdn import RDB
        block = RDB(8, growth=4, n_layers=3,
                    conv_factory=get_conv_factory("fp"))
        out = block(Tensor(rng(2).normal(size=(1, 8, 6, 6))))
        assert out.shape == (1, 8, 6, 6)  # fusion restores width

    def test_binarized_rdn_runs(self):
        model = build_model("rdn", scale=2, scheme="scales", preset="tiny")
        assert model(_input(8)).shape == (1, 3, 16, 16)


class TestRCAN:
    def test_forward_shape(self):
        model = RCAN(scale=2, n_feats=8, n_groups=1, n_blocks=1)
        assert model(_input(8)).shape == (1, 3, 16, 16)

    def test_channel_attention_rescales(self):
        from repro.models.common import CALayer
        ca = CALayer(8, reduction=2)
        x = Tensor(rng(3).normal(size=(2, 8, 4, 4)))
        out = ca(x)
        ratio = out.data / x.data
        per_channel = ratio.reshape(2, 8, -1)
        # Each channel is scaled by one value in (0, 1).
        assert np.allclose(per_channel.std(axis=2), 0, atol=1e-7)
        assert np.all((per_channel > 0) & (per_channel < 1))


class TestCommonParts:
    @pytest.mark.parametrize("scale", [1, 2, 3, 4])
    def test_upsampler_scales(self, scale):
        up = Upsampler(scale, 8)
        out = up(Tensor(rng(4).normal(size=(1, 8, 5, 5))))
        assert out.shape == (1, 8, 5 * scale, 5 * scale)

    def test_upsampler_rejects_unsupported(self):
        with pytest.raises(ValueError):
            Upsampler(5, 8)

    def test_bicubic_residual_shape(self):
        x = Tensor(rng(5).random((2, 3, 6, 6)))
        out = bicubic_residual(x, 3)
        assert out.shape == (2, 3, 18, 18)
        assert not out.requires_grad

    def test_binarized_body_keeps_fp_head_tail(self):
        """The paper's protocol: head and tail are never binarized."""
        model = build_model("srresnet", scale=2, scheme="scales", preset="tiny")
        assert not any(isinstance(m, SCALESBinaryConv2d)
                       for m in model.head.modules())
        assert not any(isinstance(m, SCALESBinaryConv2d)
                       for m in model.tail.modules())
        assert any(isinstance(m, SCALESBinaryConv2d)
                   for m in model.body.modules())


class TestBuildModel:
    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            build_model("vgg", scheme="fp")

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            build_model("edsr", preset="giant")

    def test_overrides_applied(self):
        model = build_model("edsr", preset="tiny", n_feats=24)
        assert model.n_feats == 24

    @pytest.mark.parametrize("arch", ["srresnet", "edsr", "rdn", "rcan"])
    @pytest.mark.parametrize("scheme", ["fp", "scales", "e2fif"])
    def test_all_cnn_combinations_forward(self, arch, scheme):
        model = build_model(arch, scale=2, scheme=scheme, preset="tiny")
        assert model(_input(8)).shape == (1, 3, 16, 16)
