"""Packed deployment artifacts: one-file export of a compiled model.

The paper's phone deployment assumes a trained network is exported
*once* and served from its packed form — Table VI's 32x weight
compression is a property of the artifact on disk, not just of RAM.
This module is that export path:

``save_artifact(compiled, path)``
    serializes a ``compile_model`` output to a single ``.npz`` file
    holding, per packed layer, the bit-packed ``uint64`` weight words,
    scales, thresholds and geometry; the float *remainder* (head/tail
    convs, re-scaling branches, norms) as exact arrays; BatchNorm
    running statistics; the build recipe ``models.build_model`` stamped
    on the model; and the tiling configuration when the compiled model
    is wrapped in :class:`repro.deploy.engine.TiledInference`.  The
    float weights of the binary layers are **not** stored in any form —
    only their sign bits ship.

``load_artifact(path)``
    reconstructs a servable model: the recipe rebuilds the architecture
    skeleton with parameter-free placeholders at every packed site
    (:func:`repro.deploy.registry.build_skeleton` — the float binary
    weights are never materialized, not even as a random init), each
    placeholder is swapped for a :class:`PackedBinaryConv2d` /
    :class:`PackedBinaryLinear` deserialized straight from the packed
    words, and the float remainder is restored bit-exactly.  The loaded
    model's outputs are **bit-identical** to the live compiled model's —
    the conformance matrix in ``tests/deploy/test_conformance.py``
    enforces this for every deployable zoo entry.

Models compiled from hand-built graphs (no ``build_recipe``) can still
round-trip: pass ``skeleton=`` to :func:`load_artifact` with a module
tree whose binary sites sit at the same paths.

Artifact layout (``np.savez``)
------------------------------
``__meta__``
    JSON: format/version, parameter dtype, recipe, tiling config, and a
    table of packed-layer descriptors (path, kind, geometry, flags,
    re-scaling branch configs).
``layer{i}:packed`` / ``:weight_scale`` / ``:alpha`` / ``:beta`` / ``:bias``
    per packed layer, in meta-table order.
``state:{name}``
    every float parameter of the compiled tree, stored verbatim.
``buffer:{path}:running_mean`` / ``:running_var``
    BatchNorm running statistics (not Parameters, so not in ``state:``).
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..binarize.channel import ChannelRescale
from ..binarize.spatial import SpatialRescale2d, SpatialRescaleTokens
from ..grad import thread_default_dtype
from ..nn import Module
from ..nn.norm import BatchNorm2d
from .engine import PackedBinaryConv2d, PackedBinaryLinear, TiledInference
from .packing import unpack_signs

__all__ = ["ARTIFACT_FORMAT", "ARTIFACT_VERSION", "REVISION_STATE_FILE",
           "save_artifact", "load_artifact", "read_artifact_meta",
           "default_artifact_name", "ArtifactInfo", "artifact_key",
           "key_str", "scan_artifact_dir", "scan_artifact_revisions",
           "read_revision_state"]

ARTIFACT_FORMAT = "repro-packed-deploy"
ARTIFACT_VERSION = 1

#: Per-directory rollout state (see :mod:`repro.deploy.revision`):
#: ``{"active": {"arch/scheme/xN": revision, ...}}``.  When present it
#: decides which revision of each key :func:`scan_artifact_dir` serves.
REVISION_STATE_FILE = "revisions.json"

PathLike = Union[str, os.PathLike]


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------

def default_artifact_name(recipe: Dict) -> str:
    """Canonical file name for a recipe-carrying artifact."""
    return (f"{recipe['architecture']}_{recipe['scheme']}"
            f"_x{recipe['scale']}_{recipe['preset']}.rbd.npz")


def _unwrap(model: Module):
    """Split an optional :class:`TiledInference` wrapper from its model."""
    if isinstance(model, TiledInference):
        tiling = {"tile": model.tile, "overlap": model.overlap,
                  "batch_size": model.batch_size}
        return model.model, tiling
    return model, None


def _spatial_meta(module: Module) -> Dict:
    if isinstance(module, SpatialRescale2d):
        return {"type": "conv2d", "channels": int(module.channels),
                "kernel_size": int(module.proj.kernel_size),
                "stride": int(module.proj.stride)}
    if isinstance(module, SpatialRescaleTokens):
        return {"type": "tokens", "channels": int(module.channels)}
    raise TypeError(
        f"unsupported spatial re-scaling module {type(module).__name__}")


def _build_spatial(meta: Dict) -> Module:
    if meta["type"] == "conv2d":
        return SpatialRescale2d(meta["channels"], meta["kernel_size"],
                                stride=meta["stride"])
    if meta["type"] == "tokens":
        return SpatialRescaleTokens(meta["channels"])
    raise ValueError(f"unknown spatial branch type {meta['type']!r}")


def _layer_entry(i: int, path: str, layer: Module, arrays: Dict) -> Dict:
    """Describe one packed layer in the meta table; stash its arrays."""
    prefix = f"layer{i}"
    entry: Dict = {"path": path}
    if isinstance(layer, PackedBinaryConv2d):
        entry["kind"] = "conv"
        entry["shape"] = [int(s) for s in layer.weight_signs.shape]
        entry["stride"] = int(layer.stride)
        entry["padding"] = int(layer.padding)
        if layer._has_channel:
            entry["channel"] = {"channels": int(layer.channel.channels),
                                "kernel_size": int(layer.channel.kernel_size)}
        if layer._has_bn:
            bn = layer.bn
            entry["bn"] = {"num_features": int(bn.num_features),
                           "eps": float(bn.eps),
                           "momentum": float(bn.momentum)}
        bias = layer.conv_bias
    elif isinstance(layer, PackedBinaryLinear):
        entry["kind"] = "linear"
        entry["shape"] = [int(layer.out_features), int(layer.in_features)]
        bias = layer.lin_bias
    else:  # pragma: no cover - caller filters
        raise TypeError(f"not a packed layer: {type(layer).__name__}")
    entry["skip"] = bool(layer.skip)
    if layer._has_spatial:
        entry["spatial"] = _spatial_meta(layer.spatial)
    arrays[f"{prefix}:packed"] = np.ascontiguousarray(layer.packed_weight)
    arrays[f"{prefix}:weight_scale"] = np.asarray(layer.weight_scale)
    for name, value in (("alpha", layer.alpha), ("beta", layer.beta),
                        ("bias", bias)):
        if value is not None:
            arrays[f"{prefix}:{name}"] = np.asarray(value)
    return entry


def save_artifact(model: Module, path: Optional[PathLike] = None,
                  recipe: Optional[Dict] = None,
                  revision: Optional[int] = None) -> Path:
    """Serialize a compiled model to a single ``.npz`` deploy artifact.

    Parameters
    ----------
    model:
        A ``compile_model`` output — bare or wrapped in
        :class:`TiledInference` (the tiling configuration is recorded
        and restored on load).
    path:
        Destination file.  Defaults to :func:`default_artifact_name`
        under the current directory when the model carries a recipe.
    recipe:
        Build recipe override; defaults to the ``build_recipe`` dict
        ``models.build_model`` stamps on its outputs (surviving the
        ``compile_model`` deep copy).  Artifacts saved without a recipe
        need an explicit ``skeleton`` at load time.
    revision:
        Deploy revision stamped into the artifact meta (>= 1; default
        1).  Several revisions of one zoo key may coexist in a
        directory; the rollout machinery in :mod:`repro.deploy.revision`
        decides which one serves and :func:`scan_artifact_dir` honours
        that choice.

    Returns the path written.
    """
    if revision is None:
        revision = 1
    revision = int(revision)
    if revision < 1:
        raise ValueError(f"revision must be >= 1, got {revision}")
    inner, tiling = _unwrap(model)
    recipe = recipe if recipe is not None else getattr(inner, "build_recipe",
                                                       None)
    if path is None:
        if recipe is None:
            raise ValueError(
                "save_artifact needs an explicit path when the model has no "
                "build recipe (hand-built models are not in the zoo registry)")
        path = default_artifact_name(recipe)

    arrays: Dict[str, np.ndarray] = {}
    layers = []
    for name, module in inner.named_modules():
        if isinstance(module, (PackedBinaryConv2d, PackedBinaryLinear)):
            layers.append(_layer_entry(len(layers), name, module, arrays))
    if not layers:
        raise ValueError(
            "model contains no packed layers; run compile_model before "
            "save_artifact")

    params = list(inner.named_parameters())
    for pname, param in params:
        arrays[f"state:{pname}"] = param.data
    for mname, module in inner.named_modules():
        if isinstance(module, BatchNorm2d):
            arrays[f"buffer:{mname}:running_mean"] = module.running_mean
            arrays[f"buffer:{mname}:running_var"] = module.running_var

    dtype = str(params[0][1].data.dtype) if params else "float64"
    meta = {"format": ARTIFACT_FORMAT, "version": ARTIFACT_VERSION,
            "dtype": dtype, "recipe": recipe, "tiling": tiling,
            "revision": revision, "layers": layers}
    try:
        meta_json = json.dumps(meta)
    except TypeError as exc:
        raise ValueError(
            "build recipe is not JSON-serializable; pass a recipe of plain "
            f"python values to save_artifact ({exc})") from exc
    # Crash-safe export: serialize to a temp file in the destination
    # directory, fsync, then atomically rename into place.  An export
    # interrupted at any point leaves either the previous artifact or
    # none — never a truncated .npz that scan_artifact_dir would
    # silently skip (and a server zoo would silently lose).
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, __meta__=np.array(meta_json), **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------

def read_artifact_meta(path: PathLike) -> Dict:
    """The artifact's meta block (recipe, tiling, packed-layer table)."""
    with np.load(path) as data:
        if "__meta__" not in data.files:
            raise ValueError(f"{path} is not a packed deploy artifact")
        meta = json.loads(str(data["__meta__"][()]))
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"{path}: unknown artifact format "
                         f"{meta.get('format')!r}")
    if meta.get("version", 0) > ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {meta['version']} is newer than this "
            f"library supports ({ARTIFACT_VERSION})")
    # Artifacts written before deploy revisions existed are revision 1.
    meta["revision"] = int(meta.get("revision", 1))
    return meta


def artifact_key(recipe: Dict) -> Tuple[str, str, int]:
    """The zoo key ``(architecture, scheme, scale)`` of a build recipe."""
    try:
        return (str(recipe["architecture"]), str(recipe["scheme"]),
                int(recipe["scale"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"recipe does not identify a zoo cell: {recipe!r}") from exc


def key_str(key: Tuple[str, str, int]) -> str:
    """Canonical ``"architecture/scheme/xN"`` string of a zoo key —
    what the revision state file and metric labels use."""
    architecture, scheme, scale = key
    return f"{architecture}/{scheme}/x{int(scale)}"


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata-only description of one on-disk deploy artifact.

    Produced by :func:`scan_artifact_dir` without loading any weights:
    only the JSON ``__meta__`` member of the ``.npz`` is read, so
    probing a directory of large artifacts stays cheap.
    """

    path: Path
    #: ``(architecture, scheme, scale)`` — the zoo registry key.
    key: Tuple[str, str, int]
    recipe: Dict
    #: tiling config stored in the artifact (None for bare models)
    tiling: Optional[Dict]
    n_packed_layers: int
    size_bytes: int
    #: deploy revision stamped at export (pre-revision artifacts: 1)
    revision: int = 1


def read_revision_state(directory: PathLike) -> Dict[str, int]:
    """The ``{key_str: active_revision}`` map of a directory's
    ``revisions.json`` — empty when absent or unreadable (a corrupt
    state file must degrade to the default rollout policy, not take
    the zoo down)."""
    state_path = Path(directory) / REVISION_STATE_FILE
    try:
        with open(state_path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        active = raw.get("active", {})
        return {str(k): int(v) for k, v in active.items()}
    except (OSError, ValueError, TypeError, AttributeError):
        return {}


def scan_artifact_revisions(
        directory: PathLike,
        pattern: str = "*.npz") -> Tuple[
            Dict[Tuple[str, str, int], Dict[int, ArtifactInfo]],
            List[Tuple[Path, str]]]:
    """Probe a directory for deploy artifacts, keeping every revision.

    The revision-aware ground truth under :func:`scan_artifact_dir`:
    returns ``(catalog, skipped)`` where ``catalog`` maps each zoo key
    to its ``{revision: ArtifactInfo}`` revisions, and ``skipped``
    pairs each rejected path with a reason (not an artifact,
    unsupported version, recipe-less, or a duplicate of an earlier
    file with the same key *and* revision).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"artifact directory {directory} not found")
    catalog: Dict[Tuple[str, str, int], Dict[int, ArtifactInfo]] = {}
    skipped: List[Tuple[Path, str]] = []
    for path in sorted(directory.glob(pattern)):
        try:
            meta = read_artifact_meta(path)
        except (ValueError, OSError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            # Truncated zips raise BadZipFile, mid-write files EOFError:
            # one bad file must never take down the whole scan.
            skipped.append((path, f"not a deploy artifact ({exc})"))
            continue
        recipe = meta.get("recipe")
        if recipe is None:
            skipped.append(
                (path, "no build recipe: cannot be keyed into the zoo"))
            continue
        key = artifact_key(recipe)
        revision = meta["revision"]
        revisions = catalog.setdefault(key, {})
        if revision in revisions:
            skipped.append(
                (path, f"duplicate of {revisions[revision].path.name} "
                       f"for key {key} revision {revision}"))
            continue
        revisions[revision] = ArtifactInfo(
            path=path, key=key, recipe=recipe, tiling=meta.get("tiling"),
            n_packed_layers=len(meta.get("layers", [])),
            size_bytes=path.stat().st_size, revision=revision)
    return catalog, skipped


def scan_artifact_dir(
        directory: PathLike,
        pattern: str = "*.npz") -> Tuple[List[ArtifactInfo], List[Tuple[Path, str]]]:
    """Probe a directory for deploy artifacts — metadata only.

    Every file matching ``pattern`` is opened just far enough to read
    its ``__meta__`` block (:func:`read_artifact_meta`); no weight
    arrays are decompressed.  Returns ``(artifacts, skipped)`` with one
    artifact per zoo key — the *active* revision — and ``skipped``
    pairing each unserved path with a reason.

    Which revision is active: the directory's ``revisions.json`` entry
    for the key when present and on disk (the rollout machinery's
    promotion record), else the lowest revision — a candidate dropped
    next to an incumbent never serves by accident.  Other revisions of
    the same key are skipped as inactive.

    Artifacts come back sorted by key so the scan order — and anything
    keyed off it, like a server's model listing — is deterministic.
    """
    catalog, skipped = scan_artifact_revisions(directory, pattern)
    state = read_revision_state(directory)
    artifacts: Dict[Tuple[str, str, int], ArtifactInfo] = {}
    for key, revisions in catalog.items():
        active = state.get(key_str(key))
        if active not in revisions:
            active = min(revisions)
        artifacts[key] = revisions[active]
        for revision in sorted(revisions):
            if revision != active:
                skipped.append(
                    (revisions[revision].path,
                     f"inactive revision {revision} of key {key} "
                     f"(active: {active})"))
    return [artifacts[key] for key in sorted(artifacts)], skipped


def _deserialize_layer(entry: Dict, arrays: Dict[str, np.ndarray],
                       index: int) -> Module:
    """Rebuild one packed layer from its packed words — no float weights."""
    prefix = f"layer{index}"

    def take(name):
        return arrays.get(f"{prefix}:{name}")

    alpha, beta, bias = take("alpha"), take("beta"), take("bias")
    spatial = (_build_spatial(entry["spatial"])
               if entry.get("spatial") else None)
    if entry["kind"] == "conv":
        c_out, c_in, kh, kw = entry["shape"]
        signs = unpack_signs(arrays[f"{prefix}:packed"],
                             c_in * kh * kw).reshape(c_out, c_in, kh, kw)
        channel = (ChannelRescale(entry["channel"]["channels"],
                                  entry["channel"]["kernel_size"])
                   if entry.get("channel") else None)
        bn = None
        if entry.get("bn"):
            b = entry["bn"]
            bn = BatchNorm2d(b["num_features"], eps=b["eps"],
                             momentum=b["momentum"])
        layer = PackedBinaryConv2d(signs, bias, entry["stride"],
                                   entry["padding"], alpha, beta,
                                   spatial=spatial, channel=channel, bn=bn,
                                   skip=entry["skip"])
    elif entry["kind"] == "linear":
        out_features, in_features = entry["shape"]
        signs = unpack_signs(arrays[f"{prefix}:packed"], in_features)
        layer = PackedBinaryLinear(signs, bias, alpha, beta, spatial=spatial,
                                   skip=entry["skip"])
    else:
        raise ValueError(f"unknown packed layer kind {entry['kind']!r}")
    # The per-channel l1 scale of the *float* weights cannot be recovered
    # from sign bits; it ships in the artifact and overrides the
    # constructor's (sign-derived, all-ones) value.
    layer.weight_scale = arrays[f"{prefix}:weight_scale"]
    return layer


def _resolve_parent(root: Module, path: str):
    parts = path.split(".")
    module = root
    for part in parts[:-1]:
        child = module._modules.get(part)
        if child is None:
            raise KeyError(
                f"artifact layer path {path!r} does not exist in the "
                f"skeleton (no submodule {part!r})")
        module = child
    if parts[-1] not in module._modules:
        raise KeyError(
            f"artifact layer path {path!r} does not exist in the skeleton")
    return module, parts[-1]


def load_artifact(path: PathLike, skeleton: Optional[Module] = None,
                  tile: Union[int, None, str] = "auto",
                  tile_overlap: Optional[int] = None,
                  tile_batch_size: Optional[int] = None) -> Module:
    """Load a packed deploy artifact into a servable model.

    Parameters
    ----------
    path:
        Artifact written by :func:`save_artifact` (or
        ``compile_model(..., freeze=...)``).
    skeleton:
        Optional module tree to load into; required for artifacts saved
        without a build recipe.  The modules at the artifact's packed
        paths are replaced outright, so placeholders and live float
        binary layers both work.
    tile / tile_overlap / tile_batch_size:
        ``"auto"`` (default) restores the tiling configuration stored in
        the artifact; ``tile=None`` forces a bare model; an integer
        wraps the model in :class:`TiledInference` with that tile size.

    Returns the model in eval mode, wrapped in ``TiledInference`` when a
    tiling configuration applies.
    """
    meta = read_artifact_meta(path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files if k != "__meta__"}

    # Thread-scoped dtype: artifact loads happen on server/scheduler
    # threads concurrently with the rest of the process, so the shared
    # process-wide default must not be touched here.
    with thread_default_dtype(meta["dtype"]):
        if skeleton is None:
            if meta["recipe"] is None:
                raise ValueError(
                    f"{path} was saved without a build recipe; pass "
                    "skeleton= to load it")
            from .registry import build_skeleton
            model = build_skeleton(meta["recipe"])
        else:
            model = skeleton
        for i, entry in enumerate(meta["layers"]):
            parent, leaf = _resolve_parent(model, entry["path"])
            parent.register_module(leaf, _deserialize_layer(entry, arrays, i))

    from .registry import PlaceholderBinaryLayer
    leftovers = [n for n, m in model.named_modules()
                 if isinstance(m, PlaceholderBinaryLayer)]
    if leftovers:
        raise ValueError(
            f"artifact does not cover every binary site of the skeleton; "
            f"uncovered: {leftovers}")

    state = {k[len("state:"):]: v for k, v in arrays.items()
             if k.startswith("state:")}
    model.load_state_dict(state, strict=True)
    for key, value in arrays.items():
        if key.startswith("buffer:"):
            mod_path, attr = key[len("buffer:"):].rsplit(":", 1)
            module = model
            for part in filter(None, mod_path.split(".")):
                module = module._modules[part]
            setattr(module, attr, value.copy())
    model.eval()

    tiling = meta.get("tiling")
    if tile == "auto":
        if tiling is None:
            return model
        tile, overlap, batch = (tiling["tile"], tiling["overlap"],
                                tiling["batch_size"])
    elif tile is None:
        return model
    else:
        overlap = tiling["overlap"] if tiling else 8
        batch = tiling["batch_size"] if tiling else 16
    if tile_overlap is not None:
        overlap = tile_overlap
    if tile_batch_size is not None:
        batch = tile_batch_size
    return TiledInference(model, tile=tile, overlap=overlap, batch_size=batch)
