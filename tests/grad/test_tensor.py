"""Unit tests for the autograd Tensor core."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor

from ..helpers import check_gradients, rng


class TestTensorBasics:
    def test_creation_defaults(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad
        assert t.grad is None

    def test_requires_grad_flag(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3.0).detach()
        assert not b.requires_grad
        c = b * 2.0
        assert not c.requires_grad

    def test_item_and_len(self):
        t = Tensor([[1.0, 2.0]])
        assert len(t) == 1
        assert Tensor([5.0]).item() == 5.0

    def test_copy_is_independent(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_default_dtype_switch(self):
        with G.default_dtype("float32"):
            assert Tensor([1.0]).dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64

    def test_default_dtype_rejects_int(self):
        with pytest.raises(ValueError):
            G.set_default_dtype("int32")


class TestArithmetic:
    def test_add_backward(self):
        check_gradients(lambda ts: G.sum(ts[0] + ts[1]),
                        [rng(0).normal(size=(3, 4)), rng(1).normal(size=(3, 4))])

    def test_mul_backward(self):
        check_gradients(lambda ts: G.sum(ts[0] * ts[1]),
                        [rng(0).normal(size=(3, 4)), rng(1).normal(size=(3, 4))])

    def test_div_backward(self):
        check_gradients(lambda ts: G.sum(ts[0] / ts[1]),
                        [rng(0).normal(size=(3,)), rng(1).normal(size=(3,)) + 3.0])

    def test_sub_and_neg(self):
        check_gradients(lambda ts: G.sum(-ts[0] - ts[1] * 2.0),
                        [rng(0).normal(size=(4,)), rng(1).normal(size=(4,))])

    def test_pow_backward(self):
        check_gradients(lambda ts: G.sum(ts[0] ** 3),
                        [rng(0).normal(size=(5,))])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_rmul_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        out = 3.0 + a * 2.0
        G.sum(out).backward()
        assert a.grad[0] == pytest.approx(2.0)

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        out = G.sum(1.0 - a) + G.sum(4.0 / a)
        out.backward()
        assert a.grad[0] == pytest.approx(-1.0 - 4.0 / 4.0)

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng(1).normal(size=(4,)), requires_grad=True)
        G.sum(a + b).backward()
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_mul_keepdim_axis(self):
        a = Tensor(rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        s = Tensor(rng(1).normal(size=(2, 1, 4)), requires_grad=True)
        G.sum(a * s).backward()
        assert s.grad.shape == (2, 1, 4)

    def test_matmul_backward_2d(self):
        check_gradients(lambda ts: G.sum(ts[0] @ ts[1]),
                        [rng(0).normal(size=(3, 4)), rng(1).normal(size=(4, 5))])

    def test_matmul_backward_batched(self):
        check_gradients(lambda ts: G.sum((ts[0] @ ts[1]) ** 2),
                        [rng(0).normal(size=(2, 3, 4)), rng(1).normal(size=(2, 4, 5))])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([[1.0], [2.0]])

    def test_comparison_returns_bool_arrays(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert (a > 1.5).tolist() == [False, True, True]
        assert (a <= 2.0).tolist() == [True, True, False]
        assert (a < Tensor([2.0, 2.0, 2.0])).tolist() == [True, False, False]
        assert (a >= 3.0).tolist() == [False, False, True]


class TestBackwardMechanics:
    def test_diamond_reuse_accumulates(self):
        u = Tensor(rng(0).normal(size=(3,)), requires_grad=True)
        v = u * u + u * 3.0
        G.sum(v).backward()
        np.testing.assert_allclose(u.grad, 2 * u.data + 3.0)

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        for _ in range(2):
            (a * 2.0).backward()
        assert a.grad[0] == pytest.approx(4.0)

    def test_zero_grad_resets(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_with_seed_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with G.no_grad():
            b = a * 2.0
        assert not b.requires_grad
        assert b._backward is None

    def test_is_grad_enabled(self):
        assert G.is_grad_enabled()
        with G.no_grad():
            assert not G.is_grad_enabled()

    def test_custom_op_routes_gradients(self):
        x = Tensor([1.0, -2.0], requires_grad=True)

        def backward(grad, send):
            send(x, grad * 7.0)

        out = G.custom_op((x,), x.data * 2, backward)
        G.sum(out).backward()
        np.testing.assert_allclose(x.grad, [7.0, 7.0])

    def test_long_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        G.sum(x).backward()
        assert a.grad[0] == pytest.approx(1.0)


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = rng(0).normal(size=(3, 4))
        assert G.unbroadcast(g, (3, 4)) is g

    def test_leading_dims_summed(self):
        g = np.ones((5, 3, 4))
        out = G.unbroadcast(g, (3, 4))
        np.testing.assert_allclose(out, np.full((3, 4), 5.0))

    def test_size_one_dims_summed(self):
        g = np.ones((3, 4))
        out = G.unbroadcast(g, (3, 1))
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))


class TestThreadSafety:
    """Grad mode and dtype overrides must be safe across threads.

    The serving layer runs no_grad forwards on scheduler/worker threads
    concurrently with training on the main thread; with process-global
    save/restore, two interleaved no_grad blocks could leave gradients
    switched off for the whole process (training silently stops
    learning — the bug that motivated thread-local grad mode).
    """

    def test_no_grad_is_thread_local(self):
        import threading

        seen = {}

        def worker():
            with G.no_grad():
                seen["inside_worker"] = G.is_grad_enabled()
                barrier.wait()   # main thread checks while we hold no_grad
                barrier.wait()
            seen["after_worker"] = G.is_grad_enabled()

        barrier = threading.Barrier(2)
        thread = threading.Thread(target=worker)
        thread.start()
        barrier.wait()
        # The worker's no_grad must not leak into this thread.
        assert G.is_grad_enabled()
        barrier.wait()
        thread.join()
        assert seen["inside_worker"] is False
        assert seen["after_worker"] is True
        assert G.is_grad_enabled()

    def test_interleaved_no_grad_cannot_disable_grad_forever(self):
        import threading

        stop = threading.Event()

        def churn():
            while not stop.is_set():
                with G.no_grad():
                    pass

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                with G.no_grad():
                    assert not G.is_grad_enabled()
                assert G.is_grad_enabled()
        finally:
            stop.set()
            for t in threads:
                t.join()
        x = Tensor([1.0], requires_grad=True)
        assert (x * 2.0).requires_grad  # graph construction still works

    def test_thread_default_dtype_is_isolated(self):
        import threading

        results = {}

        def worker():
            with G.thread_default_dtype("float32"):
                results["worker"] = Tensor([1.0]).dtype
                barrier.wait()   # main thread creates a tensor meanwhile
                barrier.wait()
            results["worker_after"] = Tensor([1.0]).dtype

        barrier = threading.Barrier(2)
        thread = threading.Thread(target=worker)
        thread.start()
        barrier.wait()
        results["main"] = Tensor([1.0]).dtype
        barrier.wait()
        thread.join()
        assert results["worker"] == np.float32
        assert results["main"] == np.float64
        assert results["worker_after"] == np.float64

    def test_thread_default_dtype_nests(self):
        with G.thread_default_dtype("float32"):
            with G.thread_default_dtype("float64"):
                assert Tensor([1.0]).dtype == np.float64
            assert Tensor([1.0]).dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64
        with pytest.raises(ValueError):
            with G.thread_default_dtype("int32"):
                pass
