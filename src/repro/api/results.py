"""Shared typed request/result objects for every inference surface.

Before the facade, each entry layer had its own conventions: a direct
:class:`repro.infer.InferencePipeline` call returned a bare array or
raised, while a :class:`repro.serve.ModelServer` round-trip resolved to
an array, a :class:`repro.serve.ServerBusy` shed marker, or a
:class:`repro.serve.ServeError` — types that existed only server-side.
This module is the common vocabulary:

* :class:`InferRequest` — one image plus optional routing (model key)
  and per-request deadline;
* :class:`InferResult` — the one result type **every** path returns:
  ``Engine.infer`` and a served round-trip produce the same object for
  the same outcome, so calling code handles overload and failure
  identically whether it talks to a pipeline or a server;
* :class:`EngineError` — the facade's exception for *misuse* (invalid
  spec, wrong lifecycle state, undeployable cell).  Execution failures
  during inference are **not** raised: they come back as ``status ==
  "error"`` results, exactly like the server's typed failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

import numpy as np

__all__ = ["EngineError", "InferRequest", "InferResult"]

#: ``(architecture, scheme, scale)`` — the zoo model key.
ModelKey = Tuple[str, str, int]


class EngineError(RuntimeError):
    """A facade-level usage error (bad spec, lifecycle misuse,
    undeployable cell).  Carries a human-readable explanation; the
    capability registry's detail string is included when the error is a
    coverage refusal."""


@dataclass(frozen=True, eq=False)
class InferRequest:
    """One inference request, addressable to any execution surface.

    ``model`` may be ``None`` (the engine / session default applies), a
    zoo key tuple, or a route string like ``"srresnet/scales/x2"``.
    ``deadline_s`` is the per-request micro-batching latency budget; it
    only has an effect on the served path (a direct ``Engine.infer``
    executes immediately).
    """

    image: np.ndarray
    model: Optional[Union[ModelKey, str]] = None
    deadline_s: Optional[float] = None


@dataclass(frozen=True, eq=False)
class InferResult:
    """The one typed inference outcome, shared by every surface.

    (``eq`` is disabled: results hold arrays, so compare ``status`` /
    ``np.array_equal(a.image, b.image)`` explicitly.)

    ``status`` is one of:

    ``"ok"``
        ``image`` holds the super-resolved output.
    ``"busy"``
        Admission control shed the request (serving only);
        ``detail`` carries the reason (e.g. ``"queue full"``).
    ``"error"``
        Execution failed; ``detail`` is the exception summary.  The
        direct path reports failures this way too, mirroring the
        server's :class:`repro.serve.ServeError` semantics.
    """

    status: str
    model: Optional[ModelKey] = None
    image: Optional[np.ndarray] = field(default=None, repr=False)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in ("ok", "busy", "error"):
            raise ValueError(
                f"status must be 'ok', 'busy' or 'error', got {self.status!r}")
        if self.status == "ok" and self.image is None:
            raise ValueError("an 'ok' result needs an image")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def unwrap(self) -> np.ndarray:
        """The output image; raises :class:`EngineError` otherwise."""
        if self.status != "ok":
            raise EngineError(
                f"inference on {self.model} resolved {self.status}: "
                f"{self.detail or '(no detail)'}")
        return self.image

    @classmethod
    def success(cls, image: np.ndarray,
                model: Optional[ModelKey] = None) -> "InferResult":
        return cls(status="ok", model=model, image=np.asarray(image))

    @classmethod
    def busy(cls, model: Optional[ModelKey], reason: str) -> "InferResult":
        return cls(status="busy", model=model, detail=reason)

    @classmethod
    def failure(cls, model: Optional[ModelKey], message: str) -> "InferResult":
        return cls(status="error", model=model, detail=message)

    @classmethod
    def from_serve_value(cls, value: Any,
                         model: Optional[ModelKey] = None) -> "InferResult":
        """Map a :class:`repro.serve.ServeFuture` value onto the shared
        result type (array, ``ServerBusy`` or ``ServeError``)."""
        from ..serve.server import ServeError, ServerBusy
        if isinstance(value, ServerBusy):
            return cls.busy(value.model, value.reason)
        if isinstance(value, ServeError):
            return cls.failure(value.model, value.message)
        return cls.success(value, model)
