"""Declarative model specification — what to build, not how to run it.

:class:`ModelSpec` is the typed, validated description of one zoo cell:
architecture, binarization scheme, upsampling scale, size preset, plus
free-form constructor overrides.  It is the same information
``models.build_model`` stamps on its outputs as the ``build_recipe``
dict — a spec and a recipe convert losslessly into each other — but
validated eagerly, so a typo fails at spec construction with the list
of valid names instead of deep inside a model constructor.

Every :class:`repro.api.Engine` starts from a spec (``from_spec``) or
recovers one from an artifact's recipe (``from_artifact``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..binarize import conv_scheme_names
from ..models import (ARCHITECTURES, CNN_ARCHITECTURES, preset_names,
                      transformer_scheme_names)

__all__ = ["ModelSpec"]


def _valid_schemes(architecture: str) -> Tuple[str, ...]:
    if architecture in CNN_ARCHITECTURES:
        return tuple(conv_scheme_names())
    return tuple(transformer_scheme_names())


@dataclass(frozen=True)
class ModelSpec:
    """One validated (architecture, scheme, scale, preset) zoo cell.

    Parameters
    ----------
    architecture:
        One of :data:`repro.models.ARCHITECTURES` (case-insensitive).
    scheme:
        Binarization scheme; validated against the architecture kind
        (conv schemes for CNNs, transformer schemes for SwinIR/HAT).
        Defaults to ``"scales"`` — the paper's method.
    scale:
        Upsampling factor (the paper evaluates 2, 3 and 4).
    preset:
        Size preset accepted by ``build_model`` for this architecture.
    overrides:
        Extra keyword overrides merged onto the preset at build time
        (e.g. ``{"light_tail": True}``).
    """

    architecture: str
    scheme: str = "scales"
    scale: int = 2
    preset: str = "tiny"
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "architecture", str(self.architecture).lower())
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; choose from "
                f"{', '.join(ARCHITECTURES)}")
        schemes = _valid_schemes(self.architecture)
        if self.scheme not in schemes:
            raise ValueError(
                f"unknown scheme {self.scheme!r} for {self.architecture}; "
                f"choose from {', '.join(schemes)}")
        if int(self.scale) < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        object.__setattr__(self, "scale", int(self.scale))
        presets = preset_names(self.architecture)
        if self.preset not in presets:
            raise ValueError(
                f"unknown preset {self.preset!r} for {self.architecture}; "
                f"choose from {', '.join(presets)}")
        object.__setattr__(self, "overrides", dict(self.overrides))

    # Overrides live in a dict, so the generated hash would fail; hash
    # the canonical item tuple instead (override values are plain
    # scalars in practice).
    def __hash__(self) -> int:
        return hash((self.architecture, self.scheme, self.scale, self.preset,
                     tuple(sorted(self.overrides.items()))))

    @property
    def key(self) -> Tuple[str, str, int]:
        """The zoo key ``(architecture, scheme, scale)`` — how the
        deploy registry, artifact scanner and model server name this
        cell."""
        return (self.architecture, self.scheme, self.scale)

    @property
    def route(self) -> str:
        """The server route string, e.g. ``"srresnet/scales/x2"``."""
        return f"{self.architecture}/{self.scheme}/x{self.scale}"

    def to_recipe(self) -> Dict[str, Any]:
        """The ``build_model`` recipe dict this spec is equivalent to."""
        return {"architecture": self.architecture, "scale": self.scale,
                "scheme": self.scheme, "preset": self.preset,
                "overrides": dict(self.overrides)}

    @classmethod
    def from_recipe(cls, recipe: Mapping[str, Any]) -> "ModelSpec":
        """Rebuild a spec from a ``build_recipe`` dict (e.g. out of a
        deploy artifact's metadata)."""
        return cls(architecture=recipe["architecture"],
                   scheme=recipe.get("scheme", "fp"),
                   scale=int(recipe.get("scale", 2)),
                   preset=str(recipe.get("preset", "tiny")),
                   overrides=dict(recipe.get("overrides", {})))

    @classmethod
    def coerce(cls, spec: "ModelSpec | Mapping | str",
               **kwargs: Any) -> "ModelSpec":
        """Normalize a spec, a recipe dict, or an architecture name."""
        if isinstance(spec, cls):
            if kwargs:
                raise ValueError(
                    "cannot combine an existing ModelSpec with keyword "
                    f"overrides {sorted(kwargs)}")
            return spec
        if isinstance(spec, Mapping):
            if kwargs:
                raise ValueError(
                    "cannot combine a recipe dict with keyword overrides "
                    f"{sorted(kwargs)}; edit the recipe instead")
            return cls.from_recipe(spec)
        return cls(architecture=spec, **kwargs)

    def artifact_name(self) -> str:
        """Canonical deploy-artifact file name for this cell."""
        from ..deploy.serialize import default_artifact_name
        return default_artifact_name(self.to_recipe())

    def build(self, conv_factory=None, linear_factory=None,
              seed: Optional[int] = None):
        """Instantiate the float model (``models.build_model``)."""
        from ..models import build_model
        if seed is not None:
            from ..nn import init
            init.seed(seed)
        return build_model(self.architecture, scale=self.scale,
                           scheme=self.scheme, preset=self.preset,
                           conv_factory=conv_factory,
                           linear_factory=linear_factory,
                           **dict(self.overrides))
