"""EngineConfig: the documented precedence — explicit arg > env > default."""

import pytest

from repro.api import EngineConfig

ENV_CASES = [
    # (field, variable, env value, parsed env value, explicit, default)
    ("packed_impl", "REPRO_PACKED_IMPL", "reference", "reference", "fast",
     "fast"),
    ("conv_impl", "REPRO_CONV_IMPL", "reference", "reference", "fast",
     "fast"),
    ("n_threads", "REPRO_NUM_THREADS", "3", 3, 2, None),
    ("bench_dir", "REPRO_BENCH_DIR", "/tmp/bench", "/tmp/bench", "/x",
     None),
    ("perf_smoke", "REPRO_PERF_SMOKE", "1", True, False, False),
    ("update_golden", "REPRO_UPDATE_GOLDEN", "1", True, False, False),
]


@pytest.mark.parametrize(
    "field,variable,env,parsed,explicit,default",
    ENV_CASES, ids=[c[0] for c in ENV_CASES])
class TestPrecedence:
    def test_default_when_unset(self, monkeypatch, field, variable, env,
                                parsed, explicit, default):
        monkeypatch.delenv(variable, raising=False)
        config = EngineConfig()
        assert getattr(config, field) == default
        assert config.source(field) == "default"

    def test_env_beats_default(self, monkeypatch, field, variable, env,
                               parsed, explicit, default):
        monkeypatch.setenv(variable, env)
        config = EngineConfig()
        assert getattr(config, field) == parsed
        assert config.source(field) == "env"

    def test_explicit_arg_beats_env(self, monkeypatch, field, variable, env,
                                    parsed, explicit, default):
        monkeypatch.setenv(variable, env)
        config = EngineConfig(**{field: explicit})
        assert getattr(config, field) == explicit
        assert config.source(field) == "arg"


class TestFlagGrammars:
    def test_perf_smoke_any_nonempty_value_enables(self, monkeypatch):
        # mirrors bool(os.environ.get(...)) in the perf harness:
        # REPRO_PERF_SMOKE=0 *is* smoke mode
        monkeypatch.setenv("REPRO_PERF_SMOKE", "0")
        assert EngineConfig().perf_smoke is True

    def test_update_golden_requires_literal_1(self, monkeypatch):
        # mirrors os.environ.get(...) == "1" in the conformance suite
        monkeypatch.setenv("REPRO_UPDATE_GOLDEN", "0")
        assert EngineConfig().update_golden is False
        monkeypatch.setenv("REPRO_UPDATE_GOLDEN", "1")
        assert EngineConfig().update_golden is True


class TestValidation:
    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED_IMPL", "turbo")
        with pytest.raises(ValueError, match="REPRO_PACKED_IMPL"):
            EngineConfig()

    def test_invalid_explicit_value(self):
        with pytest.raises(ValueError, match="packed_impl"):
            EngineConfig(packed_impl="turbo")

    def test_invalid_thread_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            EngineConfig()

    def test_source_unknown_field(self):
        with pytest.raises(KeyError):
            EngineConfig().source("batch_size")

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            EngineConfig(batch_size=0)


class TestScopeAndMapping:
    def test_scope_applies_explicit_backend(self):
        from repro.deploy import get_packed_backend
        from repro.grad.conv import get_conv_backend
        config = EngineConfig(packed_impl="reference", conv_impl="reference")
        with config.scope():
            assert get_packed_backend() == "reference"
            assert get_conv_backend() == "reference"
        assert get_packed_backend() == "fast"
        assert get_conv_backend() == "fast"

    def test_scope_default_defers_to_global_switch(self, monkeypatch):
        # an EngineConfig() whose backend resolved from the *default*
        # must not stomp a set_packed_backend made elsewhere
        monkeypatch.delenv("REPRO_PACKED_IMPL", raising=False)
        from repro.deploy import (get_packed_backend, packed_backend)
        config = EngineConfig()
        with packed_backend("reference"):
            with config.scope():
                assert get_packed_backend() == "reference"

    def test_scope_env_value_is_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED_IMPL", "reference")
        from repro.deploy import get_packed_backend
        with EngineConfig().scope():
            assert get_packed_backend() == "reference"
        assert get_packed_backend() == "fast"

    def test_scope_dtype(self):
        from repro.grad import get_default_dtype
        ambient = get_default_dtype()
        with EngineConfig(dtype="float32").scope():
            import numpy as np
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == ambient

    def test_to_server_config(self):
        config = EngineConfig(batch_size=4, latency_budget_s=0.5,
                              max_models=2, max_queue_depth=9,
                              cache_bytes=0, clip=False, background=False)
        server = config.to_server_config()
        assert server.max_batch == 4
        assert server.latency_budget_s == 0.5
        assert server.max_models == 2
        assert server.max_queue_depth == 9
        assert server.cache_bytes == 0
        assert server.clip is False
        assert server.background is False

    def test_describe_mentions_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        text = EngineConfig(packed_impl="fast").describe()
        assert "(arg)" in text and "(env)" in text and "(default)" in text
