"""`EngineConfig`: the consolidated home of every ``REPRO_*`` switch.

Before this module, execution knobs were scattered: the packed-layer
backend lived in ``REPRO_PACKED_IMPL`` / ``set_packed_backend``, the
conv backend in ``REPRO_CONV_IMPL`` / ``set_conv_backend``, the thread
count in ``REPRO_NUM_THREADS`` / ``set_num_threads``, tiling and batch
size in per-callsite kwargs, and the serving knobs in
:class:`repro.serve.ServerConfig`.  :class:`EngineConfig` is the one
typed object that holds all of them, with a single documented
precedence rule for the environment-backed fields:

    **explicit argument > ``REPRO_*`` environment variable > default**

The environment is read once, at construction; :meth:`source` reports
where each env-backed value came from (``"arg"`` / ``"env"`` /
``"default"``), so a surprising setting can be traced to its origin.

============== ======================= ==========================
field           environment variable    default
============== ======================= ==========================
packed_impl     ``REPRO_PACKED_IMPL``   ``"fast"``
conv_impl       ``REPRO_CONV_IMPL``     ``"fast"``
n_threads       ``REPRO_NUM_THREADS``   ``None`` (= cpu count)
bench_dir       ``REPRO_BENCH_DIR``     ``None`` (= repo root)
perf_smoke      ``REPRO_PERF_SMOKE``    ``False``
update_golden   ``REPRO_UPDATE_GOLDEN`` ``False``
============== ======================= ==========================

(``perf_smoke`` and ``update_golden`` are test-harness switches; they
are surfaced here so *every* ``REPRO_*`` variable has one documented
home, but the engine itself never acts on them.  Their parsers mirror
their consumers' exact grammars: any non-empty ``REPRO_PERF_SMOKE``
enables smoke mode — including ``0`` — while ``REPRO_UPDATE_GOLDEN``
enables only on the literal ``1``.)

The remaining fields are plain typed defaults — execution strategy
(``batch_size``, ``tile``, ``clip``, ``dtype``, ``seed``) and the
serving knobs mirrored into :class:`repro.serve.ServerConfig` by
:meth:`to_server_config`.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

__all__ = ["EngineConfig"]

_BACKEND_CHOICES = ("fast", "reference")


def _choice(valid: Tuple[str, ...]) -> Callable[[Any], str]:
    def parse(value: Any) -> str:
        value = str(value)
        if value not in valid:
            raise ValueError(f"expected one of {valid}, got {value!r}")
        return value
    return parse


def _positive_int(value: Any) -> int:
    value = int(value)
    if value < 1:
        raise ValueError(f"expected a positive integer, got {value}")
    return value


# The flag parsers mirror their consumers' exact grammars, so
# describe()/source() never contradict what the process actually does:
# the perf harness enables smoke mode on any non-empty value
# (``bool(os.environ.get("REPRO_PERF_SMOKE"))`` — REPRO_PERF_SMOKE=0
# *is* smoke mode), while the conformance suite regenerates goldens
# only on the literal "1" (``os.environ.get(...) == "1"``).


def _flag_nonempty(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return str(value) != ""


def _flag_exact1(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return str(value) == "1"


#: env-backed fields: name -> (variable, default, parser)
_ENV_FIELDS: Dict[str, Tuple[str, Any, Callable[[Any], Any]]] = {
    "packed_impl": ("REPRO_PACKED_IMPL", "fast", _choice(_BACKEND_CHOICES)),
    "conv_impl": ("REPRO_CONV_IMPL", "fast", _choice(_BACKEND_CHOICES)),
    "n_threads": ("REPRO_NUM_THREADS", None, _positive_int),
    "bench_dir": ("REPRO_BENCH_DIR", None, str),
    "perf_smoke": ("REPRO_PERF_SMOKE", False, _flag_nonempty),
    "update_golden": ("REPRO_UPDATE_GOLDEN", False, _flag_exact1),
}


@dataclass
class EngineConfig:
    """Every execution knob of :class:`repro.api.Engine`, in one place.

    Environment-backed fields (see module docstring) accept ``None`` to
    mean "unset": the ``REPRO_*`` variable is consulted, then the
    default.  An explicit value always wins and is validated the same
    way the environment value would be.

    Parameters
    ----------
    packed_impl / conv_impl:
        Packed-layer and convolution backend: ``"fast"`` or
        ``"reference"``.  Applied as a scoped override around engine
        operations (the process-global switch is left alone when the
        resolved value came from the default).
    n_threads:
        Inference worker threads (``None`` = auto, see
        :func:`repro.infer.get_num_threads`).
    bench_dir / perf_smoke / update_golden:
        Test-harness switches, surfaced for completeness.
    dtype:
        When set (e.g. ``"float32"``), every engine operation runs
        under this default dtype, applied as a set-and-restore override
        of the process-wide default for the duration of the operation
        (scoped in time, not per thread — engines with conflicting
        dtypes should not run concurrently).
    seed:
        When set, ``Engine.from_spec`` seeds the RNG before building,
        so weight initialization is reproducible.
    batch_size:
        Images per micro-batch on the inference path; also the serving
        ``max_batch``.
    tile / tile_overlap / tile_batch_size:
        When ``tile`` is set, engine inference runs the bounded-memory
        tiled path with this LR tile size.
    clip:
        Clip SR outputs to [0, 1] (the repo-wide convention).
    latency_budget_s / max_models / max_queue_depth /
    max_inflight_per_model / cache_bytes / background / poll_interval_s:
        Serving knobs, passed to :class:`repro.serve.ServerConfig` by
        :meth:`to_server_config`.
    """

    packed_impl: Optional[str] = None
    conv_impl: Optional[str] = None
    n_threads: Optional[int] = None
    bench_dir: Optional[str] = None
    perf_smoke: Optional[bool] = None
    update_golden: Optional[bool] = None

    dtype: Optional[str] = None
    seed: Optional[int] = None
    batch_size: int = 8
    tile: Optional[int] = None
    tile_overlap: int = 8
    tile_batch_size: int = 16
    clip: bool = True

    latency_budget_s: float = 0.02
    max_models: int = 4
    max_queue_depth: int = 256
    max_inflight_per_model: int = 1
    cache_bytes: int = 64 << 20
    background: bool = True
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        self._sources: Dict[str, str] = {}
        for name, (variable, default, parse) in _ENV_FIELDS.items():
            value = getattr(self, name)
            if value is not None:
                source = "arg"
            else:
                env = os.environ.get(variable)
                if env is not None and env != "":
                    value, source = env, "env"
                else:
                    value, source = default, "default"
            if value is not None:
                try:
                    value = parse(value)
                except (TypeError, ValueError) as exc:
                    origin = (f"environment variable {variable}"
                              if source == "env" else f"field {name!r}")
                    raise ValueError(f"invalid {origin}: {exc}") from exc
            setattr(self, name, value)
            self._sources[name] = source
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.tile is not None and self.tile < 1:
            raise ValueError(f"tile must be >= 1, got {self.tile}")

    def source(self, name: str) -> str:
        """Where an env-backed field's value came from:
        ``"arg"`` | ``"env"`` | ``"default"``."""
        if name not in _ENV_FIELDS:
            raise KeyError(
                f"{name!r} is not an environment-backed field; one of "
                f"{sorted(_ENV_FIELDS)}")
        return self._sources[name]

    @contextlib.contextmanager
    def scope(self) -> Iterator[None]:
        """Apply this config's global overrides for the duration.

        Backend switches are only overridden when the value was set
        explicitly or through the environment — a plain default defers
        to whatever the process-global switch currently says, so an
        ``EngineConfig()`` never stomps a ``set_packed_backend`` call
        made elsewhere.  ``dtype`` is applied whenever set.
        """
        from ..deploy.engine import packed_backend
        from ..grad import default_dtype
        from ..grad.conv import conv_backend
        with contextlib.ExitStack() as stack:
            if self._sources["packed_impl"] != "default":
                stack.enter_context(packed_backend(self.packed_impl))
            if self._sources["conv_impl"] != "default":
                stack.enter_context(conv_backend(self.conv_impl))
            if self.dtype is not None:
                stack.enter_context(default_dtype(self.dtype))
            yield

    def to_server_config(self):
        """The :class:`repro.serve.ServerConfig` these knobs map onto.

        ``dtype`` rides along: the server applies it as a thread-scoped
        override around model loads and flushes, so ``Engine.serve`` is
        bit-identical to ``Engine.infer`` under a non-default dtype
        without touching the process-wide default.
        """
        from ..serve.server import ServerConfig
        return ServerConfig(
            latency_budget_s=self.latency_budget_s,
            max_batch=self.batch_size,
            max_models=self.max_models,
            max_queue_depth=self.max_queue_depth,
            max_inflight_per_model=self.max_inflight_per_model,
            cache_bytes=self.cache_bytes,
            clip=self.clip,
            n_threads=self.n_threads,
            dtype=self.dtype,
            background=self.background,
            poll_interval_s=self.poll_interval_s)

    def describe(self) -> str:
        """One line per field: value, and provenance where env-backed."""
        lines = []
        for f in fields(self):
            value = getattr(self, f.name)
            provenance = (f"  ({self._sources[f.name]})"
                          if f.name in _ENV_FIELDS else "")
            lines.append(f"{f.name:<22} {value!r}{provenance}")
        return "\n".join(lines)
