"""Render the perf trajectory as a markdown trend table.

The nightly CI job measures fresh ``BENCH_*.json`` trajectories, then
runs this script to publish *where the numbers are going*: for every
gated benchmark in ``benchmarks/perf_floors.json``, a row with

* the **fresh** speedup ratio measured in this run,
* the **previous** recorded ratio (the committed trajectory in the
  repo — the last ratio a human signed off on),
* the committed **floor**, and
* a trend marker (the fresh-vs-previous delta).

The output is GitHub-flavoured markdown; CI appends it to
``$GITHUB_STEP_SUMMARY`` so the trajectory is readable on the run page
without downloading artifacts.  The script never fails the build —
gating is :mod:`check_bench_regression`'s job; this one only reports.

Usage::

    python benchmarks/render_bench_trend.py --bench-dir "$RUNNER_TEMP/bench"
        [--baseline-dir REPO_ROOT] [--floors FILE] [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from check_bench_regression import newest_entry, validate_bench_file


def _latest_ratio(bench_dir: Path, family: str, benchmark: str):
    """Newest recorded speedup for one benchmark, or ``None``."""
    path = bench_dir / f"BENCH_{family}.json"
    if not path.exists() or validate_bench_file(path):
        return None
    entries = json.loads(path.read_text()).get("entries", [])
    entry = newest_entry(entries, benchmark)
    if entry is None:
        return None
    ratio = entry.get("speedup")
    return float(ratio) if isinstance(ratio, (int, float)) else None


def _cell(ratio) -> str:
    return f"{ratio:.2f}x" if ratio is not None else "—"


def _trend(fresh, previous) -> str:
    if fresh is None or previous is None:
        return "—"
    delta = fresh - previous
    if abs(delta) < 0.05:
        return "→ steady"
    arrow = "↑" if delta > 0 else "↓"
    return f"{arrow} {delta:+.2f}x"


def render(bench_dir: Path, baseline_dir: Path, floors_path: Path) -> str:
    floors = json.loads(floors_path.read_text())
    floors.pop("_comment", None)
    lines = [
        "## Perf trajectory",
        "",
        f"Fresh ratios from `{bench_dir}` vs the committed trajectory "
        "and floors.",
        "",
        "| benchmark | fresh | previous | floor | trend |",
        "|---|---:|---:|---:|---|",
    ]
    for family in sorted(floors):
        for benchmark in sorted(floors[family]):
            floor = floors[family][benchmark]
            fresh = _latest_ratio(bench_dir, family, benchmark)
            previous = _latest_ratio(baseline_dir, family, benchmark)
            status = ""
            if fresh is not None and fresh < floor:
                status = " ⚠️ below floor"
            lines.append(
                f"| {family}/{benchmark} | {_cell(fresh)} "
                f"| {_cell(previous)} | {floor:.2f}x "
                f"| {_trend(fresh, previous)}{status} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    repo_root = Path(__file__).resolve().parent.parent
    parser.add_argument("--bench-dir", type=Path, required=True,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--baseline-dir", type=Path, default=repo_root,
                        help="directory holding the previous trajectories "
                             "(default: the committed repo root)")
    parser.add_argument("--floors", type=Path,
                        default=Path(__file__).resolve().parent
                        / "perf_floors.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="append the table here instead of stdout "
                             "(CI passes $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)
    table = render(args.bench_dir, args.baseline_dir, args.floors)
    if args.output is not None:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")
    else:
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
