"""Per-model SLO tracking: latency budgets vs rolling p99.

The ISSUE's observability tentpole asks for *declared* latency budgets
per model key — an ``(architecture, scheme, scale)`` string like
``"srresnet/scales/x2"`` — and burn counters that say how the live
tail latency compares to them.  :class:`SloTracker` is that bookkeeping:

* ``budget(key)`` — the declared budget for a key, falling back to the
  tracker-wide default when no per-key entry exists.
* ``observe(key, seconds)`` — file one end-to-end request latency.
  Each observation lands in a bounded rolling window (exact, not
  bucketed — windows are small), bumps a ``breaches`` counter when the
  single request exceeded the budget, recomputes the window p99, and
  bumps a ``burn`` counter when that p99 is over budget.  "Burn" is
  deliberately a monotone counter rather than a boolean: scrapers rate()
  it, and a model that repeatedly dips in and out of violation shows a
  sloped line instead of a flapping gauge.
* ``snapshot()`` — the per-key dict that ``ModelServer.stats()`` embeds
  and the ``/metrics`` func-families read at scrape time.

Thread-safe; one lock, snapshot reads.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["SloTracker"]


def _window_percentile(window: "Deque[float]", p: float) -> float:
    """Exact p-th percentile of a small rolling window."""
    ordered = sorted(window)
    if not ordered:
        return 0.0
    rank = max(1, int(round(len(ordered) * p / 100.0)))
    return ordered[rank - 1]


class _KeyState:
    __slots__ = ("window", "breaches", "burn", "observed")

    def __init__(self, window: int) -> None:
        self.window: Deque[float] = deque(maxlen=window)
        self.breaches = 0
        self.burn = 0
        self.observed = 0


class SloTracker:
    """Latency budgets and rolling p99 burn counters per model key.

    Parameters
    ----------
    default_budget_s:
        Budget applied to keys without an explicit entry.
    budgets:
        Optional ``{model_key: budget_seconds}`` overrides.
    window:
        Rolling window length (observations) for the p99 estimate.
    """

    def __init__(
        self,
        default_budget_s: float = 0.5,
        budgets: Optional[Dict[str, float]] = None,
        window: int = 128,
    ) -> None:
        if default_budget_s <= 0:
            raise ValueError(
                f"default_budget_s must be positive, got {default_budget_s}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._default = float(default_budget_s)
        self._budgets = {
            str(key): float(value) for key, value in (budgets or {}).items()
        }
        for key, value in self._budgets.items():
            if value <= 0:
                raise ValueError(f"budget for {key!r} must be positive")
        self._window = int(window)
        self._lock = threading.Lock()
        self._keys: Dict[str, _KeyState] = {}

    def budget(self, key: str) -> float:
        return self._budgets.get(key, self._default)

    def observe(self, key: str, seconds: float) -> None:
        """Record one request latency against ``key``'s budget."""
        seconds = max(0.0, float(seconds))
        budget = self.budget(key)
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                state = self._keys[key] = _KeyState(self._window)
            state.window.append(seconds)
            state.observed += 1
            if seconds > budget:
                state.breaches += 1
            if _window_percentile(state.window, 99.0) > budget:
                state.burn += 1

    def p99(self, key: str) -> float:
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                return 0.0
            return _window_percentile(state.window, 99.0)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-key dict: budget, rolling p99, burn state, counters."""
        with self._lock:
            keys = {key: state for key, state in self._keys.items()}
            out: Dict[str, Dict[str, float]] = {}
            for key, state in keys.items():
                budget = self.budget(key)
                p99 = _window_percentile(state.window, 99.0)
                out[key] = {
                    "budget_s": budget,
                    "p99_s": p99,
                    "burn_ratio": p99 / budget,
                    "burning": p99 > budget,
                    "breaches": state.breaches,
                    "burn": state.burn,
                    "observed": state.observed,
                }
        return out
