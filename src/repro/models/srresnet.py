"""SRResNet (Ledig et al., 2017) — the CNN benchmarked in Table III.

Head: large-kernel FP conv + PReLU.  Body: residual blocks whose convs
come from ``conv_factory`` (full precision or any binary scheme), followed
by a fusion conv and the global residual.  Tail: FP upsampler + output
conv.  The FP variant keeps BatchNorm inside the blocks; binary variants
drop the block-level BN (each binary layer decides its own normalization,
e.g. E2FIF carries a BN, SCALES does not — that is the OPs saving the
ablation of Table V attributes to BN removal).
"""

from __future__ import annotations

from typing import Optional

from ..grad import Tensor
from ..nn import Conv2d, Module, PixelShuffle, PReLU, Sequential
from .common import (ConvFactory, ResidualBlock, Upsampler, bicubic_residual,
                     fp_conv_factory, zero_init_last_conv)


class SRResNet(Module):
    def __init__(self, scale: int = 2, n_feats: int = 64, n_blocks: int = 16,
                 n_colors: int = 3, conv_factory: ConvFactory = fp_conv_factory,
                 use_bn: Optional[bool] = None, head_kernel: int = 9,
                 light_tail: bool = False, image_residual: bool = True):
        super().__init__()
        self.scale = scale
        self.n_feats = n_feats
        self.n_blocks = n_blocks
        self.image_residual = image_residual
        if use_bn is None:
            use_bn = conv_factory is fp_conv_factory
        self.head = Sequential(Conv2d(n_colors, n_feats, head_kernel), PReLU())
        self.body = Sequential(*[
            ResidualBlock(n_feats, conv_factory, use_bn=use_bn, act="prelu")
            for _ in range(n_blocks)
        ])
        self.fusion = Conv2d(n_feats, n_feats, 3)
        if light_tail:
            # Single-conv sub-pixel tail, as the binary SR literature uses
            # (keeps the FP tail from dominating the binary model's params).
            self.tail = Sequential(
                Conv2d(n_feats, n_colors * scale * scale, 3), PixelShuffle(scale))
        else:
            self.tail = Sequential(Upsampler(scale, n_feats),
                                   Conv2d(n_feats, n_colors, head_kernel))
        if image_residual:
            zero_init_last_conv(self.tail)

    def forward(self, x: Tensor) -> Tensor:
        shallow = self.head(x)
        deep = self.fusion(self.body(shallow))
        out = self.tail(deep + shallow)
        if self.image_residual:
            out = out + bicubic_residual(x, self.scale)
        return out
