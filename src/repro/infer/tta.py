"""Geometric self-ensemble (the "+" models of the EDSR lineage)."""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from ..nn import Module
from ..train import super_resolve

Transform = Tuple[Callable[[np.ndarray], np.ndarray],
                  Callable[[np.ndarray], np.ndarray]]


def _rot(k: int) -> Transform:
    return (lambda a, k=k: np.rot90(a, k, axes=(0, 1)),
            lambda a, k=k: np.rot90(a, -k, axes=(0, 1)))


def _rot_flip(k: int) -> Transform:
    return (lambda a, k=k: np.rot90(a[:, ::-1], k, axes=(0, 1)),
            lambda a, k=k: np.rot90(a, -k, axes=(0, 1))[:, ::-1])


#: The 8 dihedral (rotation x mirror) transform/inverse pairs.
DIHEDRAL_TRANSFORMS: List[Transform] = (
    [_rot(k) for k in range(4)] + [_rot_flip(k) for k in range(4)])


def self_ensemble(model: Module, lr_image: np.ndarray,
                  n_transforms: int = 8) -> np.ndarray:
    """Super-resolve ``lr_image`` averaged over dihedral transforms.

    Parameters
    ----------
    model:
        Any SR model accepted by :func:`repro.train.super_resolve`.
    lr_image:
        ``(H, W, 3)`` image in [0, 1].
    n_transforms:
        How many of the 8 dihedral transforms to use (1 disables the
        ensemble; 4 is rotations only; 8 is the full "+'' protocol).

    Note: models with a square-window constraint (SwinIR/HAT) accept the
    rotated inputs as long as H and W are both window multiples.
    """
    if not 1 <= n_transforms <= 8:
        raise ValueError(f"n_transforms must be in [1, 8], got {n_transforms}")
    accumulated: np.ndarray | None = None
    for forward_t, inverse_t in DIHEDRAL_TRANSFORMS[:n_transforms]:
        sr = super_resolve(model, np.ascontiguousarray(forward_t(lr_image)))
        sr = inverse_t(sr)
        accumulated = sr if accumulated is None else accumulated + sr
    return np.clip(accumulated / n_transforms, 0.0, 1.0)
