"""Hot-path microbenchmarks: conv im2col fast path and packed binary GEMM.

These are the two kernels every result in the repo flows through — the
float im2col convolution (training/eval of all CNN SR models and binary
baselines) and the XNOR-popcount GEMM (the deployed-latency story).
Each test asserts the optimized path is *bit-exact* against the retained
reference implementation, measures the speedup, appends it to the
``BENCH_hotpaths.json`` trajectory, and enforces the >= 2x floor this
perf PR is gated on.

Run directly with ``PYTHONPATH=src python -m pytest benchmarks/test_perf_hotpaths.py -v``.
"""

import numpy as np
import pytest

from repro import grad as G
from repro.deploy.kernels import binary_gemm
from repro.deploy.packing import (pack_signs, popcount_u64, popcount_u64_lut)
from repro.grad import Tensor, conv_backend
from repro.perf import bench, record_bench, speedup

#: Gate from the PR acceptance criteria.
MIN_SPEEDUP = 2.0


def _record(benchmark: str, ref, fast, ratio: float, **extra) -> None:
    entry = {
        "benchmark": benchmark,
        "reference": ref.to_dict(),
        "optimized": fast.to_dict(),
        "speedup": ratio,
        **extra,
    }
    try:
        record_bench("hotpaths", entry)
    except OSError:  # pragma: no cover - read-only checkout
        pass


def _seed_binary_gemm(packed_a, packed_b, k, block=256):
    """The seed XNOR-GEMM: blocked 3-D XOR + 16-bit-LUT popcount + sum."""
    m, n = packed_a.shape[0], packed_b.shape[0]
    out = np.empty((m, n), dtype=np.int32)
    for start in range(0, m, block):
        stop = min(start + block, m)
        xor = packed_a[start:stop, None, :] ^ packed_b[None, :, :]
        mismatches = popcount_u64_lut(xor).sum(axis=2)
        out[start:stop] = k - 2 * mismatches.astype(np.int32)
    return out


def _seed_pack_signs(signs):
    """Seed-style packing: one bit at a time, shifted and OR-ed in.

    The pre-vectorization idiom — a Python loop over the K bit
    positions — kept as the reference the ``pack_signs`` trajectory
    entry measures against (it used to compare ``pack_signs`` to
    itself, pinning the recorded speedup at 1.0).
    """
    from repro.deploy import packed_words

    signs = np.asarray(signs)
    *lead, k = signs.shape
    rows = signs.reshape(-1, k)
    words = np.zeros((rows.shape[0], packed_words(k)), dtype=np.uint64)
    for i in range(k):
        bit = (rows[:, i] >= 0).astype(np.uint64)
        words[:, i // 64] |= bit << np.uint64(i % 64)
    return words.reshape(*lead, -1)


class TestConvForward:
    def test_conv3x3_forward_bit_exact_and_2x(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 64, 32, 32)))
        w = Tensor(rng.standard_normal((64, 64, 3, 3)))

        with conv_backend("reference"):
            expected = G.conv2d(x, w, padding=1).data
            ref = bench(lambda: G.conv2d(x, w, padding=1),
                        label="conv3x3/reference")
        with conv_backend("fast"):
            actual = G.conv2d(x, w, padding=1).data
            fast = bench(lambda: G.conv2d(x, w, padding=1),
                         label="conv3x3/fast")

        np.testing.assert_array_equal(actual, expected)
        ratio = speedup(ref, fast)
        _record("conv3x3_forward", ref, fast, ratio,
                shape=[4, 64, 32, 32], c_out=64, padding=1)
        assert ratio >= MIN_SPEEDUP, (
            f"conv 3x3 fast path is only {ratio:.2f}x the reference "
            f"(need >= {MIN_SPEEDUP}x)")

    def test_conv3x3_backward_matches_reference(self):
        rng = np.random.default_rng(1)
        grads = {}
        for backend in ("reference", "fast"):
            with conv_backend(backend):
                x = Tensor(rng.standard_normal((2, 8, 12, 12)).copy(),
                           requires_grad=True)
                w = Tensor(np.arange(8 * 8 * 9, dtype=np.float64)
                           .reshape(8, 8, 3, 3) / 100.0, requires_grad=True)
                G.sum(G.conv2d(x, w, stride=2, padding=1) ** 2).backward()
                grads[backend] = (x.grad, w.grad)
            rng = np.random.default_rng(1)  # identical inputs per backend
        # Backward contracts with tensordot/matmul instead of einsum, so
        # summation order (and thus the last float bits) may differ.
        np.testing.assert_allclose(grads["fast"][0], grads["reference"][0],
                                   rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(grads["fast"][1], grads["reference"][1],
                                   rtol=1e-10, atol=1e-10)


class TestPackedGemm:
    def test_packed_gemm_bit_exact_and_2x(self):
        rng = np.random.default_rng(2)
        # Conv-like workload: M = B*H_out*W_out patch rows of C_in*kh*kw
        # bits against N = C_out weight rows.
        k = 576
        a = pack_signs(np.where(rng.random((2048, k)) > 0.5, 1.0, -1.0))
        b = pack_signs(np.where(rng.random((64, k)) > 0.5, 1.0, -1.0))

        expected = _seed_binary_gemm(a, b, k)
        actual = binary_gemm(a, b, k)
        np.testing.assert_array_equal(actual, expected)

        ref = bench(lambda: _seed_binary_gemm(a, b, k),
                    label="packed_gemm/seed_lut")
        fast = bench(lambda: binary_gemm(a, b, k),
                     label="packed_gemm/swar")
        ratio = speedup(ref, fast)
        _record("packed_binary_gemm", ref, fast, ratio,
                m=2048, n=64, k=k)
        assert ratio >= MIN_SPEEDUP, (
            f"packed GEMM is only {ratio:.2f}x the seed implementation "
            f"(need >= {MIN_SPEEDUP}x)")

    def test_swar_popcount_bit_exact(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**64, size=(512, 64), dtype=np.uint64)
        np.testing.assert_array_equal(popcount_u64(words),
                                      popcount_u64_lut(words))

    def test_popcount_and_pack_throughput_recorded(self):
        """Informational trajectory entries for the two sub-kernels."""
        rng = np.random.default_rng(4)
        words = rng.integers(0, 2**64, size=(512, 2048), dtype=np.uint64)
        ref = bench(lambda: popcount_u64_lut(words), label="popcount/lut")
        fast = bench(lambda: popcount_u64(words), label="popcount/swar")
        _record("popcount_u64", ref, fast, speedup(ref, fast),
                words=int(words.size))

        signs = np.where(rng.random((1024, 576)) > 0.5, 1.0, -1.0)
        np.testing.assert_array_equal(pack_signs(signs), _seed_pack_signs(signs))
        pack_ref = bench(lambda: _seed_pack_signs(signs),
                         label="pack_signs/seed_bit_loop", repeats=3)
        pack_fast = bench(lambda: pack_signs(signs), label="pack_signs/packbits")
        gbits = signs.size / pack_fast.best / 1e9
        _record("pack_signs", pack_ref, pack_fast, speedup(pack_ref, pack_fast),
                gigabits_per_s=gbits)
        assert speedup(pack_ref, pack_fast) > 1.0
        assert speedup(ref, fast) > 1.0
