"""LMB: local means binary networks (Li et al., TNNLS 2022).

The binarization threshold of every pixel is the average of its local
neighborhood (a 3x3 box filter here), which makes the method spatially
and image adaptive but requires a full-precision accumulation per pixel
at inference — the cost the paper criticizes in Table I.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ... import grad as G
from ...grad import Tensor
from ...nn import Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class LMBBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True,
                 neighborhood: int = 3):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.neighborhood = neighborhood
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.skip = stride == 1 and in_channels == out_channels
        # Fixed (non-learnable) box filter computing the local mean.
        k = neighborhood
        self._box = np.full((1, 1, k, k), 1.0 / (k * k))

    def _local_mean(self, x: Tensor) -> np.ndarray:
        b, c, h, w = x.shape
        flat = x.data.reshape(b * c, 1, h, w)
        box = Tensor(self._box)
        pooled = G.conv2d(Tensor(flat), box, padding=self.neighborhood // 2)
        return pooled.data.reshape(b, c, h, w)

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        threshold = self._local_mean(x)
        xb = approx_sign_ste(x - Tensor(threshold))
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "LMB", "spatial": True, "channel": False,
                "layer": False, "image": True, "hw_cost": "FP Accum."}
