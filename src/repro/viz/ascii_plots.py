"""Terminal renderings of the paper's distribution figures.

Figs. 3-5 are box-plot panels of activation distributions.  Without a
plotting library, this module renders the same information as text:

* :func:`ascii_histogram` — a fixed-width bar histogram of one array;
* :func:`distribution_strip` — one line per group showing the five-number
  summary as a ``|--[==|==]--|`` box-plot strip on a shared axis;
* :func:`render_summaries` — a full figure panel from the
  :class:`repro.analysis.DistributionSummary` objects the analysis
  module produces.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_BAR = "#"


def ascii_histogram(values: np.ndarray, bins: int = 12, width: int = 40,
                    title: str = "") -> str:
    """Fixed-width text histogram of ``values``."""
    values = np.asarray(values).ravel()
    if values.size == 0:
        raise ValueError("cannot histogram an empty array")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = _BAR * int(round(width * count / peak))
        lines.append(f"{lo:+8.2f} .. {hi:+8.2f} | {bar} {count}")
    return "\n".join(lines)


def _strip(row: np.ndarray, lo: float, hi: float, width: int) -> str:
    """One box-plot line: min/max whiskers, quartile box, median mark."""
    span = hi - lo or 1.0

    def col(v: float) -> int:
        return int(round((v - lo) / span * (width - 1)))

    cells = [" "] * width
    v_min, q1, med, q3, v_max = (col(v) for v in row)
    for i in range(v_min, v_max + 1):
        cells[i] = "-"
    for i in range(q1, q3 + 1):
        cells[i] = "="
    cells[v_min] = "|"
    cells[v_max] = "|"
    cells[med] = "O"
    return "".join(cells)


def distribution_strip(rows: np.ndarray, labels: Sequence[str] = (),
                       width: int = 48) -> str:
    """Render (N, 5) five-number rows as aligned box-plot strips."""
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[1] != 5:
        raise ValueError(f"expected (N, 5) five-number rows, got {rows.shape}")
    if rows.shape[0] == 0:
        raise ValueError("no rows to render")
    lo = float(rows[:, 0].min())
    hi = float(rows[:, 4].max())
    labels = list(labels) or [str(i + 1) for i in range(rows.shape[0])]
    if len(labels) != rows.shape[0]:
        raise ValueError("one label per row required")
    pad = max(len(s) for s in labels)
    lines = [f"{label:>{pad}} {_strip(row, lo, hi, width)}"
             for label, row in zip(labels, rows)]
    lines.append(f"{'':>{pad}} {lo:<+.3g}{'':^{max(width - 16, 1)}}{hi:>+.3g}")
    return "\n".join(lines)


def render_summaries(summaries: Iterable, width: int = 48) -> str:
    """Render DistributionSummary panels (Figs. 3-5) as one text block."""
    blocks: List[str] = []
    for summary in summaries:
        header = (f"{summary.label}  "
                  f"(median variance {summary.center_variation:.4g}, "
                  f"mean IQR {summary.spread:.4g})")
        blocks.append(header + "\n" + distribution_strip(summary.rows,
                                                         width=width))
    return "\n\n".join(blocks)
