"""{-1,+1} <-> packed ``uint64`` codecs and a vectorized popcount.

Conventions
-----------
* A *sign vector* is any array whose last axis holds values in
  ``{-1.0, +1.0}`` (the output domain of every binarizer in
  :mod:`repro.binarize`).
* Packing maps ``+1 -> bit 1`` and ``-1 -> bit 0``, little-endian within
  each 64-bit word: element ``i`` of a row lands in word ``i // 64`` at
  bit ``i % 64``.
* Rows whose length is not a multiple of 64 are padded with 0-bits.  The
  XNOR-GEMM identity ``dot = K - 2 * popcount(a ^ b)`` is unaffected as
  long as *both* operands pad with the same bit (the paddings XNOR to
  "agree" and the constant ``K`` already excludes them — see
  :func:`repro.deploy.kernels.binary_gemm`).

Performance notes
-----------------
``pack_signs`` writes the thresholded bits straight into a
64-bit-aligned buffer and packs with ``np.packbits(..., bitorder
="little")`` — no concatenate-for-padding, no per-byte bit reversal, no
trailing dtype copy (the returned array is a zero-copy view of the
packed bytes).  ``popcount_u64`` is a branch-free SWAR (mask-and-add)
reduction; the previous 16-bit-LUT implementation is retained as
:func:`popcount_u64_lut`, the reference oracle for tests and the perf
benchmarks.

On NumPy >= 2.0 the hardware popcount ufunc ``np.bitwise_count`` is
available (POPCNT / AVX512-VPOPCNTDQ under the hood): one memory pass
instead of the SWAR's ~ten.  :data:`HAS_HW_POPCOUNT` reports whether it
exists and :func:`popcount_into` dispatches to it, falling back to the
SWAR reduction on older NumPy — the deploy package keeps working on the
declared ``numpy>=1.22`` floor.
"""

from __future__ import annotations

import numpy as np

#: Number of bits per packed word.
WORD_BITS = 64

#: True when this NumPy ships the hardware popcount ufunc (>= 2.0).
HAS_HW_POPCOUNT = hasattr(np, "bitwise_count")

#: 16-bit popcount lookup table (64 KiB) — 4 lookups per uint64.  Used
#: only by the reference :func:`popcount_u64_lut`.
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                       dtype=np.uint8)

# SWAR popcount constants (Hacker's Delight, fig. 5-2).
_M1 = np.uint64(0x5555555555555555)   # pairs of bits
_M2 = np.uint64(0x3333333333333333)   # nibbles
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)   # bytes
_H01 = np.uint64(0x0101010101010101)  # byte-sum via multiply-high
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_signs(signs: np.ndarray) -> np.ndarray:
    """Pack a sign array along its last axis into ``uint64`` words.

    Parameters
    ----------
    signs:
        Array of shape ``(..., K)`` with values in {-1, +1} (anything
        ``>= 0`` counts as +1, mirroring the forward ``sign`` used by
        every binarizer in this repo).

    Returns
    -------
    ``uint64`` array of shape ``(..., packed_words(K))``.
    """
    signs = np.asarray(signs)
    if signs.ndim == 0:
        raise ValueError("pack_signs needs at least one axis")
    *lead, k = signs.shape
    n_words = packed_words(k)
    rows = int(np.prod(lead, dtype=np.int64)) if lead else 1
    # Threshold directly into a word-aligned bit buffer: the tail bits
    # beyond K stay 0, which is exactly the padding convention above.
    bits = np.zeros((rows, n_words * WORD_BITS), dtype=np.uint8)
    np.greater_equal(signs.reshape(rows, k), 0, out=bits[:, :k])
    # bitorder="little" matches the LSB-first convention, so the packed
    # bytes ARE the little-endian words — view them, don't copy them.
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    words = packed_bytes.view("<u8")
    return words.reshape(*lead, n_words)


def unpack_signs(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`: recover the {-1, +1} sign array."""
    packed = np.asarray(packed, dtype=np.uint64)
    *lead, n_words = packed.shape
    if packed_words(n_bits) != n_words:
        raise ValueError(
            f"packed array has {n_words} words, expected {packed_words(n_bits)} "
            f"for {n_bits} bits")
    flat = np.ascontiguousarray(packed.reshape(-1, n_words)).astype("<u8")
    as_bytes = flat.view(np.uint8).reshape(flat.shape[0], n_words * 8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :n_bits]
    signs = np.where(bits > 0, 1.0, -1.0)
    return signs.reshape(*lead, n_bits)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (vectorized SWAR).

    Branch-free mask-and-add: fold bit pairs, nibbles and bytes in
    parallel inside each word, then sum the eight byte-counts with a
    multiply-high.  Roughly 2-3x faster than the 16-bit-LUT gather
    (:func:`popcount_u64_lut`) because it streams through the data with
    cheap elementwise ops instead of four gather passes.
    """
    v = np.array(words, dtype=np.uint64, copy=True)
    return _popcount_u64_inplace(v, np.empty_like(v)).astype(np.uint32)


def _popcount_u64_inplace(v: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """SWAR popcount that clobbers ``v`` (and ``scratch``) — no allocs.

    ``v`` ends up holding the per-word popcount (values 0..64) as
    ``uint64``; the same array is returned.  Used by
    :func:`repro.deploy.kernels.binary_gemm` on its XOR workspace.
    """
    t = scratch
    np.right_shift(v, _S1, out=t)
    t &= _M1
    v -= t                      # v = pairs-of-bits counts
    np.right_shift(v, _S2, out=t)
    t &= _M2
    v &= _M2
    v += t                      # v = nibble counts
    np.right_shift(v, _S4, out=t)
    v += t
    v &= _M4                    # v = byte counts
    v *= _H01                   # top byte = sum of all byte counts
    v >>= _S56
    return v


def popcount_into(words: np.ndarray, out: np.ndarray,
                  scratch: np.ndarray) -> np.ndarray:
    """Popcount ``words`` into the ``uint8`` array ``out`` (no allocs).

    Dispatches to ``np.bitwise_count`` when available; otherwise runs the
    SWAR reduction in ``scratch`` (a ``uint64`` array of ``words``'s
    shape, clobbered) and narrows into ``out``.  ``words`` itself is
    never modified.  Returns ``out``.
    """
    if HAS_HW_POPCOUNT:
        return np.bitwise_count(words, out=out)
    np.copyto(scratch, words)
    swar = _popcount_u64_inplace(scratch, np.empty_like(scratch))
    np.copyto(out, swar, casting="unsafe")
    return out


def popcount_u64_lut(words: np.ndarray) -> np.ndarray:
    """Reference popcount (16-bit LUT, 4 gathers per uint64).

    The seed implementation, kept as the exactness oracle for
    :func:`popcount_u64` and as the baseline the perf benchmarks measure
    the SWAR speedup against.
    """
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64(0xFFFF)
    counts = _POPCOUNT16[(words & mask).astype(np.uint16)].astype(np.uint32)
    for shift in (16, 32, 48):
        counts += _POPCOUNT16[((words >> np.uint64(shift)) & mask).astype(np.uint16)]
    return counts
