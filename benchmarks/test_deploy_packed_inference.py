"""Extension bench — packed XNOR-popcount deployment (the Larq substrate).

Table VI's phone numbers come from Larq executing the binary layers on
packed 1-bit operands.  This bench compiles a *trained* SCALES SRResNet
onto this repo's packed kernels and checks the three facts that make
binary deployment worthwhile:

* the packed model is numerically identical to the training graph (the
  deployment is lossless);
* the binarized weights compress by ~32x (paper: 1517K FP params vs 34K);
* super-resolving through the packed path produces the same PSNR.
"""

import numpy as np

from repro import grad as G
from repro.data import benchmark_suite
from repro.deploy import compile_model, deployment_report
from repro.experiments import cache
from repro.experiments.presets import get_preset
from repro.grad import Tensor, no_grad
from repro.metrics import psnr_y
from repro.train import super_resolve


def test_deploy_packed_inference(benchmark):
    preset = get_preset()
    pairs = benchmark_suite("urban100", 4, 2, (64, 64))

    with G.default_dtype("float32"):
        model = cache.get_trained_model("srresnet", "scales", 4, preset,
                                        light_tail=True, head_kernel=3)
        compiled = compile_model(model)

        x = Tensor(pairs[0].lr.transpose(2, 0, 1)[None].astype(np.float32))
        with no_grad():
            ref = model(x).data

        def packed_forward():
            with no_grad():
                return compiled(x).data

        out = benchmark.pedantic(packed_forward, rounds=3, iterations=1)

    # Lossless deployment: packed output == training-graph output.
    np.testing.assert_allclose(out, ref, rtol=0, atol=1e-4)

    # The packed weights really are ~32x smaller (tiny layers lose a
    # little to word-boundary padding).
    report = deployment_report(compiled)
    print(f"\npacked binary layers: {report.n_binary_layers}")
    print(f"weight compression:   {report.weight_compression:.1f}x")
    print(f"model compression:    {report.model_compression:.2f}x")
    assert report.n_binary_layers >= 4
    assert report.weight_compression > 10

    # End-to-end PSNR through the packed path matches the float graph.
    with G.default_dtype("float32"):
        for pair in pairs:
            sr_float = super_resolve(model, pair.lr)
            sr_packed = super_resolve(compiled, pair.lr)
            p_float = psnr_y(sr_float, pair.hr, shave=4)
            p_packed = psnr_y(sr_packed, pair.hr, shave=4)
            assert abs(p_float - p_packed) < 1e-3

    # The *trained* model survives the disk round-trip bit-identically:
    # export the packed artifact, reload it (no float model rebuild) and
    # compare forwards.  Complements tests/deploy/test_conformance.py,
    # which runs the same check on untrained tiny models zoo-wide.
    import tempfile
    from pathlib import Path

    from repro.deploy import load_artifact, save_artifact

    with G.default_dtype("float32"), tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "srresnet_trained.rbd.npz"
        save_artifact(compiled, path)
        loaded = load_artifact(path)
        with no_grad():
            np.testing.assert_array_equal(loaded(x).data, compiled(x).data)
