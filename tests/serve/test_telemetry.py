"""Telemetry: counters, histogram percentiles, derived rates, report."""

import threading

import pytest

from repro.serve import LatencyHistogram, Telemetry


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.snapshot() == {"count": 0}

    def test_percentiles_are_monotone_and_bracketed(self):
        hist = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for v in values:
            hist.record(v)
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # Log-bucketed: p50 of a uniform 1..100ms spread lands within
        # a factor-of-two bucket of the true median.
        assert 0.025 <= p50 <= 0.1

    def test_exact_count_sum_min_max(self):
        hist = LatencyHistogram()
        for v in (0.5, 0.25, 1.5):
            hist.record(v)
        assert hist.count == 3
        assert hist.min == 0.25
        assert hist.max == 1.5
        assert hist.mean == pytest.approx(2.25 / 3)

    def test_single_observation_is_every_percentile(self):
        hist = LatencyHistogram()
        hist.record(0.042)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == pytest.approx(0.042)

    def test_invalid_percentile(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_negative_latency_clamped(self):
        hist = LatencyHistogram()
        hist.record(-0.5)
        assert hist.min == 0.0

    def test_empty_histogram_every_percentile_is_zero(self):
        hist = LatencyHistogram()
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == 0.0
        assert hist.mean == 0.0
        assert hist.max == 0.0

    def test_single_sample_lands_in_exactly_one_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.003)
        assert sum(hist.counts) == 1
        assert hist.counts.count(1) == 1
        # ... and in the right one: the first bound >= the observation.
        from repro.serve import BUCKET_BOUNDS

        index = hist.counts.index(1)
        assert BUCKET_BOUNDS[index] >= 0.003
        assert index == 0 or BUCKET_BOUNDS[index - 1] < 0.003

    def test_overflow_sample_lands_in_final_bucket(self):
        hist = LatencyHistogram()
        from repro.serve import BUCKET_BOUNDS

        hist.record(BUCKET_BOUNDS[-1] * 10)  # beyond every bound
        assert hist.counts[-1] == 1
        assert hist.percentile(99) == pytest.approx(
            BUCKET_BOUNDS[-1] * 10)

    def test_merge_disjoint_bucket_ranges(self):
        fast, slow = LatencyHistogram(), LatencyHistogram()
        for _ in range(90):
            fast.record(1e-6)  # all in the first bucket
        for _ in range(10):
            slow.record(100.0)  # all near the last
        merged = LatencyHistogram().merge(fast).merge(slow)
        assert merged.count == 100
        assert merged.min == pytest.approx(1e-6)
        assert merged.max == pytest.approx(100.0)
        assert merged.total == pytest.approx(90 * 1e-6 + 10 * 100.0)
        # The p50 comes from the fast mass, the p99 from the slow tail.
        assert merged.percentile(50) == pytest.approx(1e-6)
        assert merged.percentile(99) == pytest.approx(100.0)

    def test_merge_empty_into_empty_stays_empty(self):
        merged = LatencyHistogram().merge(LatencyHistogram())
        assert merged.count == 0
        assert merged.percentile(99) == 0.0
        assert merged.snapshot() == {"count": 0}

    def test_merge_returns_self_for_reduce(self):
        import functools

        parts = []
        for seconds in (0.001, 0.01, 0.1):
            hist = LatencyHistogram()
            hist.record(seconds)
            parts.append(hist)
        total = functools.reduce(
            lambda a, b: a.merge(b), parts, LatencyHistogram())
        assert total.count == 3

    def test_counter_overflow_beyond_64_bits_is_exact(self):
        # Python ints never wrap: a merged fleet-wide count past 2**63
        # stays exact, and percentile() still terminates (bucket walk
        # is over counts, not observations).
        hist = LatencyHistogram()
        hist.record(0.001)
        big = LatencyHistogram()
        big.counts[5] = 2**63
        big.count = 2**63
        big.total = 1e12
        big.min, big.max = 1e-5, 2e-5
        hist.merge(big)
        assert hist.count == 2**63 + 1
        assert hist.count > 0  # no wraparound to negative
        from repro.serve import BUCKET_BOUNDS

        assert hist.percentile(50) == pytest.approx(BUCKET_BOUNDS[5])


class TestTelemetry:
    def test_counters(self):
        t = Telemetry()
        t.count("requests")
        t.count("requests", 4)
        assert t.counter("requests") == 5
        assert t.counter("never") == 0

    def test_stats_derived_rates(self):
        t = Telemetry(batch_capacity=8)
        for _ in range(3):
            t.count("cache_hits")
        t.count("cache_misses")
        t.count("requests", 10)
        t.count("shed", 2)
        t.count("batches", 2)
        t.count("batch_images", 12)
        derived = t.stats()["derived"]
        assert derived["cache_hit_rate"] == pytest.approx(0.75)
        assert derived["shed_rate"] == pytest.approx(0.2)
        assert derived["batch_occupancy"] == pytest.approx(12 / 16)

    def test_derived_none_without_inputs(self):
        derived = Telemetry().stats()["derived"]
        assert derived["cache_hit_rate"] is None
        assert derived["shed_rate"] is None
        assert derived["batch_occupancy"] is None

    def test_latency_snapshot_in_stats(self):
        t = Telemetry()
        for ms in (1, 2, 4):
            t.observe("request_latency", ms / 1e3)
        snap = t.stats()["latency"]["request_latency"]
        assert snap["count"] == 3
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
        assert snap["max_ms"] == pytest.approx(4.0)

    def test_report_mentions_everything(self):
        t = Telemetry(batch_capacity=4)
        t.count("requests", 7)
        t.observe("batch_seconds", 0.01)
        report = t.report()
        assert "requests" in report
        assert "7" in report
        assert "batch_seconds" in report
        assert "cache_hit_rate" in report

    def test_thread_safety_exact_totals(self):
        t = Telemetry()
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                t.count("requests")
                t.observe("request_latency", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert t.counter("requests") == n_threads * per_thread
        snap = t.stats()["latency"]["request_latency"]
        assert snap["count"] == n_threads * per_thread
