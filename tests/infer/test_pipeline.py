"""Batched/parallel inference pipeline: equivalence and plumbing.

The batched tile pipeline, the thread pool, and the micro-batching
serving API must all be execution-strategy changes only: outputs are
required to match the sequential per-tile / per-image path bit-for-bit
(packed models) or to float tolerance (float models), across odd image
sizes, tiles that do not divide the image, and thread counts.
"""


import numpy as np
import pytest

from repro import grad as G
from repro.binarize.baselines import E2FIFBinaryConv2d
from repro.deploy import TiledInference, compile_model
from repro.grad import Tensor, no_grad
from repro.infer import (DiscardedError, InferencePipeline, get_num_threads,
                         num_threads, parallel_map, plan_tiles,
                         set_num_threads, tiled_super_resolve)
from repro.models import build_model
from repro.nn import Module, Sequential, init
from repro.train import super_resolve


class _Upscale2x(Module):
    """Deterministic stand-in model: nearest-neighbour x2 upscale."""

    def forward(self, x):
        return Tensor(np.repeat(np.repeat(x.data, 2, axis=2), 2, axis=3))


def _forward(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _sequential_tiled_oracle(model, lr_image, scale, tile, overlap):
    """The seed path: one ``super_resolve`` per tile, stitched."""
    h, w = lr_image.shape[:2]
    plan = plan_tiles(h, w, tile, overlap)
    out = np.zeros((h * scale, w * scale, 3), dtype=np.float64)
    weight = np.zeros((h * scale, w * scale, 1), dtype=np.float64)
    th, tw = plan.tile_h, plan.tile_w
    for s in plan.tiles:
        sr = super_resolve(model, lr_image[s.y0:s.y0 + th, s.x0:s.x0 + tw])
        sr = sr[s.top * scale:(th - s.bottom) * scale,
                s.left * scale:(tw - s.right) * scale]
        ys, xs = (s.y0 + s.top) * scale, (s.x0 + s.left) * scale
        out[ys:ys + sr.shape[0], xs:xs + sr.shape[1]] += sr
        weight[ys:ys + sr.shape[0], xs:xs + sr.shape[1]] += 1.0
    return np.clip(out / np.maximum(weight, 1.0), 0.0, 1.0)


class TestThreadControls:
    def test_default_positive(self):
        assert get_num_threads() >= 1

    def test_set_and_reset(self):
        set_num_threads(3)
        assert get_num_threads() == 3
        set_num_threads(None)
        assert get_num_threads() >= 1

    def test_env_variable(self, monkeypatch):
        set_num_threads(None)
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        assert get_num_threads() == 5

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            set_num_threads(0)
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], n_threads=-1)

    def test_context_manager(self):
        with num_threads(2):
            assert get_num_threads() == 2

    def test_parallel_map_preserves_order(self):
        items = list(range(50))
        assert parallel_map(lambda i: i * i, items, n_threads=4) == \
            [i * i for i in items]

    def test_parallel_map_propagates_errors(self):
        def boom(i):
            raise RuntimeError("worker failed")
        with pytest.raises(RuntimeError, match="worker failed"):
            parallel_map(boom, [1, 2], n_threads=2)

    def test_lowered_thread_count_bounds_concurrency(self):
        # Grow the shared pool first, then ask for 2 threads: no more
        # than 2 items may ever be in flight (the pool only grows, so
        # concurrency must be bounded by wave submission, not width).
        import threading
        import time
        parallel_map(lambda i: i, list(range(8)), n_threads=8)
        in_flight = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def tracked(i):
            with lock:
                in_flight["now"] += 1
                in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            time.sleep(0.01)
            with lock:
                in_flight["now"] -= 1
            return i

        assert parallel_map(tracked, list(range(8)), n_threads=2) == \
            list(range(8))
        assert in_flight["peak"] <= 2


class TestTiledEquivalence:
    """Batched tiled paths vs the sequential seed path."""

    def _packed_model(self):
        init.seed(0)
        model = Sequential(E2FIFBinaryConv2d(3, 8, 3),
                           E2FIFBinaryConv2d(8, 3, 3))
        return compile_model(model)

    @pytest.mark.parametrize("shape", [(37, 41), (33, 64), (48, 31)])
    @pytest.mark.parametrize("tile,overlap", [(16, 8), (20, 6)])
    def test_odd_sizes_and_non_dividing_tiles(self, shape, tile, overlap):
        with G.default_dtype("float32"):
            model = self._packed_model()
            h, w = shape
            x = np.random.default_rng(1).normal(size=(1, 3, h, w)).astype(np.float32)
            seq = TiledInference(model, tile=tile, overlap=overlap, batched=False)
            bat = TiledInference(model, tile=tile, overlap=overlap,
                                 batched=True, batch_size=5)
            np.testing.assert_array_equal(_forward(bat, x), _forward(seq, x))

    @pytest.mark.parametrize("threads", [1, 4])
    def test_thread_counts_identical(self, threads):
        with G.default_dtype("float32"):
            model = self._packed_model()
            x = np.random.default_rng(2).normal(size=(1, 3, 45, 39)).astype(np.float32)
            seq = TiledInference(model, tile=16, overlap=8, batched=False)
            bat = TiledInference(model, tile=16, overlap=8, batched=True,
                                 batch_size=3, n_threads=threads)
            np.testing.assert_array_equal(_forward(bat, x), _forward(seq, x))

    def test_batch_of_images(self):
        with G.default_dtype("float32"):
            model = self._packed_model()
            x = np.random.default_rng(3).normal(size=(3, 3, 40, 24)).astype(np.float32)
            seq = TiledInference(model, tile=16, overlap=8, batched=False)
            bat = TiledInference(model, tile=16, overlap=8, batched=True,
                                 batch_size=4)
            np.testing.assert_array_equal(_forward(bat, x), _forward(seq, x))

    def test_tiled_super_resolve_matches_sequential_oracle(self):
        with G.default_dtype("float32"):
            init.seed(2)
            model = build_model("srresnet", scale=2, scheme="e2fif",
                                preset="tiny")
            img = np.random.default_rng(4).random((37, 29, 3)).astype(np.float32)
            fast = tiled_super_resolve(model, img, scale=2, tile=16, overlap=8,
                                       batch_size=4)
            oracle = _sequential_tiled_oracle(model, img, 2, tile=16, overlap=8)
            np.testing.assert_allclose(fast, oracle, atol=1e-5)

    def test_tiled_super_resolve_threads(self):
        with G.default_dtype("float32"):
            model = _Upscale2x()
            img = np.random.default_rng(5).random((50, 34, 3))
            base = tiled_super_resolve(model, img, scale=2, tile=16,
                                       overlap=4, n_threads=1)
            par = tiled_super_resolve(model, img, scale=2, tile=16,
                                      overlap=4, n_threads=4, batch_size=2)
            np.testing.assert_array_equal(par, base)

    def test_wrong_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            tiled_super_resolve(_Upscale2x(), np.zeros((20, 20, 3)), scale=3,
                                tile=8, overlap=2)


class TestInferencePipeline:
    def _model(self):
        init.seed(0)
        return compile_model(Sequential(E2FIFBinaryConv2d(3, 8, 3),
                                        E2FIFBinaryConv2d(8, 3, 3)))

    def test_map_matches_individual_super_resolve(self):
        with G.default_dtype("float32"):
            model = self._model()
            rng = np.random.default_rng(6)
            images = [rng.random((10, 12, 3)).astype(np.float32)
                      for _ in range(5)]
            pipe = InferencePipeline(model, batch_size=2)
            outs = pipe.map(images)
            for img, out in zip(images, outs):
                np.testing.assert_array_equal(out, np.clip(
                    super_resolve(model, img), 0.0, 1.0))

    def test_mixed_shapes_grouped(self):
        with G.default_dtype("float32"):
            model = self._model()
            rng = np.random.default_rng(7)
            images = [rng.random((8, 8, 3)).astype(np.float32),
                      rng.random((10, 6, 3)).astype(np.float32),
                      rng.random((8, 8, 3)).astype(np.float32)]
            pipe = InferencePipeline(model, batch_size=8)
            outs = pipe.map(images)
            assert [o.shape for o in outs] == [(8, 8, 3), (10, 6, 3), (8, 8, 3)]
            for img, out in zip(images, outs):
                np.testing.assert_array_equal(out, np.clip(
                    super_resolve(model, img), 0.0, 1.0))
            # 2 same-shape images in one batch + 1 alone
            assert pipe.stats["batches"] == 2
            assert pipe.stats["max_batch"] == 2

    def test_submit_result_flushes_lazily(self):
        with G.default_dtype("float32"):
            model = self._model()
            img = np.random.default_rng(8).random((8, 8, 3)).astype(np.float32)
            pipe = InferencePipeline(model)
            handle = pipe.submit(img)
            assert not handle.done()
            assert pipe.pending() == 1
            out = handle.result()
            assert handle.done()
            assert pipe.pending() == 0
            np.testing.assert_array_equal(out, np.clip(
                super_resolve(model, img), 0.0, 1.0))

    def test_call_convenience(self):
        with G.default_dtype("float32"):
            model = self._model()
            img = np.random.default_rng(9).random((8, 8, 3)).astype(np.float32)
            np.testing.assert_array_equal(
                InferencePipeline(model)(img),
                np.clip(super_resolve(model, img), 0.0, 1.0))

    def test_tiled_pipeline_matches_tiled_super_resolve(self):
        with G.default_dtype("float32"):
            model = self._model()
            img = np.random.default_rng(10).random((37, 29, 3)).astype(np.float32)
            pipe = InferencePipeline(model, batch_size=4, tile=16,
                                     tile_overlap=8, scale=1)
            np.testing.assert_array_equal(
                pipe(img),
                tiled_super_resolve(model, img, scale=1, tile=16, overlap=8,
                                    batch_size=4))

    def test_parallel_threads_match(self):
        with G.default_dtype("float32"):
            model = self._model()
            rng = np.random.default_rng(11)
            images = [rng.random((9, 9, 3)).astype(np.float32)
                      for _ in range(6)]
            base = InferencePipeline(model, batch_size=2, n_threads=1).map(images)
            par = InferencePipeline(model, batch_size=2, n_threads=4).map(images)
            for a, b in zip(base, par):
                np.testing.assert_array_equal(a, b)

    def test_validation(self):
        model = _Upscale2x()
        with pytest.raises(ValueError, match="batch_size"):
            InferencePipeline(model, batch_size=0)
        with pytest.raises(ValueError, match="scale"):
            InferencePipeline(model, tile=16)
        with pytest.raises(ValueError, match="image"):
            InferencePipeline(model).submit(np.zeros((4, 4)))
        # clip=False cannot be honoured on the tiled path (per-tile
        # outputs are blended already clipped) — reject, don't ignore.
        with pytest.raises(ValueError, match="clip"):
            InferencePipeline(model, tile=16, scale=2, clip=False)

    def test_failed_flush_keeps_pending_images(self):
        class _Flaky(Module):
            def __init__(self):
                super().__init__()
                self.fail = True

            def forward(self, x):
                if self.fail:
                    raise RuntimeError("transient failure")
                return Tensor(x.data)

        model = _Flaky()
        pipe = InferencePipeline(model, batch_size=4)
        img = np.random.default_rng(13).random((6, 6, 3))
        handle = pipe.submit(img)
        with pytest.raises(RuntimeError, match="transient"):
            pipe.flush()
        # The image is still queued, not silently dropped...
        assert pipe.pending() == 1
        assert not handle.done()
        # ...and a retry after the fault clears delivers the result.
        model.fail = False
        out = handle.result()
        assert out.shape == (6, 6, 3)
        assert pipe.pending() == 0

    def test_nested_parallelism_does_not_deadlock(self):
        # A thread-parallel tiled model inside a thread-parallel
        # pipeline: the inner parallel_map must run inline on pool
        # workers instead of starving the shared pool.
        with G.default_dtype("float32"):
            inner = TiledInference(self._model(), tile=8, overlap=4,
                                   batch_size=2, n_threads=4)
            rng = np.random.default_rng(14)
            images = [rng.random((20, 20, 3)).astype(np.float32)
                      for _ in range(4)]
            pipe = InferencePipeline(inner, batch_size=1, n_threads=4)
            outs = pipe.map(images)
            for img, out in zip(images, outs):
                expected = np.clip(super_resolve(inner, img), 0.0, 1.0)
                np.testing.assert_array_equal(out, expected)

    def test_stats_counters(self):
        with G.default_dtype("float32"):
            model = self._model()
            rng = np.random.default_rng(12)
            pipe = InferencePipeline(model, batch_size=2)
            pipe.map([rng.random((8, 8, 3)).astype(np.float32)
                      for _ in range(5)])
            assert pipe.stats["submitted"] == 5
            assert pipe.stats["completed"] == 5
            assert pipe.stats["batches"] == 3  # 2 + 2 + 1


class TestPipelineDeadlinesAndHooks:
    """The serving-layer attachment points: flush deadlines + hooks."""

    def _pipeline(self, **kwargs):
        return InferencePipeline(_Upscale2x(), **kwargs)

    def test_oldest_age_and_due(self):
        pipe = self._pipeline(batch_size=4)
        assert pipe.oldest_age() is None
        assert not pipe.due(0.0)
        img = np.random.default_rng(0).random((4, 4, 3))
        pipe.submit(img)
        t0 = pipe._pending[0][2]
        assert pipe.oldest_age(now=t0 + 0.25) == pytest.approx(0.25)
        assert not pipe.due(budget_s=0.5, now=t0 + 0.25)
        assert pipe.due(budget_s=0.5, now=t0 + 0.5)

    def test_full_batch_is_due_regardless_of_budget(self):
        pipe = self._pipeline(batch_size=2)
        img = np.random.default_rng(0).random((4, 4, 3))
        pipe.submit(img)
        assert not pipe.due(budget_s=1e9)
        pipe.submit(img)
        assert pipe.due(budget_s=1e9)

    def test_flush_if_due(self):
        pipe = self._pipeline(batch_size=8)
        img = np.random.default_rng(0).random((4, 4, 3))
        handle = pipe.submit(img)
        t0 = pipe._pending[0][2]
        assert not pipe.flush_if_due(budget_s=10.0, now=t0 + 0.1)
        assert not handle.done()
        assert pipe.flush_if_due(budget_s=0.05, now=t0 + 0.1)
        assert handle.done()
        assert pipe.pending() == 0

    def test_hooks_observe_batches_and_flushes(self):
        events = []

        from repro.infer import PipelineHooks

        class Hooks(PipelineHooks):
            def on_batch(self, n_images, seconds):
                events.append(("batch", n_images))

            def on_flush(self, n_images, seconds):
                events.append(("flush", n_images))

        pipe = self._pipeline(batch_size=2, hooks=Hooks())
        rng = np.random.default_rng(0)
        pipe.map([rng.random((4, 4, 3)) for _ in range(5)])
        batches = [e for e in events if e[0] == "batch"]
        flushes = [e for e in events if e[0] == "flush"]
        assert sum(n for _, n in batches) == 5
        assert [n for _, n in batches] == [2, 2, 1]
        assert flushes == [("flush", 5)]

    def test_discard_pending(self):
        pipe = self._pipeline(batch_size=8)
        rng = np.random.default_rng(0)
        keep = pipe.submit(rng.random((4, 4, 3)))
        drop = pipe.submit(rng.random((4, 4, 3)))
        assert pipe.discard_pending([drop]) == 1
        assert pipe.pending() == 1
        pipe.flush()
        assert keep.done()
        assert not drop.done()
        assert pipe.discard_pending([keep]) == 0  # already completed

    def test_discarded_handle_raises_typed_error_immediately(self):
        # Regression: result() on a discarded handle used to re-flush
        # and block/fail opaquely — its image is gone from the queue,
        # so no flush can ever resolve it.
        pipe = self._pipeline(batch_size=8)
        rng = np.random.default_rng(0)
        keep = pipe.submit(rng.random((4, 4, 3)))
        drop = pipe.submit(rng.random((4, 4, 3)))
        assert pipe.discard_pending([drop]) == 1
        assert drop.discarded()
        assert not keep.discarded()
        with pytest.raises(DiscardedError):
            drop.result()
        # The raise happened without flushing the survivor's image.
        assert not keep.done()
        assert keep.result().shape == (8, 8, 3)

    def test_discard_does_not_mark_completed_handles(self):
        pipe = self._pipeline(batch_size=8)
        rng = np.random.default_rng(0)
        done_handle = pipe.submit(rng.random((4, 4, 3)))
        pipe.flush()
        assert pipe.discard_pending([done_handle]) == 0
        assert not done_handle.discarded()
        assert done_handle.result().shape == (8, 8, 3)


class TestGradModeInheritance:
    """no_grad on the calling thread must extend into pool workers."""

    def test_parallel_map_inherits_no_grad(self):
        def probe(_):
            return G.is_grad_enabled()

        with G.no_grad():
            assert parallel_map(probe, range(6), n_threads=3) == [False] * 6
        assert parallel_map(probe, range(6), n_threads=3) == [True] * 6

    def test_submit_task_inherits_no_grad(self):
        from repro.infer import submit_task

        with num_threads(2):
            with G.no_grad():
                assert submit_task(G.is_grad_enabled).result(5) is False
            assert submit_task(G.is_grad_enabled).result(5) is True

    def test_threaded_pipeline_builds_no_graph(self):
        model = _Upscale2x()
        pipe = InferencePipeline(model, batch_size=1, n_threads=2)
        rng = np.random.default_rng(0)
        outs = pipe.map([rng.random((4, 4, 3)) for _ in range(4)])
        assert len(outs) == 4
