"""Micro-batch scheduler policy under a simulated clock.

Every decision is a pure function of (queues, now), so these tests
drive the clock explicitly — no sleeps, no racy timing assumptions.
"""

import pytest

from repro.serve import MicroBatchScheduler, QueuedRequest

KEY_A = ("srresnet", "scales", 2)
KEY_B = ("edsr", "e2fif", 2)


def _req(key, now, budget=1.0):
    return QueuedRequest(
        image=None,
        cache_key="",
        future=None,
        enqueued_at=now,
        deadline=now + budget,
        model_key=key,
    )


class TestQueueing:
    def test_depth_and_pending(self):
        sched = MicroBatchScheduler(max_batch=4)
        assert sched.depth() == 0
        sched.enqueue(_req(KEY_A, 0.0))
        sched.enqueue(_req(KEY_A, 0.0))
        sched.enqueue(_req(KEY_B, 0.0))
        assert sched.depth() == 3
        assert sched.pending(KEY_A) == 2
        assert sched.pending(KEY_B) == 1

    def test_max_depth_refusal_is_atomic_with_enqueue(self):
        sched = MicroBatchScheduler(max_batch=4)
        assert sched.enqueue(_req(KEY_A, 0.0), max_depth=2) == 1
        assert sched.enqueue(_req(KEY_A, 0.0), max_depth=2) == 2
        assert sched.enqueue(_req(KEY_A, 0.0), max_depth=2) == -1
        assert sched.depth() == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch=1, max_inflight=0)


class TestDuePolicy:
    def test_not_due_before_deadline(self):
        sched = MicroBatchScheduler(max_batch=4)
        sched.enqueue(_req(KEY_A, now=10.0, budget=0.5))
        assert sched.due_keys(now=10.4) == []
        assert sched.due_keys(now=10.5) == [KEY_A]

    def test_full_batch_is_due_immediately(self):
        sched = MicroBatchScheduler(max_batch=2)
        sched.enqueue(_req(KEY_A, now=0.0, budget=100.0))
        assert sched.due_keys(now=0.0) == []
        sched.enqueue(_req(KEY_A, now=0.0, budget=100.0))
        assert sched.due_keys(now=0.0) == [KEY_A]

    def test_force_makes_everything_due(self):
        sched = MicroBatchScheduler(max_batch=8)
        sched.enqueue(_req(KEY_A, now=0.0, budget=100.0))
        sched.enqueue(_req(KEY_B, now=0.0, budget=100.0))
        assert sched.due_keys(now=0.0) == []
        assert set(sched.due_keys(now=0.0, force=True)) == {KEY_A, KEY_B}

    def test_next_due_tracks_earliest_deadline(self):
        sched = MicroBatchScheduler(max_batch=4)
        assert sched.next_due(now=0.0) is None
        sched.enqueue(_req(KEY_A, now=0.0, budget=0.8))
        sched.enqueue(_req(KEY_B, now=0.0, budget=0.3))
        assert sched.next_due(now=0.0) == pytest.approx(0.3)
        assert sched.next_due(now=0.2) == pytest.approx(0.1)
        assert sched.next_due(now=0.5) == 0.0  # KEY_B already overdue
        assert sched.next_due(now=2.0) == 0.0

    def test_next_due_zero_for_full_batch(self):
        sched = MicroBatchScheduler(max_batch=1)
        sched.enqueue(_req(KEY_A, now=0.0, budget=100.0))
        assert sched.next_due(now=0.0) == 0.0


class TestFlushLifecycle:
    def test_take_reports_reason(self):
        sched = MicroBatchScheduler(max_batch=2, max_inflight=3)
        sched.enqueue(_req(KEY_A, now=0.0, budget=0.5))
        taken, reason = sched.take(KEY_A, now=1.0)
        assert len(taken) == 1
        assert reason == "deadline"
        sched.enqueue(_req(KEY_A, now=2.0, budget=9.0))
        sched.enqueue(_req(KEY_A, now=2.0, budget=9.0))
        taken, reason = sched.take(KEY_A, now=2.0)
        assert len(taken) == 2
        assert reason == "full"
        sched.enqueue(_req(KEY_A, now=3.0, budget=9.0))
        taken, reason = sched.take(KEY_A, now=3.0)
        assert reason == "drain"

    def test_take_coalesces_everything_queued(self):
        sched = MicroBatchScheduler(max_batch=2)
        for _ in range(5):
            sched.enqueue(_req(KEY_A, now=0.0))
        taken, _ = sched.take(KEY_A, now=0.0)
        assert len(taken) == 5
        assert sched.pending(KEY_A) == 0

    def test_take_rechecks_cap_under_its_own_lock(self):
        # due_keys() and take() are not atomic: a second poller whose
        # due_keys snapshot predates another take() must not start a
        # second flush past the cap.
        sched = MicroBatchScheduler(max_batch=1, max_inflight=1)
        sched.enqueue(_req(KEY_A, now=0.0))
        taken, _ = sched.take(KEY_A, now=0.0)
        assert len(taken) == 1
        sched.enqueue(_req(KEY_A, now=0.0))  # arrives while in flight
        stolen, reason = sched.take(KEY_A, now=99.0)
        assert stolen == []
        assert sched.inflight(KEY_A) == 1
        assert sched.pending(KEY_A) == 1
        sched.release(KEY_A)
        taken, _ = sched.take(KEY_A, now=99.0)
        assert len(taken) == 1

    def test_empty_take_does_not_go_inflight(self):
        sched = MicroBatchScheduler(max_batch=2)
        taken, _ = sched.take(KEY_A, now=0.0)
        assert taken == []
        assert sched.inflight(KEY_A) == 0

    def test_inflight_cap_suppresses_due(self):
        sched = MicroBatchScheduler(max_batch=1, max_inflight=1)
        sched.enqueue(_req(KEY_A, now=0.0))
        assert sched.due_keys(now=0.0) == [KEY_A]
        sched.take(KEY_A, now=0.0)
        assert sched.inflight(KEY_A) == 1
        # More work arrives while the flush runs: not due, not counted
        # toward next_due, until release().
        sched.enqueue(_req(KEY_A, now=0.0, budget=0.0))
        assert sched.due_keys(now=5.0) == []
        assert sched.next_due(now=5.0) is None
        sched.release(KEY_A)
        assert sched.due_keys(now=5.0) == [KEY_A]

    def test_drain_queued_pops_queued_but_not_inflight(self):
        sched = MicroBatchScheduler(max_batch=1, max_inflight=1)
        sched.enqueue(_req(KEY_A, now=0.0))
        taken, _ = sched.take(KEY_A, now=0.0)  # now in flight
        queued = [_req(KEY_A, now=0.0), _req(KEY_B, now=0.0)]
        for req in queued:
            sched.enqueue(req)
        drained = sched.drain_queued()
        assert sorted(id(r) for r in drained) == sorted(id(r) for r in queued)
        assert sched.depth() == 0
        assert sched.inflight(KEY_A) == 1  # untouched by the sweep
        assert sched.drain_queued() == []

    def test_release_bookkeeping(self):
        sched = MicroBatchScheduler(max_batch=1, max_inflight=2)
        sched.enqueue(_req(KEY_A, now=0.0))
        sched.take(KEY_A, now=0.0)
        sched.enqueue(_req(KEY_A, now=0.0))
        sched.take(KEY_A, now=0.0)
        assert sched.inflight(KEY_A) == 2
        assert sched.inflight() == 2
        sched.release(KEY_A)
        sched.release(KEY_A)
        assert sched.inflight(KEY_A) == 0

    def test_idle(self):
        sched = MicroBatchScheduler(max_batch=2)
        assert sched.idle()
        sched.enqueue(_req(KEY_A, now=0.0))
        assert not sched.idle()
        sched.take(KEY_A, now=0.0)
        assert not sched.idle()  # in flight
        sched.release(KEY_A)
        assert sched.idle()


class TestForceDrainEdgeCases:
    """due_keys(force=True) drain-path edges under the simulated clock.

    The drain/shutdown path treats every non-empty queue as due, but
    it must still skip queues with nothing in them (a model whose
    requests were all taken keeps an empty deque registered) and must
    still respect the per-model in-flight cap — forcing latency does
    not license exceeding concurrency.
    """

    def test_force_with_no_queues_at_all(self):
        sched = MicroBatchScheduler(max_batch=4)
        assert sched.due_keys(now=0.0, force=True) == []

    def test_force_skips_emptied_queues(self):
        sched = MicroBatchScheduler(max_batch=4)
        sched.enqueue(_req(KEY_A, now=0.0))
        sched.enqueue(_req(KEY_B, now=0.0))
        taken, _ = sched.take(KEY_A, now=0.0)
        assert len(taken) == 1
        sched.release(KEY_A)
        # KEY_A's deque still exists but is empty: force must not
        # resurrect it as due.
        assert sched.due_keys(now=0.0, force=True) == [KEY_B]

    def test_force_respects_inflight_cap(self):
        sched = MicroBatchScheduler(max_batch=1, max_inflight=1)
        sched.enqueue(_req(KEY_A, now=0.0))
        sched.take(KEY_A, now=0.0)  # model now at its cap
        sched.enqueue(_req(KEY_A, now=0.0, budget=0.0))
        # Force is about latency, not concurrency: the capped model
        # stays suppressed until the in-flight flush releases.
        assert sched.due_keys(now=100.0, force=True) == []
        sched.release(KEY_A)
        assert sched.due_keys(now=100.0, force=True) == [KEY_A]

    def test_force_with_every_model_inflight(self):
        sched = MicroBatchScheduler(max_batch=1, max_inflight=1)
        for key in (KEY_A, KEY_B):
            sched.enqueue(_req(key, now=0.0))
            sched.take(key, now=0.0)
            sched.enqueue(_req(key, now=0.0))
        assert sched.due_keys(now=50.0, force=True) == []
        assert sched.next_due(now=50.0) is None
        sched.release(KEY_B)
        assert sched.due_keys(now=50.0, force=True) == [KEY_B]

    def test_deadline_expiring_exactly_at_now_is_due(self):
        # The boundary is inclusive: deadline <= now means due, with
        # or without force — a request whose budget just reached zero
        # flushes on this poll, not the next one.
        sched = MicroBatchScheduler(max_batch=4)
        sched.enqueue(_req(KEY_A, now=10.0, budget=0.5))
        assert sched.due_keys(now=10.5 - 1e-9) == []
        assert sched.due_keys(now=10.5) == [KEY_A]
        assert sched.due_keys(now=10.5, force=True) == [KEY_A]
        assert sched.next_due(now=10.5) == 0.0

    def test_force_then_take_reports_drain_reason(self):
        sched = MicroBatchScheduler(max_batch=4)
        sched.enqueue(_req(KEY_A, now=0.0, budget=100.0))
        assert sched.due_keys(now=0.0) == []
        assert sched.due_keys(now=0.0, force=True) == [KEY_A]
        taken, reason = sched.take(KEY_A, now=0.0)
        assert len(taken) == 1
        assert reason == "drain"


class TestDepthCounter:
    """The O(1) depth counter vs the O(#models) scan it replaced.

    ``audit_depth()`` *raises* on drift, so asserting it after every
    mutation proves the counter tracks the queues exactly through
    enqueue / refusal / take / drain cycles.
    """

    def test_counter_tracks_queues_through_mixed_operations(self):
        sched = MicroBatchScheduler(max_batch=3)
        assert sched.audit_depth() == 0
        for _ in range(5):
            sched.enqueue(_req(KEY_A, 0.0))
            sched.audit_depth()
        for _ in range(4):
            sched.enqueue(_req(KEY_B, 0.0))
        assert sched.audit_depth() == 9
        taken, _ = sched.take(KEY_A, now=10.0)
        assert len(taken) == 5
        assert sched.audit_depth() == 4
        sched.release(KEY_A)
        sched.enqueue(_req(KEY_A, 1.0), max_depth=5)
        assert sched.audit_depth() == 5
        # A refusal at the bound must not drift the counter.
        assert sched.enqueue(_req(KEY_A, 1.0), max_depth=5) == -1
        assert sched.audit_depth() == 5
        assert len(sched.drain_queued()) == 5
        assert sched.audit_depth() == 0

    def test_counter_consistent_under_concurrent_mutation(self):
        import threading

        sched = MicroBatchScheduler(max_batch=4, max_inflight=8)
        keys = [KEY_A, KEY_B]

        def churn(key):
            for i in range(200):
                sched.enqueue(_req(key, float(i)), max_depth=64)
                if i % 3 == 0:
                    sched.take(key, now=1e9)
                    sched.release(key)

        threads = [threading.Thread(target=churn, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sched.audit_depth() == sched.depth()
        sched.drain_queued()
        assert sched.audit_depth() == 0

    def test_audit_raises_on_drift(self):
        sched = MicroBatchScheduler(max_batch=3)
        sched.enqueue(_req(KEY_A, 0.0))
        sched._depth = 5  # simulate a bookkeeping bug
        with pytest.raises(AssertionError, match="depth counter"):
            sched.audit_depth()
