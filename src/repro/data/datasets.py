"""SR datasets: the DIV2K-substitute training pool and four benchmark suites.

Each dataset is a list of :class:`SRPair` (LR input, HR target) in NCHW-
compatible ``(H, W, 3)`` float arrays in [0, 1]; LR is produced by the
antialiased bicubic downscale in :mod:`repro.data.resize`, identical to
the degradation the paper's experiments use.

The four evaluation suites mirror the character of the paper's sets:

* ``set5``   — 5 smooth images with blobs and soft edges;
* ``set14``  — 14 mixed-content images;
* ``b100``   — natural-texture images (default 20 for runtime; the real
  set has 100, pass ``n_images=100`` for the full-size suite);
* ``urban100`` — repeated geometric structure (default 20, same note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from scipy import ndimage

from . import synthetic
from .resize import downscale

#: Seed bases keep every suite disjoint from the training pool and from
#: each other.
_SUITE_SEEDS = {"div2k": 10_000, "set5": 20_000, "set14": 30_000,
                "b100": 40_000, "urban100": 50_000}

_SUITE_KINDS: Dict[str, List[str]] = {
    # DIV2K's value is diversity: cycle every generator so the training
    # distribution covers each benchmark suite's regime.
    "div2k": ["mixed", "urban", "stripes", "texture", "blobs",
              "checkerboard", "rectangles", "mixed", "urban", "gradient"],
    "set5": ["blobs", "gradient", "blobs", "stripes", "blobs"],
    "set14": ["mixed", "stripes", "blobs", "texture", "checkerboard",
              "rectangles", "mixed", "gradient", "stripes", "texture",
              "mixed", "blobs", "checkerboard", "mixed"],
    "b100": ["texture"],
    "urban100": ["urban"],
}

_SUITE_DEFAULT_SIZE = {"div2k": 25, "set5": 5, "set14": 14,
                       "b100": 20, "urban100": 20}

BENCHMARK_SUITES = ("set5", "set14", "b100", "urban100")


@dataclass(frozen=True)
class SRPair:
    """One evaluation/training item: the LR input and its HR ground truth."""

    lr: np.ndarray
    hr: np.ndarray
    name: str = ""

    @property
    def scale(self) -> int:
        return self.hr.shape[0] // self.lr.shape[0]


def _crop_to_multiple(img: np.ndarray, multiple: int) -> np.ndarray:
    h, w = img.shape[:2]
    return img[: h - h % multiple if h % multiple else h,
               : w - w % multiple if w % multiple else w]


def make_pair(hr: np.ndarray, scale: int, name: str = "",
              lr_multiple: int = 1, degradation: str = "bd") -> SRPair:
    """Derive the LR image from ``hr``.

    ``degradation`` selects the LR model:

    * ``"bicubic"`` — antialiased bicubic downscale (the paper's setting);
    * ``"bd"`` (default) — Gaussian blur (sigma = 0.4 * scale) followed by
      bicubic downscale, the standard "BD" degradation of the SR
      literature.  BD is the default here because the antialiased-bicubic
      LR leaves almost no learnable headroom for the scaled-down NumPy
      models (see DESIGN.md); the method comparison structure is identical
      under either degradation.

    ``lr_multiple`` additionally crops so the *LR* size is divisible by it
    (transformer models need LR sizes divisible by the window size).
    """
    hr = _crop_to_multiple(hr, scale * max(lr_multiple, 1))
    if degradation == "bd":
        sigma = 0.4 * scale
        source = np.clip(ndimage.gaussian_filter(hr, sigma=(sigma, sigma, 0)), 0, 1)
    elif degradation == "bicubic":
        source = hr
    else:
        raise KeyError(f"unknown degradation {degradation!r}")
    return SRPair(lr=downscale(source, scale), hr=hr, name=name)


def hr_images(suite: str, n_images: Optional[int] = None,
              size: Tuple[int, int] = (64, 64)) -> List[np.ndarray]:
    """The HR images of a suite (deterministic in suite name and index)."""
    if suite not in _SUITE_SEEDS:
        raise KeyError(f"unknown suite {suite!r}; choose from {sorted(_SUITE_SEEDS)}")
    kinds = _SUITE_KINDS[suite]
    count = n_images if n_images is not None else _SUITE_DEFAULT_SIZE[suite]
    base = _SUITE_SEEDS[suite]
    h, w = size
    return [synthetic.generate(kinds[i % len(kinds)], base + i, h, w)
            for i in range(count)]


def benchmark_suite(suite: str, scale: int = 2, n_images: Optional[int] = None,
                    size: Tuple[int, int] = (64, 64),
                    lr_multiple: int = 1, degradation: str = "bd") -> List[SRPair]:
    """LR/HR pairs for one of the four evaluation suites (or ``div2k``)."""
    images = hr_images(suite, n_images, size)
    return [make_pair(img, scale, name=f"{suite}_{i:03d}", lr_multiple=lr_multiple,
                      degradation=degradation)
            for i, img in enumerate(images)]


def training_pool(scale: int = 2, n_images: int = 25,
                  size: Tuple[int, int] = (96, 96),
                  lr_multiple: int = 1, degradation: str = "bd") -> List[SRPair]:
    """The DIV2K-substitute training set."""
    return benchmark_suite("div2k", scale, n_images, size, lr_multiple, degradation)
