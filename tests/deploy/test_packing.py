"""Unit and property tests for the bit-packing codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy import pack_signs, packed_words, popcount_u64, unpack_signs
from repro.deploy.packing import WORD_BITS


class TestPackedWords:
    def test_exact_multiples(self):
        assert packed_words(0) == 0
        assert packed_words(64) == 1
        assert packed_words(128) == 2

    def test_rounding_up(self):
        assert packed_words(1) == 1
        assert packed_words(65) == 2
        assert packed_words(127) == 2

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            packed_words(-1)


class TestPackSigns:
    def test_known_pattern(self):
        # +1 at positions 0 and 2 -> bits 0b101 = 5.
        signs = np.array([1.0, -1.0, 1.0])
        packed = pack_signs(signs)
        assert packed.shape == (1,)
        assert packed[0] == np.uint64(5)

    def test_bit_position_convention(self):
        # A lone +1 at position i sets bit i of word i // 64.
        for i in (0, 5, 63, 64, 100):
            signs = -np.ones(130)
            signs[i] = 1.0
            packed = pack_signs(signs)
            word, bit = divmod(i, WORD_BITS)
            assert packed[word] == np.uint64(1) << np.uint64(bit)
            others = [w for j, w in enumerate(packed) if j != word]
            assert all(w == 0 for w in others)

    def test_zero_counts_as_positive(self):
        packed = pack_signs(np.array([0.0, -1.0]))
        assert packed[0] == np.uint64(1)

    def test_leading_axes_preserved(self):
        signs = np.where(np.random.default_rng(0).random((2, 3, 70)) > 0.5, 1.0, -1.0)
        packed = pack_signs(signs)
        assert packed.shape == (2, 3, 2)

    def test_scalar_input_raises(self):
        with pytest.raises(ValueError):
            pack_signs(np.float64(1.0))

    def test_unpack_word_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            unpack_signs(np.zeros((1, 2), dtype=np.uint64), 64)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers(0, 2**31))
    def test_roundtrip(self, k, seed):
        rng = np.random.default_rng(seed)
        signs = np.where(rng.random((3, k)) > 0.5, 1.0, -1.0)
        recovered = unpack_signs(pack_signs(signs), k)
        np.testing.assert_array_equal(recovered, signs)


class TestPopcount:
    def test_known_values(self):
        values = np.array([0, 1, 3, 0xFF, 2**63, 2**64 - 1], dtype=np.uint64)
        expected = [0, 1, 2, 8, 1, 64]
        np.testing.assert_array_equal(popcount_u64(values), expected)

    def test_shape_preserved(self):
        words = np.zeros((2, 3, 4), dtype=np.uint64)
        assert popcount_u64(words).shape == (2, 3, 4)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_python_bin(self, value):
        arr = np.array([value], dtype=np.uint64)
        assert popcount_u64(arr)[0] == bin(value).count("1")
