"""Geometric self-ensemble (the "+" models of the EDSR lineage)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..grad import Tensor, no_grad
from ..nn import Module
from ..train import super_resolve
from .parallel import parallel_map

Transform = Tuple[Callable[[np.ndarray], np.ndarray],
                  Callable[[np.ndarray], np.ndarray]]


def _rot(k: int) -> Transform:
    return (lambda a, k=k: np.rot90(a, k, axes=(0, 1)),
            lambda a, k=k: np.rot90(a, -k, axes=(0, 1)))


def _rot_flip(k: int) -> Transform:
    return (lambda a, k=k: np.rot90(a[:, ::-1], k, axes=(0, 1)),
            lambda a, k=k: np.rot90(a, -k, axes=(0, 1))[:, ::-1])


#: The 8 dihedral (rotation x mirror) transform/inverse pairs.
DIHEDRAL_TRANSFORMS: List[Transform] = (
    [_rot(k) for k in range(4)] + [_rot_flip(k) for k in range(4)])


def self_ensemble(model: Module, lr_image: np.ndarray,
                  n_transforms: int = 8, batched: bool = True,
                  n_threads: Optional[int] = None) -> np.ndarray:
    """Super-resolve ``lr_image`` averaged over dihedral transforms.

    Parameters
    ----------
    model:
        Any SR model accepted by :func:`repro.train.super_resolve`.
    lr_image:
        ``(H, W, 3)`` image in [0, 1].
    n_transforms:
        How many of the 8 dihedral transforms to use (1 disables the
        ensemble; 4 is rotations only; 8 is the full "+'' protocol).
    batched:
        Stack transform variants of equal shape — the unrotated and the
        90/270-degree views, two groups of up to 4 — into single NCHW
        forwards dispatched over the inference thread pool, instead of
        eight separate model calls.  Accumulation happens in transform
        order on the calling thread, so the result matches the
        sequential path (``batched=False``, the retained seed loop).
    n_threads:
        Worker threads for the shape groups (default: the global
        setting, see :func:`repro.infer.parallel.get_num_threads`).

    Note: models with a square-window constraint (SwinIR/HAT) accept the
    rotated inputs as long as H and W are both window multiples.
    """
    if not 1 <= n_transforms <= 8:
        raise ValueError(f"n_transforms must be in [1, 8], got {n_transforms}")
    if not batched:
        accumulated: Optional[np.ndarray] = None
        for forward_t, inverse_t in DIHEDRAL_TRANSFORMS[:n_transforms]:
            sr = super_resolve(model, np.ascontiguousarray(forward_t(lr_image)))
            sr = inverse_t(sr)
            accumulated = sr if accumulated is None else accumulated + sr
        return np.clip(accumulated / n_transforms, 0.0, 1.0)

    variants = [np.ascontiguousarray(forward_t(lr_image))
                for forward_t, _ in DIHEDRAL_TRANSFORMS[:n_transforms]]
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for i, v in enumerate(variants):
        groups.setdefault(v.shape, []).append(i)

    def run_group(indices: List[int]) -> np.ndarray:
        batch = np.stack([variants[i].transpose(2, 0, 1) for i in indices])
        return np.asarray(model(Tensor(batch)).data)

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            outputs = parallel_map(run_group, list(groups.values()), n_threads)
    finally:
        model.train(was_training)

    # Undo transforms and accumulate in transform order — identical
    # float summation order to the sequential loop.
    sr_by_index: Dict[int, np.ndarray] = {}
    for indices, out in zip(groups.values(), outputs):
        for j, i in enumerate(indices):
            sr = np.clip(out[j].transpose(1, 2, 0), 0.0, 1.0)
            sr_by_index[i] = DIHEDRAL_TRANSFORMS[i][1](sr)
    accumulated = sr_by_index[0]
    for i in range(1, n_transforms):
        accumulated = accumulated + sr_by_index[i]
    return np.clip(accumulated / n_transforms, 0.0, 1.0)
