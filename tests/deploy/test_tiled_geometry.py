"""TiledInference geometry edge cases.

A 1x1-kernel packed model is strictly local (no padding, no halo), so
overlap-and-stitch must reproduce the untiled forward **bit-identically**
for every tile geometry: averaged overlap pixels agree exactly because
``(x + x) / 2 == x`` in IEEE float, and trims only discard duplicates.
"""

import numpy as np
import pytest

from repro import grad as G
from repro.binarize import SCALESBinaryConv2d
from repro.binarize.baselines import E2FIFBinaryConv2d
from repro.deploy import TiledInference, compile_model
from repro.grad import Tensor, no_grad
from repro.infer import plan_tiles
from repro.nn import Sequential, init


@pytest.fixture(autouse=True)
def _float32():
    with G.default_dtype("float32"):
        yield


def _forward(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _local_model():
    """Compiled packed model with zero receptive halo (1x1 convs)."""
    init.seed(50)
    return compile_model(Sequential(
        SCALESBinaryConv2d(3, 3, 1, use_spatial=False, use_channel=False),
        E2FIFBinaryConv2d(3, 3, 1)))


class TestTileCoversImage:
    """tile >= image must bypass tiling and hit the exact model output."""

    @pytest.mark.parametrize("shape", [(10, 10), (16, 16), (16, 9), (1, 1)])
    def test_bit_identical_bypass(self, shape):
        model = _local_model()
        tiled = TiledInference(model, tile=16, overlap=4)
        h, w = shape
        x = np.random.default_rng(h * 100 + w).normal(
            size=(1, 3, h, w)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))

    def test_bypass_even_with_halo_model(self):
        # 3x3 convs have a halo, but a single tile sees the whole image.
        init.seed(51)
        model = compile_model(Sequential(E2FIFBinaryConv2d(3, 3, 3)))
        tiled = TiledInference(model, tile=32, overlap=8)
        x = np.random.default_rng(9).normal(size=(1, 3, 20, 31)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))


class TestZeroOverlap:
    @pytest.mark.parametrize("shape", [(16, 16), (17, 23), (8, 40)])
    @pytest.mark.parametrize("batched", [True, False])
    def test_bit_identical_stitching(self, shape, batched):
        model = _local_model()
        tiled = TiledInference(model, tile=8, overlap=0, batch_size=3,
                               batched=batched)
        h, w = shape
        x = np.random.default_rng(h + w).normal(
            size=(2, 3, h, w)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))

    def test_zero_overlap_plan_has_no_trim(self):
        plan = plan_tiles(20, 20, 8, overlap=0)
        assert plan.trim == 0
        assert all(s.top == s.left == s.bottom == s.right == 0
                   for s in plan.tiles)


class TestOnePixelRemainder:
    """Inputs one pixel past a tile multiple: the flush-right final tile
    contributes a single fresh row/column."""

    @pytest.mark.parametrize("shape", [(17, 16), (16, 17), (17, 17), (9, 25)])
    def test_bit_identical_stitching(self, shape):
        model = _local_model()
        tiled = TiledInference(model, tile=8, overlap=0, batch_size=4)
        h, w = shape
        x = np.random.default_rng(h * 7 + w).normal(
            size=(1, 3, h, w)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))

    def test_remainder_tile_geometry(self):
        plan = plan_tiles(17, 17, 8, overlap=0)
        # Flush-right start at 9: the final tile re-covers 7 pixels and
        # contributes exactly one fresh one.
        ys = sorted({s.y0 for s in plan.tiles})
        assert ys == [0, 8, 9]
        covered = np.zeros(17, dtype=int)
        for y0 in ys:
            covered[y0:y0 + plan.tile_h] += 1
        assert (covered >= 1).all()

    def test_one_pixel_wide_input_axis(self):
        # W=1 clamps tile_w to 1; every tile is a 1-pixel-wide strip.
        model = _local_model()
        tiled = TiledInference(model, tile=8, overlap=0)
        x = np.random.default_rng(13).normal(size=(1, 3, 20, 1)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))


class TestOverlapAveragingIsExact:
    @pytest.mark.parametrize("overlap", [1, 2, 4, 6])
    def test_bit_identical_with_overlap(self, overlap):
        # Local model: overlapped pixels average identical values, which
        # is exact in IEEE arithmetic — stitching stays bit-identical.
        model = _local_model()
        tiled = TiledInference(model, tile=8, overlap=overlap, batch_size=2)
        x = np.random.default_rng(overlap).normal(
            size=(1, 3, 21, 19)).astype(np.float32)
        np.testing.assert_array_equal(_forward(tiled, x), _forward(model, x))

    def test_batched_matches_sequential_exactly_for_halo_model(self):
        # With a real 3x3 halo the tiled result differs from untiled at
        # seams, but batched and sequential execution must still agree
        # bit-for-bit.
        init.seed(52)
        model = compile_model(Sequential(E2FIFBinaryConv2d(3, 3, 3),
                                         E2FIFBinaryConv2d(3, 3, 3)))
        x = np.random.default_rng(14).normal(size=(1, 3, 30, 29)).astype(np.float32)
        seq = TiledInference(model, tile=12, overlap=6, batched=False)
        bat = TiledInference(model, tile=12, overlap=6, batch_size=3,
                             batched=True)
        np.testing.assert_array_equal(_forward(bat, x), _forward(seq, x))
