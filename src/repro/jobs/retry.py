"""Retry policy: exponential backoff with deterministic jitter.

Transient failures (a flaky NFS read, an OOM-killed worker, a chaos
fault) get retried with exponentially growing, jittered delays; an
item that keeps failing past ``max_attempts`` is *quarantined* — set
aside with its error so one poison input degrades the run instead of
wedging it.

Jitter is deterministic: it is derived by hashing ``(seed, item,
attempt)``, not drawn from a live RNG, so a resumed run backs off
exactly like the run it replaced and the kill-and-resume soak test is
reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy", "hash_unit"]


def hash_unit(*parts) -> float:
    """Deterministic uniform float in ``[0, 1)`` from hashable parts.

    The shared randomness primitive of the jobs layer: retry jitter and
    every chaos decision key off it, so a (seed, item, attempt) triple
    always resolves the same way, in any process, on any run.
    """
    digest = hashlib.sha256(
        "|".join(str(part) for part in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter, attempt cap, quarantine decision.

    Parameters
    ----------
    max_attempts:
        Total tries per item (first attempt included).  An item failing
        its ``max_attempts``-th attempt is quarantined.
    base_delay_s / max_delay_s:
        Attempt ``k`` (0-based) that fails waits
        ``min(base_delay_s * 2**k, max_delay_s)`` scaled by jitter
        before attempt ``k + 1``.
    jitter:
        Fraction of the delay randomized away: the actual delay is
        uniform in ``[delay * (1 - jitter), delay]``.  ``0`` disables
        jitter; ``1`` allows immediate retries.
    seed:
        Seeds the deterministic jitter hash.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.25
    max_delay_s: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def exhausted(self, attempt: int) -> bool:
        """Was ``attempt`` (0-based) the item's last allowed try?"""
        return attempt + 1 >= self.max_attempts

    def delay_s(self, item: str, attempt: int) -> float:
        """Backoff before retrying after a failed ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * (2.0 ** attempt), self.max_delay_s)
        if self.jitter == 0.0:
            return delay
        u = hash_unit(self.seed, "retry", item, attempt)
        return delay * (1.0 - self.jitter * u)

    @classmethod
    def from_dict(cls, raw) -> "RetryPolicy":
        """Build from a manifest's ``retry`` block (unknown keys fail)."""
        if raw is None:
            return cls()
        valid = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - valid
        if unknown:
            raise ValueError(
                f"unknown retry option(s) {sorted(unknown)}; valid: "
                f"{sorted(valid)}")
        return cls(**raw)
