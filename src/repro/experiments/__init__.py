"""Experiment drivers regenerating every table and figure of the paper."""

from . import cache, figures, tables
from .presets import FULL, QUICK, ExperimentPreset, get_preset
from .registry import DESCRIPTIONS, EXPERIMENTS, run

__all__ = [
    "cache", "figures", "tables",
    "FULL", "QUICK", "ExperimentPreset", "get_preset",
    "DESCRIPTIONS", "EXPERIMENTS", "run",
]
