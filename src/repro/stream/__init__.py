"""Video super-resolution streaming.

Turns the single-image serving stack into a temporal workload:
ordered per-stream sessions over ``ServeSession``/``ModelServer``,
cross-frame tile reuse via content-hashed tile deltas, and
frame-deadline scheduling (``drop-late`` vs ``best-effort``) on top
of the deadline-aware micro-batcher.  Entry points:

* :meth:`repro.api.Engine.stream` — open a stream over an engine's
  exported artifact.
* :class:`StreamSession` — the session itself, for callers holding a
  serving surface already.
* :func:`synthetic_clip` — deterministic clips with a controllable
  static-region fraction, for tests and the sustained-FPS bench.

The whole subsystem is gated on bit-parity: a streamed clip with
tile reuse enabled is frame-for-frame bit-identical to one-shot
``Engine.infer``.
"""

from .deadline import BEST_EFFORT, DROP_LATE, POLICIES, DeadlinePolicy
from .delta import FrameDelta, plan_frame_delta
from .results import FrameDropped, FrameResult, StreamError
from .session import FrameTicket, StreamConfig, StreamSession
from .video import dirty_fraction, synthetic_clip

__all__ = [
    "BEST_EFFORT",
    "DROP_LATE",
    "POLICIES",
    "DeadlinePolicy",
    "FrameDelta",
    "FrameDropped",
    "FrameResult",
    "FrameTicket",
    "StreamConfig",
    "StreamError",
    "StreamSession",
    "dirty_fraction",
    "plan_frame_delta",
    "synthetic_clip",
]
