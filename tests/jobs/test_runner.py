"""JobRunner end-to-end (inline mode) + manifest loading + the CLI.

Inline mode (``workers=0``) runs the full coordinator lifecycle —
plan, lease, collect, retry, quarantine, resume — sequentially in this
process, so every assertion here is deterministic.  The
multi-process pool and the SIGKILL recovery path are exercised by
``test_soak.py``.
"""

import json

import numpy as np
import pytest

from repro import grad as G
from repro.api import Engine, EngineConfig
from repro.jobs import (
    ChaosConfig,
    JobRunner,
    JobsError,
    load_manifest,
    format_status,
    replay_journal,
    audit_journal,
)
from repro.jobs.__main__ import main

from .conftest import N_FRAMES, ROUTES

N_ITEMS = N_FRAMES * len(ROUTES)


class TestManifest:
    def test_loads_and_expands_cross_product(self, make_manifest):
        manifest = load_manifest(make_manifest())
        assert manifest.models == list(ROUTES)  # requested order kept
        assert len(manifest.inputs) == N_FRAMES
        items = manifest.items()
        assert len(items) == N_ITEMS
        assert len({item.item_id for item in items}) == N_ITEMS
        for item in items:
            flat = item.model.replace("/", "_")
            assert f"/out/{flat}/" in item.output
            assert item.shard.startswith(item.model + "#")
        # shard_size=2 over 5 inputs -> shards #0..#2 per model
        assert {item.shard.rpartition("#")[2] for item in items} == \
            {"0", "1", "2"}

    def test_models_default_to_every_artifact(self, make_manifest):
        manifest = load_manifest(make_manifest(models=None))
        assert manifest.models == sorted(ROUTES)

    def test_item_identity_tracks_input_content(self, zoo, tmp_path):
        frame = tmp_path / "frame.npy"
        np.save(frame, np.zeros((4, 4, 3), np.float32))
        spec = {"artifacts": str(zoo), "inputs": [str(frame)],
                "output_dir": str(tmp_path / "out")}
        path = tmp_path / "m.json"
        path.write_text(json.dumps(spec))
        first = load_manifest(path).items()[0]
        np.save(frame, np.ones((4, 4, 3), np.float32))
        second = load_manifest(path).items()[0]
        assert first.item_id != second.item_id
        assert first.output != second.output

    def test_validation_refuses_bad_manifests(self, make_manifest,
                                              zoo, tmp_path):
        cases = [
            (dict(typo_field=1), "unknown field"),
            (dict(output_dir=None), "missing field 'output_dir'"),
            (dict(inputs=[str(tmp_path / "nothing_*.npy")]),
             "matched no files"),
            (dict(models=["rdn/scales/x2"]), "no artifact for"),
            (dict(workers=-1), "workers must be >= 0"),
            (dict(retry={"attempts": 2}), "bad retry block"),
            (dict(shard_size=0), "shard_size must be >= 1"),
        ]
        for overrides, match in cases:
            path = make_manifest(**overrides)
            with pytest.raises(JobsError, match=match):
                load_manifest(path)
        (tmp_path / "notjson.json").write_text("{nope")
        with pytest.raises(JobsError, match="not valid JSON"):
            load_manifest(tmp_path / "notjson.json")
        with pytest.raises(JobsError, match="not found"):
            load_manifest(tmp_path / "missing.json")

    def test_manifest_sha_tracks_bytes(self, make_manifest):
        a = load_manifest(make_manifest("a.json"))
        b = load_manifest(make_manifest("b.json", shard_size=3))
        assert a.manifest_sha != b.manifest_sha


class TestInlineRun:
    def test_clean_run_then_resume_skips_everything(self, make_manifest):
        manifest = load_manifest(make_manifest())
        runner = JobRunner(manifest, fsync=False)
        report = runner.run()
        assert report.complete
        assert (report.done, report.skipped, report.resumed) == \
            (N_ITEMS, 0, False)
        for item in manifest.items():
            assert np.load(item.output).ndim == 3
        state = replay_journal(runner.journal_path)
        assert state.complete
        assert audit_journal(state) == []
        # Same command again: everything is skipped by output hash,
        # nothing is re-run, and the audit still shows zero redone.
        again = JobRunner(manifest, fsync=False).run()
        assert again.complete and again.resumed
        assert (again.done, again.skipped) == (0, N_ITEMS)
        status = format_status(runner.journal_path)
        assert "run: complete" in status
        assert "resumed x1" in status
        assert "audit: clean" in status

    def test_outputs_bit_identical_to_direct_engine(self, make_manifest):
        manifest = load_manifest(make_manifest())
        JobRunner(manifest, fsync=False).run()
        with G.default_dtype("float32"):
            for item in manifest.items()[:2]:
                engine = Engine.from_artifact(
                    item.artifact,
                    EngineConfig(dtype="float32", n_threads=1,
                                 batch_size=manifest.batch_size))
                expected = engine.infer(np.load(item.input)).unwrap()
                np.testing.assert_array_equal(np.load(item.output), expected)

    def test_corrupted_output_is_invalidated_and_redone(self, make_manifest):
        manifest = load_manifest(make_manifest())
        runner = JobRunner(manifest, fsync=False)
        runner.run()
        victim, bystander = manifest.items()[0], manifest.items()[1]
        original = victim.output and open(victim.output, "rb").read()
        np.save(victim.output, np.zeros((1, 1, 3), np.float32))
        report = JobRunner(manifest, fsync=False).run()
        assert report.complete
        assert (report.invalidated, report.done) == (1, 1)
        assert report.skipped == N_ITEMS - 1
        # The redone output is byte-identical to the first run's.
        assert open(victim.output, "rb").read() == original
        assert np.load(bystander.output).ndim == 3
        # Recovery, not duplication: the audit stays clean.
        assert audit_journal(replay_journal(runner.journal_path)) == []

    def test_missing_output_is_redone(self, make_manifest):
        import os
        manifest = load_manifest(make_manifest())
        JobRunner(manifest, fsync=False).run()
        victim = manifest.items()[3]
        os.unlink(victim.output)
        report = JobRunner(manifest, fsync=False).run()
        assert report.complete
        assert (report.invalidated, report.done) == (1, 1)
        assert np.load(victim.output).ndim == 3

    def test_edited_manifest_is_refused_without_fresh(self, make_manifest):
        first = load_manifest(make_manifest())
        journal = first.output_dir / "journal.jsonl"
        JobRunner(first, journal_path=journal, fsync=False).run()
        edited = load_manifest(make_manifest(batch_size=2))
        runner = JobRunner(edited, journal_path=journal, fsync=False)
        with pytest.raises(JobsError, match="different manifest"):
            runner.run()
        report = runner.run(fresh=True)  # explicit opt-out starts over
        assert report.complete and not report.resumed
        assert report.done == N_ITEMS

    def test_flaky_items_retry_with_backoff_then_succeed(self, make_manifest):
        manifest = load_manifest(make_manifest())
        chaos = ChaosConfig(seed=3, flaky_rate=1.0, flaky_attempts=1)
        runner = JobRunner(manifest, chaos=chaos, fsync=False)
        report = runner.run()
        assert report.complete
        assert report.done == N_ITEMS
        assert report.failures == N_ITEMS  # one journaled retry each
        state = replay_journal(runner.journal_path)
        assert all(e.failures == 1 for e in state.items.values())
        assert audit_journal(state) == []

    def test_poison_is_quarantined_not_wedged(self, make_manifest):
        manifest = load_manifest(make_manifest())
        chaos = ChaosConfig(seed=3, poison_rate=1.0)
        runner = JobRunner(manifest, chaos=chaos, fsync=False)
        report = runner.run()
        # Poison fails fatally on first attempt: no retry budget burned.
        assert report.complete
        assert (report.done, report.quarantined) == (0, N_ITEMS)
        assert report.failures == 0
        status = format_status(runner.journal_path)
        assert "run: complete" in status
        assert f"{N_ITEMS} quarantined" in status
        # Quarantine is sticky across resumes.
        again = JobRunner(manifest, chaos=chaos, fsync=False).run()
        assert again.complete and again.quarantined == N_ITEMS
        assert again.done == 0

    def test_exhausted_retry_budget_quarantines(self, make_manifest):
        manifest = load_manifest(
            make_manifest(retry={"max_attempts": 2, "base_delay_s": 0.001}))
        chaos = ChaosConfig(seed=3, flaky_rate=1.0, flaky_attempts=99)
        report = JobRunner(manifest, chaos=chaos, fsync=False).run()
        assert report.complete
        assert report.quarantined == N_ITEMS
        assert report.failures == N_ITEMS  # attempt 0 retried once each

    def test_mixed_poison_quarantines_exactly_the_poisoned_set(
            self, make_manifest):
        manifest = load_manifest(make_manifest())
        chaos = ChaosConfig(seed=11, poison_rate=0.4)
        poisoned = {item.item_id for item in manifest.items()
                    if chaos.is_poison(item.item_id)}
        assert 0 < len(poisoned) < N_ITEMS  # seed chosen to mix
        runner = JobRunner(manifest, chaos=chaos, fsync=False)
        report = runner.run()
        assert report.complete
        assert report.quarantined == len(poisoned)
        assert report.done == N_ITEMS - len(poisoned)
        state = replay_journal(runner.journal_path)
        assert {i for i, e in state.items.items()
                if e.status == "quarantined"} == poisoned


class TestCLI:
    def test_run_then_status(self, make_manifest, capsys):
        path = make_manifest()
        rc = main(["run", str(path), "--workers", "0", "--no-fsync"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"{N_ITEMS} done" in out
        journal = out.splitlines()[-1].split("journal: ")[1]
        rc = main(["status", journal])
        out = capsys.readouterr().out
        assert rc == 0
        assert "run: complete" in out
        assert "audit: clean" in out
        for route in ROUTES:
            assert f"{route} (all)" in out

    def test_fresh_and_resume_conflict(self, make_manifest, capsys):
        rc = main(["run", str(make_manifest()), "--fresh", "--resume"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_jobs_errors_exit_2(self, tmp_path, capsys):
        rc = main(["run", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_output_dir_override(self, make_manifest, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        rc = main(["run", str(make_manifest()), "--workers", "0",
                   "--no-fsync", "--output-dir", str(other)])
        assert rc == 0
        assert (other / "journal.jsonl").is_file()
        assert any(other.rglob("*.npy"))
