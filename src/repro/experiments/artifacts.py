"""Render figure reproductions to image files (PNG sheets).

The benchmark suite asserts each figure's *property*; this module
produces the figures themselves so they can be compared with the paper
visually:

* Fig. 1 — one sheet per method with a grid of binarized body feature
  maps (channel slices);
* Fig. 9 — per image, an HR | bicubic | E2FIF | SCALES comparison row.

Everything is written with the dependency-free PNG writer in
:mod:`repro.viz`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .. import grad as G
from ..data import benchmark_suite, hr_images, make_pair
from ..data.resize import upscale
from ..train import super_resolve
from ..viz import image_grid, labeled_row, write_png
from . import cache
from .figures import fig1_binary_feature_maps
from .presets import ExperimentPreset, get_preset

PathLike = Union[str, Path]


def save_fig1_sheets(out_dir: PathLike, max_channels: int = 16,
                     preset: Optional[ExperimentPreset] = None) -> List[Path]:
    """Write the Fig. 1 feature-map sheets; returns the files created."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = fig1_binary_feature_maps(preset=preset)
    written: List[Path] = []
    for method, key in (("scales", "scales_maps"), ("e2fif", "e2fif_maps")):
        maps: Dict[str, np.ndarray] = data[key]
        panels = []
        for arr in maps.values():
            fmap = arr[0] if arr.ndim == 4 else arr
            for channel in fmap[:max_channels]:
                # Binary values in {-1, +1}: map to {0, 1} for display.
                panels.append((channel + 1.0) / 2.0)
        sheet = image_grid(panels, n_cols=max_channels, margin=1,
                           background=0.5)
        path = out_dir / f"fig1_feature_maps_{method}.png"
        write_png(path, sheet)
        written.append(path)
    return written


def save_fig9_rows(out_dir: PathLike, scale: int = 4, n_images: int = 4,
                   preset: Optional[ExperimentPreset] = None) -> List[Path]:
    """Write per-image HR | bicubic | E2FIF | SCALES comparison rows."""
    preset = preset or get_preset()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    pairs = benchmark_suite("urban100", scale, n_images, (64, 64))
    written: List[Path] = []
    with G.default_dtype("float32"):
        scales_model = cache.get_trained_model("srresnet", "scales", scale,
                                               preset, light_tail=True,
                                               head_kernel=3)
        e2fif_model = cache.get_trained_model("srresnet", "e2fif", scale,
                                              preset, light_tail=True,
                                              head_kernel=3)
        for pair in pairs:
            panels = [
                pair.hr,
                np.clip(upscale(pair.lr, scale), 0, 1),
                super_resolve(e2fif_model, pair.lr),
                super_resolve(scales_model, pair.lr),
            ]
            row = labeled_row(panels,
                              labels=["HR", "bicubic", "E2FIF", "SCALES"])
            path = out_dir / f"fig9_{pair.name}.png"
            write_png(path, row)
            written.append(path)
    return written


def save_dataset_previews(out_dir: PathLike, n_per_suite: int = 3,
                          size: int = 96) -> List[Path]:
    """Write sample HR images of every suite (data-substitute preview)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for suite in ("set5", "set14", "b100", "urban100", "div2k"):
        images = hr_images(suite, n_per_suite, (size, size))
        sheet = image_grid(images, n_cols=n_per_suite, margin=2)
        path = out_dir / f"dataset_{suite}.png"
        write_png(path, sheet)
        written.append(path)
    return written


def save_degradation_preview(out_dir: PathLike, scale: int = 4,
                             size: int = 96) -> Path:
    """HR | LR (upscaled back) pair showing the BD degradation."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    hr = hr_images("urban100", 1, (size, size))[0]
    pair = make_pair(hr, scale)
    row = labeled_row([pair.hr, np.clip(upscale(pair.lr, scale), 0, 1)],
                      labels=["HR", f"BD-degraded LR (x{scale}, bicubic up)"])
    path = out_dir / f"degradation_x{scale}.png"
    write_png(path, row)
    return path
