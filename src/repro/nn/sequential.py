"""Container modules."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..grad import Tensor
from .module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for idx, module in enumerate(modules):
            name = str(idx)
            self.register_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """List of sub-modules (iteration order = insertion order)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._order = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise NotImplementedError("ModuleList is a container; call its items")
