"""HAT: Hybrid Attention Transformer (Chen et al., 2023) — Table IV.

Reproduced structure: residual hybrid attention groups (RHAG) of HAB
blocks.  Each HAB runs window self-attention *in parallel with* a
convolutional channel-attention block (CAB), exactly the hybrid that
distinguishes HAT from SwinIR; a trailing conv closes each group.

Simplification (documented in DESIGN.md): the overlapping cross-attention
block (OCAB) at the end of each group is replaced by the plain conv —
OCAB refines window boundaries but does not interact with binarization,
which only touches the linear/conv layers that both variants share.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .. import grad as G
from ..grad import Tensor
from ..nn import (
    Conv2d,
    GELU,
    LayerNorm,
    Mlp,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    WindowAttention,
    default_linear_factory,
    window_partition,
    window_reverse,
)
from .common import (CALayer, ConvFactory, Upsampler, bicubic_residual,
                     fp_conv_factory, zero_init_last_conv)
from .swinir import image_to_tokens, tokens_to_image


class CAB(Module):
    """Channel attention block: conv -> GELU -> conv -> channel attention."""

    def __init__(self, dim: int, compress: int = 2, reduction: int = 4,
                 conv_factory: ConvFactory = fp_conv_factory):
        super().__init__()
        hidden = max(dim // compress, 1)
        self.conv1 = conv_factory(dim, hidden, 3)
        self.act = GELU()
        self.conv2 = conv_factory(hidden, dim, 3)
        self.attention = CALayer(dim, reduction)

    def forward(self, x: Tensor) -> Tensor:
        return self.attention(self.conv2(self.act(self.conv1(x))))


class HAB(Module):
    """Hybrid attention block: (shifted) window MSA + weighted parallel CAB."""

    def __init__(self, dim: int, num_heads: int, window_size: int,
                 shift_size: int = 0, mlp_ratio: float = 2.0,
                 cab_weight: float = 0.01,
                 linear_factory=default_linear_factory,
                 conv_factory: ConvFactory = fp_conv_factory):
        super().__init__()
        self.dim = dim
        self.window_size = window_size
        self.shift_size = shift_size
        self.norm1 = LayerNorm(dim)
        self.attn = WindowAttention(dim, window_size, num_heads, linear_factory)
        self.cab = CAB(dim, conv_factory=conv_factory)
        self.cab_weight = Parameter(np.array([cab_weight]))
        self.norm2 = LayerNorm(dim)
        self.mlp = Mlp(dim, int(dim * mlp_ratio), linear_factory)
        self._mask_cache: dict = {}

    def _mask_for(self, h: int, w: int) -> Optional[np.ndarray]:
        if self.shift_size == 0:
            return None
        key = (h, w)
        if key not in self._mask_cache:
            from ..nn import shifted_window_attention_mask
            self._mask_cache[key] = shifted_window_attention_mask(
                h, w, self.window_size, self.shift_size)
        return self._mask_cache[key]

    def forward(self, tokens: Tensor, hw: Tuple[int, int]) -> Tensor:
        h, w = hw
        b, n, c = tokens.shape
        shortcut = tokens
        x = self.norm1(tokens)
        # Parallel convolutional channel-attention branch on the image view.
        cab_out, _ = image_to_tokens(self.cab(tokens_to_image(x, hw)))
        # Window attention branch.
        x_img = G.reshape(x, (b, h, w, c))
        if self.shift_size:
            x_img = G.roll(x_img, (-self.shift_size, -self.shift_size), axis=(1, 2))
        windows = window_partition(x_img, self.window_size)
        attn_out = self.attn(windows, mask=self._mask_for(h, w))
        x_img = window_reverse(attn_out, self.window_size, h, w)
        if self.shift_size:
            x_img = G.roll(x_img, (self.shift_size, self.shift_size), axis=(1, 2))
        attn_tokens = G.reshape(x_img, (b, n, c))
        x = shortcut + attn_tokens + self.cab_weight * cab_out
        return x + self.mlp(self.norm2(x))


class RHAG(Module):
    """Residual hybrid attention group: HABs + trailing conv + skip."""

    def __init__(self, dim: int, depth: int, num_heads: int, window_size: int,
                 mlp_ratio: float = 2.0,
                 linear_factory=default_linear_factory,
                 conv_factory: ConvFactory = fp_conv_factory):
        super().__init__()
        self.blocks = ModuleList([
            HAB(dim, num_heads, window_size,
                shift_size=0 if i % 2 == 0 else window_size // 2,
                mlp_ratio=mlp_ratio, linear_factory=linear_factory,
                conv_factory=conv_factory)
            for i in range(depth)
        ])
        self.conv = conv_factory(dim, dim, 3)

    def forward(self, tokens: Tensor, hw: Tuple[int, int]) -> Tensor:
        shortcut = tokens
        x = tokens
        for block in self.blocks:
            x = block(x, hw)
        image = self.conv(tokens_to_image(x, hw))
        x, _ = image_to_tokens(image)
        return x + shortcut


class HAT(Module):
    def __init__(self, scale: int = 2, embed_dim: int = 96,
                 depths: Sequence[int] = (6, 6, 6, 6),
                 num_heads: Sequence[int] = (6, 6, 6, 6),
                 window_size: int = 8, mlp_ratio: float = 2.0, n_colors: int = 3,
                 linear_factory=default_linear_factory,
                 conv_factory: ConvFactory = fp_conv_factory,
                 image_residual: bool = True, light_tail: bool = False):
        super().__init__()
        if len(depths) != len(num_heads):
            raise ValueError("depths and num_heads must have equal length")
        self.scale = scale
        self.embed_dim = embed_dim
        self.window_size = window_size
        self.image_residual = image_residual
        self.head = Conv2d(n_colors, embed_dim, 3)
        self.groups = ModuleList([
            RHAG(embed_dim, depth, heads, window_size, mlp_ratio,
                 linear_factory, conv_factory)
            for depth, heads in zip(depths, num_heads)
        ])
        self.norm = LayerNorm(embed_dim)
        self.conv_after_body = Conv2d(embed_dim, embed_dim, 3)
        if light_tail:
            from ..nn import PixelShuffle
            self.tail = Sequential(
                Conv2d(embed_dim, n_colors * scale * scale, 3), PixelShuffle(scale))
        else:
            self.tail = Sequential(Upsampler(scale, embed_dim),
                                   Conv2d(embed_dim, n_colors, 3))
        if image_residual:
            zero_init_last_conv(self.tail)

    def forward(self, x: Tensor) -> Tensor:
        h, w = x.shape[2], x.shape[3]
        if h % self.window_size or w % self.window_size:
            raise ValueError(
                f"input {h}x{w} must be divisible by window size {self.window_size}")
        shallow = self.head(x)
        tokens, hw = image_to_tokens(shallow)
        for group in self.groups:
            tokens = group(tokens, hw)
        tokens = self.norm(tokens)
        deep = self.conv_after_body(tokens_to_image(tokens, hw))
        out = self.tail(deep + shallow)
        if self.image_residual:
            out = out + bicubic_residual(x, self.scale)
        return out
