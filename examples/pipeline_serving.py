"""Serve a binarized SR model through the batched inference pipeline.

The deployment story end to end, the way a serving process would run it:

1. train a small SCALES-binarized SRResNet and compile it onto the
   packed XNOR-popcount engine;
2. stand up an :class:`repro.infer.InferencePipeline` — requests are
   submitted one by one, executed as micro-batches on the thread pool;
3. push a full-resolution image through the batched tiled path and
   compare against the sequential per-tile seed execution.

Knobs: ``REPRO_NUM_THREADS`` (or ``repro.infer.set_num_threads``) sets
the worker-thread count; ``REPRO_PACKED_IMPL=reference`` switches the
packed layers back to the seed kernels.

Run:  python examples/pipeline_serving.py
"""

import time

import numpy as np

from repro import grad as G
from repro.data import training_pool
from repro.deploy import TiledInference, compile_model, packed_backend
from repro.grad import Tensor, no_grad
from repro.infer import InferencePipeline, get_num_threads
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer


def main() -> None:
    scale = 2
    with G.default_dtype("float32"):
        init.seed(3)
        model = build_model("srresnet", scale=scale, scheme="scales",
                            preset="tiny", light_tail=True, head_kernel=3)

        print("Training a tiny SCALES-binarized SRResNet...")
        pool = training_pool(scale=scale, n_images=8, size=(64, 64))
        Trainer(model, pool, TrainConfig(steps=120, batch_size=8,
                                         patch_size=16, lr=3e-4,
                                         seed=7)).fit(verbose=False)
        compiled = compile_model(model)

        print(f"\nServing micro-batches on {get_num_threads()} thread(s)...")
        rng = np.random.default_rng(0)
        requests = [rng.random((24, 24, 3)).astype(np.float32)
                    for _ in range(12)]
        pipeline = InferencePipeline(compiled, batch_size=4)
        handles = [pipeline.submit(img) for img in requests]
        t0 = time.perf_counter()
        results = [h.result() for h in handles]
        elapsed = time.perf_counter() - t0
        print(f"  {len(results)} images in {elapsed * 1e3:.0f} ms "
              f"({pipeline.stats['batches']} batches, "
              f"largest {pipeline.stats['max_batch']})")

        print("\nFull image through the batched tile pipeline...")
        big = rng.random((1, 3, 96, 128)).astype(np.float32)
        batched = TiledInference(compiled, tile=32, overlap=8, batch_size=16)
        sequential = TiledInference(compiled, tile=32, overlap=8,
                                    batched=False)
        with no_grad():
            t0 = time.perf_counter()
            sr = batched(Tensor(big)).data
            t_batched = time.perf_counter() - t0
            with packed_backend("reference"):
                t0 = time.perf_counter()
                sr_seed = sequential(Tensor(big)).data
                t_seed = time.perf_counter() - t0
        assert np.array_equal(sr, sr_seed), "pipeline must match seed path"
        print(f"  128x96 LR -> {sr.shape[3]}x{sr.shape[2]} SR")
        print(f"  sequential seed path : {t_seed * 1e3:6.0f} ms")
        print(f"  batched pipeline     : {t_batched * 1e3:6.0f} ms "
              f"({t_seed / t_batched:.1f}x)")


if __name__ == "__main__":
    main()
