"""Consistent-hash ring: stability, spread, and minimal-motion removal."""

import pytest

from repro.gateway import HashRing

KEYS = [f"arch{i}/scheme{j}/x{s}"
        for i in range(10) for j in range(5) for s in (2, 3, 4)]


class TestRouting:
    def test_routing_is_stable_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_every_node_gets_a_share(self):
        ring = HashRing(range(4))
        owners = {ring.route(k) for k in KEYS}
        assert owners == {0, 1, 2, 3}

    def test_same_key_always_same_node(self):
        ring = HashRing(range(8))
        for key in KEYS[:20]:
            assert len({ring.route(key) for _ in range(5)}) == 1

    def test_empty_ring_routes_to_none(self):
        assert HashRing().route("anything") is None

    def test_all_excluded_routes_to_none(self):
        ring = HashRing(range(3))
        assert ring.route("k", exclude={0, 1, 2}) is None


class TestMembership:
    def test_removal_moves_only_the_dead_nodes_keys(self):
        ring = HashRing(range(5))
        before = {k: ring.route(k) for k in KEYS}
        ring.remove(2)
        for key, owner in before.items():
            if owner == 2:
                assert ring.route(key) != 2
            else:
                # A surviving node's keys must not reshuffle.
                assert ring.route(key) == owner

    def test_exclude_agrees_with_removal(self):
        """The failover walk lands where the rebalanced ring would
        put the key anyway — failover traffic warms the right cache."""
        ring = HashRing(range(5))
        removed = HashRing([n for n in range(5) if n != 3])
        for key in KEYS:
            assert ring.route(key, exclude={3}) == removed.route(key)

    def test_add_remove_idempotent(self):
        ring = HashRing([0, 1])
        ring.add(1)
        assert len(ring) == 2
        ring.remove(7)
        assert ring.nodes() == (0, 1)
        ring.remove(0)
        ring.remove(0)
        assert ring.nodes() == (1,)
        assert all(ring.route(k) == 1 for k in KEYS[:10])

    def test_invalid_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)
