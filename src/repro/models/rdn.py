"""RDN: residual dense network (Zhang et al., 2018).

One of the four CNN-based SR architectures the paper evaluates SCALES on.
Each residual dense block (RDB) grows features through densely connected
convs (these are the binarized layers), fuses them with a FP 1x1 conv and
adds the local skip; global feature fusion concatenates all RDB outputs.
"""

from __future__ import annotations

from .. import grad as G
from ..grad import Tensor
from ..nn import Conv2d, Module, ModuleList, ReLU, Sequential
from .common import (ConvFactory, Upsampler, bicubic_residual, fp_conv_factory,
                     zero_init_last_conv)


class DenseLayer(Module):
    def __init__(self, in_channels: int, growth: int, conv_factory: ConvFactory):
        super().__init__()
        self.conv = conv_factory(in_channels, growth, 3)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return G.concat([x, self.act(self.conv(x))], axis=1)


class RDB(Module):
    """Residual dense block: dense convs + 1x1 local fusion + local skip."""

    def __init__(self, n_feats: int, growth: int, n_layers: int,
                 conv_factory: ConvFactory):
        super().__init__()
        layers = []
        channels = n_feats
        for _ in range(n_layers):
            layers.append(DenseLayer(channels, growth, conv_factory))
            channels += growth
        self.layers = Sequential(*layers)
        self.fusion = Conv2d(channels, n_feats, 1)

    def forward(self, x: Tensor) -> Tensor:
        return self.fusion(self.layers(x)) + x


class RDN(Module):
    def __init__(self, scale: int = 2, n_feats: int = 64, growth: int = 32,
                 n_blocks: int = 8, n_layers: int = 4, n_colors: int = 3,
                 conv_factory: ConvFactory = fp_conv_factory,
                 image_residual: bool = True):
        super().__init__()
        self.scale = scale
        self.n_feats = n_feats
        self.image_residual = image_residual
        self.head1 = Conv2d(n_colors, n_feats, 3)
        self.head2 = Conv2d(n_feats, n_feats, 3)
        self.blocks = ModuleList([
            RDB(n_feats, growth, n_layers, conv_factory) for _ in range(n_blocks)
        ])
        self.gff1 = Conv2d(n_feats * n_blocks, n_feats, 1)
        self.gff2 = Conv2d(n_feats, n_feats, 3)
        self.tail = Sequential(Upsampler(scale, n_feats), Conv2d(n_feats, n_colors, 3))
        if image_residual:
            zero_init_last_conv(self.tail)

    def forward(self, x: Tensor) -> Tensor:
        f_minus1 = self.head1(x)
        feat = self.head2(f_minus1)
        block_outs = []
        for block in self.blocks:
            feat = block(feat)
            block_outs.append(feat)
        fused = self.gff2(self.gff1(G.concat(block_outs, axis=1)))
        out = self.tail(fused + f_minus1)
        if self.image_residual:
            out = out + bicubic_residual(x, self.scale)
        return out
