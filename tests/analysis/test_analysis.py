"""Tests for activation recording and the variance study."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.analysis import (
    ActivationRecorder,
    binary_feature_maps,
    binary_map_richness,
    channel_distributions,
    layer_distributions,
    pixel_distributions,
    token_distributions,
    variance_stats,
)
from repro.binarize import LSFBinarizer2d
from repro.models import build_model, resnet18
from repro.nn import Conv2d, Linear

from ..helpers import rng


class TestActivationRecorder:
    def test_records_inputs_of_matching_modules(self):
        with G.default_dtype("float32"):
            model = build_model("edsr", scale=2, scheme="fp", preset="tiny")
            with ActivationRecorder(model, (Conv2d,), capture="input") as rec:
                rec.run(rng(0).random((1, 3, 16, 16)))
                assert rec.layer_names()
                for arrays in rec.records.values():
                    assert arrays[0].ndim == 4

    def test_name_filter(self):
        with G.default_dtype("float32"):
            model = build_model("edsr", scale=2, scheme="fp", preset="tiny")
            with ActivationRecorder(model, (Conv2d,), name_filter="body") as rec:
                rec.run(rng(0).random((1, 3, 16, 16)))
                assert all("body" in name for name in rec.layer_names())

    def test_capture_output_mode(self):
        with G.default_dtype("float32"):
            model = build_model("edsr", scale=2, scheme="fp", preset="tiny")
            with ActivationRecorder(model, (Conv2d,), capture="output") as rec:
                rec.run(rng(0).random((1, 3, 16, 16)))
                assert rec.records

    def test_invalid_capture_mode(self):
        with pytest.raises(ValueError):
            ActivationRecorder(resnet18(), (Conv2d,), capture="weights")

    def test_close_removes_hooks(self):
        model = resnet18(base_width=8)
        rec = ActivationRecorder(model, (Conv2d,))
        rec.close()
        assert all(not m._forward_hooks for m in model.modules())

    def test_multiple_runs_accumulate(self):
        with G.default_dtype("float32"):
            model = build_model("edsr", scale=2, scheme="fp", preset="tiny")
            with ActivationRecorder(model, (Conv2d,)) as rec:
                rec.run(rng(0).random((1, 3, 16, 16)))
                rec.run(rng(1).random((1, 3, 16, 16)))
                name = rec.layer_names()[0]
                assert len(rec.records[name]) == 2


class TestDistributionSummaries:
    def test_pixel_distributions_shape(self):
        fmap = rng(0).normal(size=(8, 10, 10))
        summary = pixel_distributions(fmap, n_pixels=5)
        assert summary.rows.shape == (5, 5)
        # five numbers must be sorted per row
        assert np.all(np.diff(summary.rows, axis=1) >= 0)

    def test_channel_distributions(self):
        fmap = rng(1).normal(size=(8, 6, 6))
        summary = channel_distributions(fmap, n_channels=4)
        assert summary.rows.shape == (4, 5)

    def test_token_distributions(self):
        tokens = rng(2).normal(size=(20, 8))
        summary = token_distributions(tokens, n_tokens=6)
        assert summary.rows.shape == (6, 5)

    def test_layer_distributions(self):
        records = {"a": [rng(3).normal(size=(1, 4, 3, 3))],
                   "b": [rng(4).normal(size=(1, 4, 3, 3))]}
        summary = layer_distributions(records)
        assert summary.rows.shape == (2, 5)

    def test_spread_and_center_variation(self):
        wide = pixel_distributions(rng(5).normal(size=(16, 8, 8)) * 10)
        narrow = pixel_distributions(rng(5).normal(size=(16, 8, 8)) * 0.1)
        assert wide.spread > narrow.spread


class TestVarianceStats:
    def test_conv_records(self):
        records = {"l1": [rng(0).normal(size=(2, 4, 5, 5))],
                   "l2": [rng(1).normal(size=(2, 4, 5, 5)) * 10]}
        stats = variance_stats("net", records)
        assert stats.layer_to_layer >= 0
        assert set(stats.as_dict()) == {"chl-to-chl", "pixel-to-pixel",
                                        "layer-to-layer", "image-to-image"}

    def test_token_records(self):
        records = {"l1": [rng(2).normal(size=(2, 10, 8))]}
        stats = variance_stats("net", records)
        assert np.isfinite(stats.pixel_to_pixel)

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            variance_stats("net", {})

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            variance_stats("net", {"l": [rng(3).normal(size=(4, 4))]})

    def test_scaled_input_increases_variance(self):
        base = {"l": [rng(4).normal(size=(2, 4, 5, 5))]}
        scaled = {"l": [base["l"][0] * 20]}
        assert variance_stats("a", scaled).pixel_to_pixel > \
            variance_stats("b", base).pixel_to_pixel


class TestBinaryMaps:
    def test_capture_binary_maps(self):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            maps = binary_feature_maps(model, rng(0).random((1, 3, 12, 12)),
                                       (LSFBinarizer2d,))
            assert maps
            for arr in maps.values():
                magnitudes = np.unique(np.abs(arr))
                assert len(magnitudes) == 1  # +-alpha only

    def test_richness_of_structured_vs_constant(self):
        constant = np.ones((1, 4, 8, 8))
        checker = np.indices((8, 8)).sum(axis=0) % 2 * 2.0 - 1.0
        structured = np.broadcast_to(checker, (1, 4, 8, 8))
        assert binary_map_richness(constant) == 0.0
        assert binary_map_richness(structured) == 1.0
