"""Prometheus-style metrics: registry, exposition text, and a linter.

:mod:`repro.serve.telemetry` answers "what is this process doing" to a
human (``stats()`` dicts, aligned text reports).  This module is the
*machine* read side the ROADMAP's observability item asks for: a
:class:`MetricsRegistry` that :class:`repro.serve.ModelServer`,
:class:`repro.jobs.JobRunner` and the HTTP gateway publish into, and
that renders to the Prometheus plain-text exposition format (the
``text/plain; version=0.0.4`` dialect every scraper understands).

Design notes
------------

* **Four metric kinds.**  ``counter`` (monotone totals), ``gauge``
  (point-in-time values), ``histogram`` (log-bucketed latency
  distributions reusing :data:`repro.serve.telemetry.BUCKET_BOUNDS`,
  rendered as cumulative ``_bucket``/``_sum``/``_count`` samples) and
  ``summary`` (pre-computed ``quantile`` samples — the per-model
  p50/p95/p99 series the SLO work reads).
* **Callback families.**  :meth:`MetricsRegistry.func` registers a
  family whose samples are computed at scrape time from a callable —
  queue depth, loaded-model count and SLO burn state are read straight
  from their owners instead of being double-booked on every request.
* **Cross-process merging.**  A gateway aggregates its workers by
  fetching each worker's :meth:`MetricsRegistry.dump` (JSON-safe),
  relabelling it via :func:`families_from_dump` (``worker="0"``) and
  rendering everything in one pass with :func:`render_families` — one
  scrape surface over N processes, one ``# TYPE`` block per family.
* **A linter, not just a renderer.**  :func:`lint_exposition` parses
  exposition text back and checks the invariants scrapers rely on
  (sample/family name agreement, label syntax, cumulative bucket
  monotonicity, ``+Inf`` == ``_count``).  CI's metrics-smoke job and
  the unit tests both gate on it, so the rendered text can never
  silently drift from the format.

Everything is thread-safe: families and children take locks around
mutation, and ``collect()``/``render()`` work on snapshots.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .telemetry import BUCKET_BOUNDS, LatencyHistogram

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "families_from_dump",
    "lint_exposition",
    "render_families",
]

#: What a ``/metrics`` endpoint should put in ``Content-Type``.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles every ``summary`` family exposes (p50 / p95 / p99).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

_KINDS = ("counter", "gauge", "histogram", "summary")
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: Label names the exposition format itself owns.
_RESERVED_LABELS = ("le", "quantile")

#: ``(sample name, labels, value)`` — one exposition line.
Sample = Tuple[str, Dict[str, str], float]
#: ``(family name, kind, help, samples)`` — one ``# TYPE`` block.
FamilySnapshot = Tuple[str, str, str, List[Sample]]


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    """Canonical ``le=`` rendering of a bucket upper bound."""
    return format(bound, "g")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for name in names:
        if not _LABEL_RE.match(name) or name.startswith("__"):
            raise ValueError(f"invalid label name {name!r}")
        if name in _RESERVED_LABELS:
            raise ValueError(
                f"label name {name!r} is reserved by the exposition format"
            )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names}")
    return names


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; inc({n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    """One labeled histogram/summary series over a
    :class:`~repro.serve.telemetry.LatencyHistogram` (same buckets, so
    telemetry percentiles and scraped histograms always agree)."""

    __slots__ = ("_lock", "hist")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hist = LatencyHistogram()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.hist.record(seconds)

    def snapshot(self) -> LatencyHistogram:
        with self._lock:
            copy = LatencyHistogram()
            copy.merge(self.hist)
            return copy


class Family:
    """One metric family: a name, a kind, a help line, labeled children.

    ``labels(**labels)`` resolves (creating on first use) the child for
    one label-value combination; the no-label convenience methods on
    the concrete kinds (``inc`` / ``set`` / ``observe``) address the
    single unlabeled child.
    """

    kind = "untyped"
    _child_type: Optional[type] = None

    def __init__(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._child_type()
            return child

    def _items(self) -> List[Tuple[Dict[str, str], object]]:
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def collect(self) -> List[Sample]:
        raise NotImplementedError


class Counter(Family):
    kind = "counter"
    _child_type = _CounterChild

    def inc(self, n: float = 1) -> None:
        self.labels().inc(n)

    def collect(self) -> List[Sample]:
        return [
            (self.name, labels, child.value)
            for labels, child in self._items()
        ]


class Gauge(Family):
    kind = "gauge"
    _child_type = _GaugeChild

    def set(self, value: float) -> None:
        self.labels().set(value)

    def collect(self) -> List[Sample]:
        return [
            (self.name, labels, child.value)
            for labels, child in self._items()
        ]


class Histogram(Family):
    """Log-bucketed latency histogram family (cumulative exposition)."""

    kind = "histogram"
    _child_type = _HistogramChild

    def observe(self, seconds: float) -> None:
        self.labels().observe(seconds)

    def collect(self) -> List[Sample]:
        samples: List[Sample] = []
        for labels, child in self._items():
            hist = child.snapshot()
            acc = 0
            for bound, count in zip(BUCKET_BOUNDS, hist.counts):
                acc += count
                samples.append(
                    (
                        f"{self.name}_bucket",
                        {**labels, "le": _format_bound(bound)},
                        acc,
                    )
                )
            samples.append(
                (f"{self.name}_bucket", {**labels, "le": "+Inf"}, hist.count)
            )
            samples.append((f"{self.name}_sum", labels, hist.total))
            samples.append((f"{self.name}_count", labels, hist.count))
        return samples


class Summary(Family):
    """Quantile summary family — the per-model p50/p95/p99 series."""

    kind = "summary"
    _child_type = _HistogramChild

    def observe(self, seconds: float) -> None:
        self.labels().observe(seconds)

    def collect(self) -> List[Sample]:
        samples: List[Sample] = []
        for labels, child in self._items():
            hist = child.snapshot()
            for quantile in SUMMARY_QUANTILES:
                samples.append(
                    (
                        self.name,
                        {**labels, "quantile": _format_bound(quantile)},
                        hist.percentile(quantile * 100.0),
                    )
                )
            samples.append((f"{self.name}_sum", labels, hist.total))
            samples.append((f"{self.name}_count", labels, hist.count))
        return samples


class _FuncFamily(Family):
    """A family whose samples are computed by a callback at scrape time.

    The callback returns either a bare number (one unlabeled sample) or
    an iterable of ``(labels_dict, value)`` pairs.  Exceptions are the
    callback owner's bug — they propagate, because a scrape silently
    dropping a family is exactly the failure mode this module exists
    to prevent.
    """

    def __init__(
        self, name: str, help: str, kind: str, fn: Callable
    ) -> None:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"func families are counter/gauge, not {kind}")
        super().__init__(name, help)
        self.kind = kind
        self._fn = fn

    def labels(self, **labels):
        raise TypeError(f"{self.name} is computed by a callback")

    def collect(self) -> List[Sample]:
        produced = self._fn()
        if isinstance(produced, (int, float)):
            return [(self.name, {}, float(produced))]
        samples: List[Sample] = []
        for labels, value in produced:
            for name in labels:
                _check_labelnames((name,))
            samples.append((self.name, dict(labels), float(value)))
        return samples


class MetricsRegistry:
    """The process-local set of metric families behind ``/metrics``.

    ``counter`` / ``gauge`` / ``histogram`` / ``summary`` register (or
    return the already-registered, identically-shaped) family;
    ``func`` registers a scrape-time callback family.  ``render()``
    produces the exposition text; ``dump()`` a JSON-safe snapshot a
    front door can merge across processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}

    def _register(self, family: Family) -> Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
            if (
                type(existing) is not type(family)
                or existing.kind != family.kind
                or existing.labelnames != family.labelnames
            ):
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing

    def counter(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames))

    def summary(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Summary:
        return self._register(Summary(name, help, labelnames))

    def func(
        self, name: str, help: str, kind: str, fn: Callable
    ) -> Family:
        return self._register(_FuncFamily(name, help, kind, fn))

    def collect(self) -> List[FamilySnapshot]:
        with self._lock:
            families = list(self._families.values())
        return [
            (family.name, family.kind, family.help, family.collect())
            for family in families
        ]

    def render(self) -> str:
        return render_families(self.collect())

    def dump(self) -> Dict:
        """JSON-safe snapshot: what a worker hands its front door."""
        return {
            "families": [
                {
                    "name": name,
                    "kind": kind,
                    "help": help,
                    "samples": [
                        [sample_name, labels, value]
                        for sample_name, labels, value in samples
                    ],
                }
                for name, kind, help, samples in self.collect()
            ]
        }


def families_from_dump(
    dump: Dict, extra_labels: Optional[Dict[str, str]] = None
) -> List[FamilySnapshot]:
    """Rehydrate :meth:`MetricsRegistry.dump` output into family
    snapshots, attaching ``extra_labels`` (e.g. ``worker="0"``) to
    every sample so merged processes stay distinguishable."""
    extra = {
        str(k): str(v) for k, v in (extra_labels or {}).items()
    }
    for name in extra:
        _check_labelnames((name,))
    families: List[FamilySnapshot] = []
    for family in dump.get("families", []):
        name = _check_name(str(family["name"]))
        kind = str(family["kind"])
        if kind not in _KINDS:
            raise ValueError(f"dump family {name!r} has unknown kind {kind!r}")
        samples: List[Sample] = []
        for sample_name, labels, value in family.get("samples", []):
            merged = {str(k): str(v) for k, v in dict(labels).items()}
            merged.update(extra)
            samples.append((str(sample_name), merged, float(value)))
        families.append((name, kind, str(family.get("help", "")), samples))
    return families


def render_families(families: Iterable[FamilySnapshot]) -> str:
    """Render family snapshots as exposition text.

    Families with the same name (one per merged process) are folded
    into a single ``# TYPE`` block — the format forbids repeating one —
    after checking their kinds agree.
    """
    merged: "Dict[str, Tuple[str, str, List[Sample]]]" = {}
    for name, kind, help, samples in families:
        entry = merged.get(name)
        if entry is None:
            merged[name] = (kind, help, list(samples))
            continue
        if entry[0] != kind:
            raise ValueError(
                f"family {name!r} merged with conflicting kinds "
                f"{entry[0]!r} and {kind!r}"
            )
        entry[2].extend(samples)
    lines: List[str] = []
    for name, (kind, help, samples) in merged.items():
        lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample_name, labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(str(labels[key]))}"'
                    for key in sorted(labels)
                )
                lines.append(
                    f"{sample_name}{{{rendered}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Exposition lint
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?[ \t]+(\S+)(?:[ \t]+(\S+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)'
)


def _parse_labels(raw: str) -> Optional[Dict[str, str]]:
    """Parse a ``k="v",...`` label body; ``None`` when malformed."""
    labels: Dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if match is None:
            return None
        name, value = match.group(1), match.group(2)
        if name in labels:
            return None
        labels[name] = value
        rest = rest[match.end():]
    return labels


def _sample_suffixes(kind: str) -> Tuple[str, ...]:
    if kind == "histogram":
        return ("_bucket", "_sum", "_count", "")
    if kind == "summary":
        return ("_sum", "_count", "")
    return ("",)


def lint_exposition(text: str) -> List[str]:
    """Validate exposition text; returns problem strings (empty = ok).

    Checks the invariants a scraper depends on: HELP/TYPE syntax,
    known kinds, sample lines grouped under their family's TYPE block,
    sample-name suffixes legal for the kind, label syntax, parseable
    values, no duplicate series, counters non-negative, histogram
    buckets cumulative with a ``+Inf`` bucket equal to ``_count``.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    current_family: Optional[str] = None
    seen: set = set()
    buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                if parts[1:2] and parts[1] in ("HELP", "TYPE"):
                    problems.append(f"line {lineno}: truncated {parts[1]}")
                continue  # plain comment
            _, directive, name = parts[:3]
            if not _NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: bad family name {name!r} in {directive}"
                )
                continue
            if directive == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _KINDS + ("untyped",):
                    problems.append(
                        f"line {lineno}: unknown TYPE {kind!r} for {name}"
                    )
                    continue
                if name in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                typed[name] = kind
                current_family = name
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name, raw_labels, raw_value, _timestamp = match.groups()
        labels = _parse_labels(raw_labels) if raw_labels else {}
        if labels is None:
            problems.append(
                f"line {lineno}: malformed labels {{{raw_labels}}}"
            )
            continue
        try:
            value = float(raw_value)
        except ValueError:
            problems.append(
                f"line {lineno}: unparseable value {raw_value!r}"
            )
            continue
        family = None
        if current_family is not None:
            kind = typed[current_family]
            for suffix in _sample_suffixes(kind):
                if sample_name == current_family + suffix:
                    family = current_family
                    break
        if family is None:
            problems.append(
                f"line {lineno}: sample {sample_name!r} is not grouped "
                f"under a matching # TYPE block"
            )
            continue
        kind = typed[family]
        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen:
            problems.append(
                f"line {lineno}: duplicate series {sample_name}{labels}"
            )
        seen.add(series)
        if kind == "counter" and value < 0:
            problems.append(
                f"line {lineno}: counter {sample_name} is negative"
            )
        if kind == "histogram":
            child = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if sample_name == family + "_bucket":
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: bucket sample without le label"
                    )
                    continue
                try:
                    bound = float(labels["le"])
                except ValueError:
                    problems.append(
                        f"line {lineno}: bad le value {labels['le']!r}"
                    )
                    continue
                buckets.setdefault((family, child), []).append(
                    (bound, value)
                )
            elif sample_name == family + "_count":
                counts[(family, child)] = value

    for (family, child), pairs in buckets.items():
        bounds = [bound for bound, _ in pairs]
        if bounds != sorted(bounds):
            problems.append(f"{family}{dict(child)}: le bounds not sorted")
        values = [value for _, value in pairs]
        if values != sorted(values):
            problems.append(
                f"{family}{dict(child)}: bucket counts not cumulative"
            )
        if not pairs or not math.isinf(pairs[-1][0]):
            problems.append(f"{family}{dict(child)}: missing +Inf bucket")
        elif (family, child) in counts and (
            pairs[-1][1] != counts[(family, child)]
        ):
            problems.append(
                f"{family}{dict(child)}: +Inf bucket "
                f"{pairs[-1][1]} != _count {counts[(family, child)]}"
            )
    return problems
