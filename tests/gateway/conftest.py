"""Shared fixtures for the gateway suite: one tiny artifact zoo.

Building packed artifacts is the expensive part of every gateway test,
so the zoo is session-scoped; gateways/workers over it are cheap.
"""

import numpy as np
import pytest

from repro import grad as G
from repro.deploy import compile_model
from repro.models import build_model
from repro.nn import init

KEY_A = ("srresnet", "scales", 2)
KEY_B = ("edsr", "e2fif", 2)
MODEL_A = "srresnet/scales/x2"
MODEL_B = "edsr/e2fif/x2"


@pytest.fixture(scope="session")
def zoo_dir(tmp_path_factory):
    """Directory with two tiny packed artifacts (built once per session)."""
    directory = tmp_path_factory.mktemp("gateway_zoo")
    with G.default_dtype("float32"):
        for arch, scheme, scale in (KEY_A, KEY_B):
            init.seed(0)
            model = build_model(
                arch, scale=scale, scheme=scheme, preset="tiny")
            compile_model(
                model, freeze=str(directory / f"{arch}_{scheme}.npz"))
    return directory


def images(n=4, shape=(12, 12, 3), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(shape).astype(np.float32) for _ in range(n)]
