"""`ServeSession`: the facade's handle on a running model server.

:class:`repro.serve.ModelServer` resolves its futures to bare arrays or
server-side marker types (``ServerBusy`` / ``ServeError``).  A
:class:`ServeSession` wraps a server so every outcome comes back as the
shared :class:`repro.api.InferResult` — the same type
:meth:`repro.api.Engine.infer` returns — making "talk to a pipeline"
and "talk to a server" interchangeable to calling code.

Sessions are created by :meth:`repro.api.Engine.serve` (serve this
engine's artifact) or :func:`serve_directory` (serve a whole artifact
zoo).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .config import EngineConfig
from .results import EngineError, InferRequest, InferResult

__all__ = ["ServeSession", "ServeTicket", "serve_directory"]

ModelKey = Tuple[str, str, int]


class ServeTicket:
    """Handle for one in-flight served request; ``result()`` blocks and
    returns a typed :class:`InferResult` (never a raw marker type)."""

    __slots__ = ("_future", "_model")

    def __init__(self, future, model: ModelKey) -> None:
        self._future = future
        self._model = model

    @property
    def model(self) -> ModelKey:
        return self._model

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> InferResult:
        return InferResult.from_serve_value(
            self._future.result(timeout), self._model)


class ServeSession:
    """Typed facade over one :class:`repro.serve.ModelServer`.

    Use as a context manager; the underlying server (``.server``)
    remains reachable for telemetry and low-level control.
    """

    def __init__(self, server, default_model: Optional[ModelKey] = None
                 ) -> None:
        self.server = server
        self.default_model = default_model

    @classmethod
    def over_directory(cls, artifact_dir,
                       config: Optional[EngineConfig] = None,
                       default_model: Optional[ModelKey] = None
                       ) -> "ServeSession":
        """Serve every packed artifact in a directory (lazy LRU zoo)."""
        from ..serve.server import ModelServer
        config = config if config is not None else EngineConfig()
        return cls(ModelServer(artifact_dir, config.to_server_config()),
                   default_model=default_model)

    # -- request path ------------------------------------------------------

    @property
    def available_models(self) -> Tuple[ModelKey, ...]:
        return self.server.available_models

    def _resolve(self, model) -> ModelKey:
        from ..serve.server import parse_model_key
        if model is None:
            model = self.default_model
        if model is None:
            raise EngineError(
                "no model given and this session has no default; pass "
                "model=... (a zoo key or 'arch/scheme/xN' route)")
        return parse_model_key(model)

    def submit(self, image: Union[np.ndarray, InferRequest], model=None,
               deadline_s: Optional[float] = None) -> ServeTicket:
        """Admit one image (or :class:`InferRequest`); never blocks.

        Shed and failed requests resolve as typed ``"busy"`` /
        ``"error"`` results on the returned ticket, exactly like the
        engine's direct path reports them.
        """
        if isinstance(image, InferRequest):
            model = model if model is not None else image.model
            deadline_s = (deadline_s if deadline_s is not None
                          else image.deadline_s)
            image = image.image
        key = self._resolve(model)
        return ServeTicket(
            self.server.submit(np.asarray(image), key, deadline_s), key)

    def infer(self, image: Union[np.ndarray, InferRequest],
              model=None) -> InferResult:
        """Submit one image and block for its typed result."""
        return self.infer_many([image], model=model)[0]

    def infer_many(self, images: Sequence[Union[np.ndarray, InferRequest]],
                   model=None, timeout: float = 60.0) -> List[InferResult]:
        """Submit a batch, drain the server, return typed results in
        order."""
        tickets = [self.submit(img, model=model) for img in images]
        self.server.drain()
        return [t.result(timeout=timeout) for t in tickets]

    # -- observability / lifecycle -----------------------------------------

    def stats(self):
        return self.server.stats()

    def report(self) -> str:
        return self.server.report()

    def close(self, drain: bool = True) -> None:
        self.server.close(drain=drain)

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)


def serve_directory(artifact_dir, config: Optional[EngineConfig] = None,
                    default_model: Optional[ModelKey] = None) -> ServeSession:
    """Serve an artifact zoo directory through the typed facade
    (alias of :meth:`ServeSession.over_directory`)."""
    return ServeSession.over_directory(artifact_dir, config,
                                       default_model=default_model)
