"""SwinIR (lightweight) — the transformer SR network of Table IV / Fig. 5.

Structure (Liang et al., 2021): FP shallow conv, residual Swin transformer
blocks (RSTB = several SwinBlocks + a trailing conv + residual), a FP
fusion conv with global residual, and the upsampling tail.  The four
linear layers of every transformer block and the trailing conv of every
RSTB accept the pluggable factories, which is where BiBERT / SCALES
binarization is inserted for Table IV.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .. import grad as G
from ..grad import Tensor
from ..nn import (
    Conv2d,
    LayerNorm,
    Module,
    ModuleList,
    Sequential,
    SwinBlock,
    default_linear_factory,
)
from .common import (ConvFactory, Upsampler, bicubic_residual, fp_conv_factory,
                     zero_init_last_conv)


def image_to_tokens(x: Tensor) -> Tuple[Tensor, Tuple[int, int]]:
    """(B, C, H, W) -> (B, H*W, C) plus the spatial size."""
    b, c, h, w = x.shape
    tokens = G.reshape(x, (b, c, h * w))
    return G.transpose(tokens, (0, 2, 1)), (h, w)


def tokens_to_image(tokens: Tensor, hw: Tuple[int, int]) -> Tensor:
    """(B, H*W, C) -> (B, C, H, W)."""
    b, n, c = tokens.shape
    h, w = hw
    x = G.transpose(tokens, (0, 2, 1))
    return G.reshape(x, (b, c, h, w))


class RSTB(Module):
    """Residual Swin Transformer Block group (+ trailing conv)."""

    def __init__(self, dim: int, depth: int, num_heads: int, window_size: int,
                 mlp_ratio: float = 2.0,
                 linear_factory=default_linear_factory,
                 conv_factory: ConvFactory = fp_conv_factory):
        super().__init__()
        self.blocks = ModuleList([
            SwinBlock(dim, num_heads, window_size,
                      shift_size=0 if i % 2 == 0 else window_size // 2,
                      mlp_ratio=mlp_ratio, linear_factory=linear_factory)
            for i in range(depth)
        ])
        self.conv = conv_factory(dim, dim, 3)

    def forward(self, tokens: Tensor, hw: Tuple[int, int]) -> Tensor:
        shortcut = tokens
        x = tokens
        for block in self.blocks:
            x = block(x, hw)
        image = tokens_to_image(x, hw)
        image = self.conv(image)
        x, _ = image_to_tokens(image)
        return x + shortcut


class SwinIR(Module):
    def __init__(self, scale: int = 2, embed_dim: int = 60,
                 depths: Sequence[int] = (6, 6, 6, 6),
                 num_heads: Sequence[int] = (6, 6, 6, 6),
                 window_size: int = 8, mlp_ratio: float = 2.0, n_colors: int = 3,
                 linear_factory=default_linear_factory,
                 conv_factory: ConvFactory = fp_conv_factory,
                 image_residual: bool = True, light_tail: bool = False):
        super().__init__()
        if len(depths) != len(num_heads):
            raise ValueError("depths and num_heads must have equal length")
        self.scale = scale
        self.embed_dim = embed_dim
        self.window_size = window_size
        self.image_residual = image_residual
        self.head = Conv2d(n_colors, embed_dim, 3)
        self.groups = ModuleList([
            RSTB(embed_dim, depth, heads, window_size, mlp_ratio,
                 linear_factory, conv_factory)
            for depth, heads in zip(depths, num_heads)
        ])
        self.norm = LayerNorm(embed_dim)
        self.conv_after_body = Conv2d(embed_dim, embed_dim, 3)
        if light_tail:
            from ..nn import PixelShuffle
            self.tail = Sequential(
                Conv2d(embed_dim, n_colors * scale * scale, 3), PixelShuffle(scale))
        else:
            self.tail = Sequential(Upsampler(scale, embed_dim),
                                   Conv2d(embed_dim, n_colors, 3))
        if image_residual:
            zero_init_last_conv(self.tail)

    def forward(self, x: Tensor) -> Tensor:
        h, w = x.shape[2], x.shape[3]
        if h % self.window_size or w % self.window_size:
            raise ValueError(
                f"input {h}x{w} must be divisible by window size {self.window_size}")
        shallow = self.head(x)
        tokens, hw = image_to_tokens(shallow)
        for group in self.groups:
            tokens = group(tokens, hw)
        tokens = self.norm(tokens)
        deep = self.conv_after_body(tokens_to_image(tokens, hw))
        out = self.tail(deep + shallow)
        if self.image_residual:
            out = out + bicubic_residual(x, self.scale)
        return out
