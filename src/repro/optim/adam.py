"""ADAM optimizer — the paper trains with ADAM(b1=0.9, b2=0.999, eps=1e-8)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..grad import Tensor


class Adam:
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 2e-4,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * g * g
            m_hat = self._m[i] / bc1
            v_hat = self._v[i] / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
