"""Core layers: convolutions, linear, activations, pixel shuffle."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import grad as G
from ..grad import Tensor
from . import init
from .module import Module, Parameter


class Conv2d(Module):
    """2-D convolution over NCHW tensors.

    The full-precision workhorse of the CNN-based SR networks; the binary
    layers in :mod:`repro.binarize` replace it inside body blocks.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return G.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Conv1d(Module):
    """1-D convolution over (B, C, L) tensors (channel re-scaling branch)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(init.kaiming_normal((out_channels, in_channels, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return G.conv1d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Linear(Module):
    """Affine map over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.trunc_normal((out_features, in_features), std=0.02))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        flat_dims = x.shape[:-1]
        x2 = G.reshape(x, (-1, self.in_features)) if x.ndim != 2 else x
        out = x2 @ G.transpose(self.weight, (1, 0))
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = G.reshape(out, flat_dims + (self.out_features,))
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return G.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return G.leaky_relu(x, self.negative_slope)


class PReLU(Module):
    """Parametric ReLU with a single learnable slope (SRResNet uses this)."""

    def __init__(self, init_slope: float = 0.25):
        super().__init__()
        self.slope = Parameter(np.array([init_slope]))

    def forward(self, x: Tensor) -> Tensor:
        positive = G.relu(x)
        negative = self.slope * (x - G.absolute(x)) * 0.5
        return positive + negative


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return G.sigmoid(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return G.gelu(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class PixelShuffle(Module):
    """Sub-pixel upsampling used by the tail module (Fig. 2)."""

    def __init__(self, upscale: int):
        super().__init__()
        self.upscale = upscale

    def forward(self, x: Tensor) -> Tensor:
        return G.pixel_shuffle(x, self.upscale)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return G.global_avg_pool2d(x)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return G.avg_pool2d(x, self.kernel_size, self.stride)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return G.reshape(x, (x.shape[0], -1))
