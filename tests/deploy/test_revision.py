"""Versioned rollout: revision scans, the store, the canary machine."""

import json
import shutil

import numpy as np
import pytest

from repro import grad as G
from repro.deploy import (CanaryConfig, CanaryController, RevisionStore,
                          compile_model, load_artifact,
                          read_artifact_meta, read_revision_state,
                          save_artifact, scan_artifact_dir,
                          scan_artifact_revisions)
from repro.models import build_model
from repro.nn import init

KEY = ("srresnet", "scales", 2)
LABEL = "srresnet/scales/x2"


@pytest.fixture(scope="module")
def compiled_model():
    with G.default_dtype("float32"):
        init.seed(7)
        model = build_model("srresnet", scale=2, scheme="scales",
                            preset="tiny")
        return compile_model(model)


@pytest.fixture(scope="module")
def revision_dir(tmp_path_factory, compiled_model):
    """A directory holding revisions 1 and 2 of one tiny artifact."""
    directory = tmp_path_factory.mktemp("revzoo")
    with G.default_dtype("float32"):
        save_artifact(compiled_model, directory / "m_rev1.npz", revision=1)
        save_artifact(compiled_model, directory / "m_rev2.npz", revision=2)
    return directory


@pytest.fixture()
def zoo(revision_dir, tmp_path):
    """A writable copy of the two-revision directory (no state file)."""
    for name in ("m_rev1.npz", "m_rev2.npz"):
        shutil.copy(revision_dir / name, tmp_path / name)
    return tmp_path


class TestRevisionMetadata:
    def test_default_revision_is_one(self, zoo):
        assert read_artifact_meta(zoo / "m_rev1.npz")["revision"] == 1
        assert read_artifact_meta(zoo / "m_rev2.npz")["revision"] == 2

    def test_revision_must_be_positive(self, compiled_model, tmp_path):
        with G.default_dtype("float32"):
            with pytest.raises(ValueError):
                save_artifact(compiled_model, tmp_path / "bad.npz",
                              revision=0)

    def test_scan_revisions_groups_by_key(self, zoo):
        catalog, skipped = scan_artifact_revisions(zoo)
        assert skipped == []
        assert sorted(catalog) == [KEY]
        assert sorted(catalog[KEY]) == [1, 2]

    def test_duplicate_revision_skipped(self, zoo):
        shutil.copy(zoo / "m_rev2.npz", zoo / "m_rev2_copy.npz")
        catalog, skipped = scan_artifact_revisions(zoo)
        assert sorted(catalog[KEY]) == [1, 2]
        assert len(skipped) == 1
        assert "duplicate" in skipped[0][1]


class TestScanActiveSelection:
    def test_lowest_revision_serves_without_state(self, zoo):
        infos, skipped = scan_artifact_dir(zoo)
        assert [info.revision for info in infos] == [1]
        assert any("inactive revision 2" in reason
                   for _, reason in skipped)

    def test_state_file_picks_the_active_revision(self, zoo):
        (zoo / "revisions.json").write_text(
            json.dumps({"active": {LABEL: 2}}))
        infos, _ = scan_artifact_dir(zoo)
        assert [info.revision for info in infos] == [2]

    def test_stale_state_falls_back_to_lowest(self, zoo):
        (zoo / "revisions.json").write_text(
            json.dumps({"active": {LABEL: 9}}))
        infos, _ = scan_artifact_dir(zoo)
        assert [info.revision for info in infos] == [1]

    def test_corrupt_state_file_is_ignored(self, zoo):
        (zoo / "revisions.json").write_text("{not json")
        assert read_revision_state(zoo) == {}
        infos, _ = scan_artifact_dir(zoo)
        assert [info.revision for info in infos] == [1]


class TestRevisionStore:
    def test_active_and_candidate(self, zoo):
        store = RevisionStore(zoo)
        assert store.keys() == [KEY]
        assert store.active_revision(KEY) == 1
        assert store.candidate_revision(KEY) == 2
        assert store.candidate_info(KEY).revision == 2

    def test_promote_is_durable(self, zoo):
        RevisionStore(zoo).promote(KEY, 2)
        assert read_revision_state(zoo) == {LABEL: 2}
        fresh = RevisionStore(zoo)
        assert fresh.active_revision(KEY) == 2
        assert fresh.candidate_revision(KEY) is None

    def test_promote_missing_revision_raises(self, zoo):
        store = RevisionStore(zoo)
        with pytest.raises(ValueError):
            store.promote(KEY, 9)

    def test_demote_pins_the_incumbent(self, zoo):
        store = RevisionStore(zoo)
        store.demote(KEY)
        assert read_revision_state(zoo) == {LABEL: 1}
        # The demoted candidate stays on disk, visible but not serving.
        assert store.candidate_revision(KEY) == 2

    def test_refresh_sees_new_artifacts(self, revision_dir, tmp_path):
        shutil.copy(revision_dir / "m_rev1.npz", tmp_path / "m_rev1.npz")
        store = RevisionStore(tmp_path)
        assert store.candidate_revision(KEY) is None
        shutil.copy(revision_dir / "m_rev2.npz", tmp_path / "m_rev2.npz")
        store.refresh()
        assert store.candidate_revision(KEY) == 2

    def test_snapshot(self, zoo):
        snap = RevisionStore(zoo).snapshot()
        assert snap[LABEL] == {
            "revisions": [1, 2], "active": 1, "candidate": 2}

    def test_unknown_key_raises(self, zoo):
        with pytest.raises(KeyError):
            RevisionStore(zoo).active_revision(("edsr", "e2fif", 4))


class TestCanaryConfig:
    def test_sample_every(self):
        assert CanaryConfig(sample_fraction=1.0).sample_every == 1
        assert CanaryConfig(sample_fraction=0.25).sample_every == 4
        assert CanaryConfig(sample_fraction=0.0).sample_every is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CanaryConfig(sample_fraction=1.5)
        with pytest.raises(ValueError):
            CanaryConfig(promote_after=0)


class TestCanaryController:
    def _controller(self, zoo, **kwargs):
        kwargs.setdefault("sample_fraction", 1.0)
        kwargs.setdefault("promote_after", 3)
        store = RevisionStore(zoo)
        return store, CanaryController(store, CanaryConfig(**kwargs))

    def test_sampling_cadence_is_deterministic(self, zoo):
        _, canary = self._controller(zoo, sample_fraction=0.5)
        picks = [canary.should_sample(KEY) for _ in range(6)]
        assert picks == [False, True, False, True, False, True]

    def test_no_candidate_means_no_sampling(self, revision_dir, tmp_path):
        shutil.copy(revision_dir / "m_rev1.npz", tmp_path / "m_rev1.npz")
        store = RevisionStore(tmp_path)
        canary = CanaryController(store, CanaryConfig(sample_fraction=1.0))
        assert not canary.should_sample(KEY)
        assert canary.candidate_info(KEY) is None
        assert canary.record(KEY, True) == "idle"

    def test_clean_samples_promote(self, zoo):
        store, canary = self._controller(zoo, promote_after=3)
        assert canary.record(KEY, True) == "verifying"
        assert canary.record(KEY, True) == "verifying"
        assert canary.record(KEY, True) == "promoted"
        assert store.active_revision(KEY) == 2
        assert read_revision_state(zoo) == {LABEL: 2}
        # Promotion is terminal: no further sampling, verdicts are no-ops.
        assert not canary.should_sample(KEY)
        assert canary.record(KEY, False) == "promoted"

    def test_first_mismatch_demotes(self, zoo):
        store, canary = self._controller(zoo, promote_after=3)
        assert canary.record(KEY, True) == "verifying"
        assert canary.record(KEY, False, "bytes diverged") == "demoted"
        assert store.active_revision(KEY) == 1
        assert read_revision_state(zoo) == {LABEL: 1}
        assert not canary.should_sample(KEY)
        snap = canary.snapshot()[LABEL]
        assert snap["state"] == "demoted"
        assert snap["detail"] == "bytes diverged"
        assert snap["seen"] == 2 and snap["clean"] == 1

    def test_new_candidate_rearms_after_promotion(
            self, zoo, compiled_model):
        store, canary = self._controller(zoo, promote_after=1)
        assert canary.record(KEY, True) == "promoted"
        # A revision 3 appears on disk: the controller re-arms.
        with G.default_dtype("float32"):
            save_artifact(compiled_model, zoo / "m_rev3.npz", revision=3)
        store.refresh()
        assert canary.should_sample(KEY)
        assert canary.candidate_info(KEY).revision == 3
        assert canary.record(KEY, True) == "promoted"
        assert store.active_revision(KEY) == 3

    def test_promoted_artifact_serves_bit_identically(self, zoo):
        # End of the story: after promotion a fresh scan loads rev 2,
        # and its outputs match rev 1 bit-for-bit (same weights here).
        RevisionStore(zoo).promote(KEY, 2)
        with G.default_dtype("float32"):
            infos, _ = scan_artifact_dir(zoo)
            assert infos[0].revision == 2
            rev2 = load_artifact(infos[0].path)
            rev1 = load_artifact(zoo / "m_rev1.npz")
            rev1.eval(), rev2.eval()
            x = np.random.default_rng(0).random((1, 3, 8, 8))
            x = x.astype(np.float32)
            with G.no_grad():
                a = rev1(G.Tensor(x)).data
                b = rev2(G.Tensor(x)).data
        np.testing.assert_array_equal(a, b)
