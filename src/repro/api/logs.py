"""Structured JSON logging for the serving stack.

The serve / gateway / jobs layers emit per-request events through
plain stdlib logging (``logging.getLogger("repro.serve")`` etc.) with
their structured payload attached as ``extra={"repro_fields": {...}}``.
That keeps the emitting modules free of any dependency on this
package — ``repro.serve`` must stay importable without ``repro.api``,
which imports it — while this module owns the process-wide wiring:

``configure_logging()``
    Install a :class:`JsonLineFormatter` handler on the ``"repro"``
    logger, once.  Every event from any ``repro.*`` logger then comes
    out as one JSON object per line — the shape log aggregators and
    the gateway's request-tracing tests consume.

``log_event(logger, event, **fields)``
    Emitter-side helper: one call, one line, fields attached the way
    the formatter expects.

Nothing here imports numpy or any repro sibling; it is safe to import
from anywhere, including ``repro/api/__init__``.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional, Union

__all__ = ["JsonLineFormatter", "configure_logging", "log_event"]

#: Attribute tag marking handlers installed by :func:`configure_logging`
#: so repeated calls reconfigure instead of stacking duplicates.
_HANDLER_TAG = "_repro_json_handler"


class JsonLineFormatter(logging.Formatter):
    """Format a log record as a single sorted-key JSON object.

    The payload is ``{"ts", "level", "logger", "event"}`` plus any
    fields the emitter attached via ``extra={"repro_fields": {...}}``.
    Reserved keys from the envelope win on collision; non-serialisable
    field values degrade to ``str()`` rather than raising — a logging
    call must never take down a request path.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {}
        fields = getattr(record, "repro_fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        payload["ts"] = round(record.created, 6)
        payload["level"] = record.levelname.lower()
        payload["logger"] = record.name
        payload["event"] = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: Union[int, str] = logging.INFO,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Route all ``repro.*`` log events to ``stream`` as JSON lines.

    Idempotent: calling again replaces the previously installed
    handler (e.g. to change level or stream) instead of duplicating
    output.  Returns the configured ``"repro"`` logger.  Propagation
    to the root logger is disabled so embedding applications with
    their own root handlers do not see events twice.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def log_event(logger: logging.Logger, event: str, **fields) -> None:
    """Emit one structured event: ``log_event(log, "shed", model=key)``.

    Timing fields are conventionally seconds as floats; emitters that
    have a request id pass it as ``request_id=...`` so one request's
    lines correlate across processes.
    """
    logger.info(event, extra={"repro_fields": dict(fields)})
