"""Deterministic fault injection for the jobs layer.

Crash-safety claims are only as good as the crashes they were tested
against, so the jobs subsystem ships its own chaos layer: a
:class:`ChaosConfig` travels (pickled) into every worker process and
deterministically injects the faults production would eventually
produce —

* **worker crashes** (``os._exit`` after an output is written but
  *before* its result is reported — the nastiest window: the work
  exists on disk but was never journaled);
* **slow I/O** (sleeps before output writes);
* **transient inference faults** ("flaky" items that fail their first
  attempts, then succeed — exercising retry/backoff);
* **poison items** (inputs that fail every attempt — exercising the
  quarantine path);
* **transient artifact-load failures** (an ``Engine.from_artifact``
  that raises on a worker's first load of a model);
* a **run kill** (the coordinator ``SIGKILL``\\s its own process group
  after the N-th journaled completion — the kill-and-resume soak
  test's deterministic trigger).

Every decision is a pure function of ``(seed, kind, item, attempt)``
via :func:`repro.jobs.retry.hash_unit`: the same seed picks the same
poison set, the same crash points and the same flaky items on every
run, in every process — which is what lets the soak test demand
bit-identical outputs from an interrupted-and-resumed run.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, asdict
from typing import Dict, Optional

from .retry import hash_unit

__all__ = ["ChaosConfig", "ChaosTransient", "ChaosPoisoned"]


class ChaosTransient(RuntimeError):
    """An injected transient fault (succeeds on a later attempt)."""


class ChaosPoisoned(RuntimeError):
    """An injected permanent fault (fails every attempt)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Seed-driven fault rates; all default to "no chaos".

    Rates are probabilities in ``[0, 1]`` evaluated deterministically
    per item (and, where noted, per attempt).
    """

    seed: int = 0
    #: P(worker exits hard after an item's output write, pre-report).
    crash_rate: float = 0.0
    #: P(an item sleeps ``slow_io_s`` before its output write).
    slow_io_rate: float = 0.0
    slow_io_s: float = 0.05
    #: P(an item fails attempts ``0 .. flaky_attempts-1``, then works).
    flaky_rate: float = 0.0
    flaky_attempts: int = 1
    #: P(an item fails *every* attempt — quarantine fodder).
    poison_rate: float = 0.0
    #: P(a worker's n-th artifact load raises transiently).
    artifact_load_flaky_rate: float = 0.0
    #: Coordinator SIGKILLs its process group after this many journaled
    #: completions (None = never).  CLI / soak-test only.
    kill_after_done: Optional[int] = None

    @property
    def active(self) -> bool:
        return bool(self.crash_rate or self.slow_io_rate or self.flaky_rate
                    or self.poison_rate or self.artifact_load_flaky_rate
                    or self.kill_after_done is not None)

    def to_dict(self) -> Dict:
        return asdict(self)

    # -- worker-side decisions ---------------------------------------------

    def is_poison(self, item: str) -> bool:
        """Same answer every run/attempt: poison is a property of the
        input, so reference and chaos runs quarantine the same set."""
        return hash_unit(self.seed, "poison", item) < self.poison_rate

    def is_flaky(self, item: str, attempt: int) -> bool:
        return (attempt < self.flaky_attempts
                and hash_unit(self.seed, "flaky", item) < self.flaky_rate)

    def check_infer(self, item: str, attempt: int) -> None:
        """Raise the injected inference fault for this item, if any."""
        if self.is_poison(item):
            raise ChaosPoisoned(f"chaos: poison item {item}")
        if self.is_flaky(item, attempt):
            raise ChaosTransient(
                f"chaos: transient inference fault (attempt {attempt})")

    def check_artifact_load(self, artifact: str, nth_load: int) -> None:
        """Raise a transient fault for a worker's n-th artifact load."""
        if hash_unit(self.seed, "artifact", artifact,
                     nth_load) < self.artifact_load_flaky_rate:
            raise ChaosTransient(
                f"chaos: transient artifact-load fault ({artifact})")

    def slow_io(self, item: str) -> None:
        if hash_unit(self.seed, "slow", item) < self.slow_io_rate:
            time.sleep(self.slow_io_s)

    def should_crash(self, item: str, lease: int) -> bool:
        """Should the worker exit hard right after this item's write?

        Keyed per *lease* (the item's global dispatch ordinal), not per
        attempt: a crashed lease dies with its worker and is re-leased
        at the same attempt number, so an attempt-keyed decision would
        crash every replacement worker forever.  Each new lease gets a
        fresh draw, so a run with ``crash_rate < 1`` always makes
        progress — while staying fully deterministic (the journal
        records every lease, so a resumed run continues the same
        sequence of draws).
        """
        return hash_unit(self.seed, "crash", item,
                         lease) < self.crash_rate

    def crash_worker(self) -> None:  # pragma: no cover - kills the process
        """Exit without cleanup, as SIGKILL/OOM would."""
        os._exit(137)

    # -- coordinator-side --------------------------------------------------

    def maybe_kill_run(self, done_count: int) -> None:
        """SIGKILL the whole run (process group) at the chosen point.

        Only ever called by the coordinator; the CLI runs it in its own
        session (``start_new_session``) so the kill stays inside the
        run's process tree.
        """
        if self.kill_after_done is not None \
                and done_count >= self.kill_after_done:  # pragma: no cover
            os.killpg(os.getpgid(0), signal.SIGKILL)
