"""Activation analysis tools for the Sec. III motivation study."""

from .activations import (
    ActivationRecorder,
    DistributionSummary,
    binary_feature_maps,
    binary_map_richness,
    channel_distributions,
    layer_distributions,
    pixel_distributions,
    token_distributions,
)
from .variance import VarianceStats, variance_stats

__all__ = [
    "ActivationRecorder", "DistributionSummary", "binary_feature_maps",
    "binary_map_richness", "channel_distributions", "layer_distributions",
    "pixel_distributions", "token_distributions",
    "VarianceStats", "variance_stats",
]
