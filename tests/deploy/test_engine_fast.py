"""Fast (bit-domain) packed forward vs the retained reference path.

The fast path must be *bit-exact* against the seed implementation for
every supported geometry — both activation layouts (patch / bitplane),
strides, paddings, LSF thresholds including negative alpha, linears —
because binarized networks amplify any last-bit difference into flipped
sign bits downstream.
"""

import numpy as np
import pytest

from repro import grad as G
from repro.binarize import SCALESBinaryConv2d, SCALESBinaryLinear
from repro.binarize.baselines import BiBERTBinaryLinear, E2FIFBinaryConv2d
from repro.deploy import (FastConvWeight, binary_gemm, binary_gemm_reference,
                          compile_model, conv_fast_layout, get_packed_backend,
                          pack_signs, packed_backend, set_packed_backend)
from repro.deploy.engine import PackedBinaryConv2d, PackedBinaryLinear
from repro.grad import Tensor, no_grad
from repro.nn import init


@pytest.fixture(autouse=True)
def _float32():
    with G.default_dtype("float32"):
        yield


def _forward(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _both_backends(packed, x):
    with packed_backend("reference"):
        ref = _forward(packed, x)
    with packed_backend("fast"):
        fast = _forward(packed, x)
    return ref, fast


class TestBackendSwitch:
    def test_default_is_fast(self):
        assert get_packed_backend() == "fast"

    def test_context_manager_restores(self):
        with packed_backend("reference"):
            assert get_packed_backend() == "reference"
        assert get_packed_backend() == "fast"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            set_packed_backend("turbo")


class TestGemmEquivalence:
    def test_optimized_gemm_matches_reference_gemm(self):
        rng = np.random.default_rng(0)
        for m, n, k in [(5, 3, 7), (130, 16, 64), (257, 33, 576), (64, 8, 1)]:
            a = pack_signs(np.where(rng.random((m, k)) > 0.5, 1.0, -1.0))
            b = pack_signs(np.where(rng.random((n, k)) > 0.5, 1.0, -1.0))
            np.testing.assert_array_equal(binary_gemm(a, b, k),
                                          binary_gemm_reference(a, b, k))

    def test_gemm_out_and_bt_params(self):
        rng = np.random.default_rng(1)
        a = pack_signs(np.where(rng.random((40, 100)) > 0.5, 1.0, -1.0))
        b = pack_signs(np.where(rng.random((6, 100)) > 0.5, 1.0, -1.0))
        expected = binary_gemm_reference(a, b, 100)
        out = np.empty((40, 6), dtype=np.int32)
        got = binary_gemm(a, b, 100, b_t=np.ascontiguousarray(b.T), out=out)
        assert got is out
        np.testing.assert_array_equal(got, expected)


class TestConvLayouts:
    def test_layout_heuristic(self):
        # Narrow inputs (image head) keep tight patch packing; wide
        # layers take word-gather bitplanes.
        assert conv_fast_layout(3, 3, 3) == "patch"
        assert conv_fast_layout(64, 3, 3) == "bitplane"
        assert conv_fast_layout(128, 3, 3) == "bitplane"

    @pytest.mark.parametrize("c_in,c_out,k,stride,padding", [
        (3, 16, 3, 1, 1),      # patch layout, padded
        (8, 8, 3, 2, 1),       # patch, strided
        (16, 16, 1, 1, 0),     # bitplane (words <= 3x patch), 1x1
        (16, 12, 3, 1, 1),     # bitplane, padded, C not a word multiple
        (64, 64, 3, 1, 1),     # bitplane, exact word multiple
        (6, 6, 5, 1, 2),       # patch, 5x5, padding 2
        (64, 32, 3, 2, 1),     # bitplane, strided
    ])
    def test_fast_bit_exact_vs_reference(self, c_in, c_out, k, stride, padding):
        init.seed(0)
        layer = E2FIFBinaryConv2d(c_in, c_out, k, stride=stride,
                                  padding=padding)
        layer.eval()
        packed = PackedBinaryConv2d.from_e2fif(layer)
        x = np.random.default_rng(1).normal(
            size=(2, c_in, 11, 9)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)

    def test_fast_weight_layouts_agree_on_dots(self):
        # The same weights packed both ways must produce identical dots.
        rng = np.random.default_rng(2)
        w = rng.normal(size=(6, 16, 3, 3))
        from repro.deploy import packed_conv2d_bits
        bits = np.zeros((2, 9, 9, 64), dtype=np.uint8)
        bits[:, 1:8, 1:8, :16] = rng.random((2, 7, 7, 16)) > 0.5
        bp = packed_conv2d_bits(bits, FastConvWeight(w, layout="bitplane"))
        patch = packed_conv2d_bits(
            np.ascontiguousarray(bits[..., :16]), FastConvWeight(w, layout="patch"))
        np.testing.assert_array_equal(bp, patch)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            FastConvWeight(np.zeros((2, 2, 3, 3)), layout="diagonal")

    def test_shared_cpad_layers_do_not_leak_stale_bits(self):
        # Two bitplane layers with different true channel counts (96 and
        # 128) pad to the same 128-channel bit image at the same spatial
        # size; the arena must not hand them one buffer (the 96-channel
        # layer would read the other's stale bits in channels 96:128).
        from repro.nn import Sequential
        init.seed(30)
        model = Sequential(E2FIFBinaryConv2d(128, 96, 3),
                           E2FIFBinaryConv2d(96, 64, 3))
        model.eval()
        compiled = compile_model(model)
        x = np.random.default_rng(31).normal(
            size=(1, 128, 6, 6)).astype(np.float32)
        with packed_backend("reference"):
            ref = _forward(compiled, x)
        fast = _forward(compiled, x)
        np.testing.assert_array_equal(fast, ref)


class TestThresholds:
    def test_scales_lsf_threshold(self):
        init.seed(0)
        layer = SCALESBinaryConv2d(8, 8, 3, use_spatial=False,
                                   use_channel=False)
        layer.binarizer.alpha.data[...] = 0.7
        layer.binarizer.beta.data[...] = np.random.default_rng(0).normal(
            size=layer.binarizer.beta.data.shape).astype(np.float32) * 0.1
        packed = PackedBinaryConv2d.from_scales(layer)
        x = np.random.default_rng(3).normal(size=(1, 8, 9, 9)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_allclose(fast, _forward(layer, x), rtol=0, atol=1e-5)

    def test_negative_alpha(self):
        init.seed(0)
        layer = SCALESBinaryConv2d(4, 4, 3)
        layer.binarizer.alpha.data[...] = -0.5
        packed = PackedBinaryConv2d.from_scales(layer)
        x = np.random.default_rng(4).normal(size=(1, 4, 6, 6)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)

    def test_values_exactly_at_threshold(self):
        init.seed(0)
        layer = SCALESBinaryConv2d(4, 4, 3, use_spatial=False,
                                   use_channel=False)
        layer.binarizer.beta.data[...] = 0.25
        packed = PackedBinaryConv2d.from_scales(layer)
        # beta and 0.25 are exactly representable: x == beta must binarize
        # to +1 on both paths.
        x = np.full((1, 4, 6, 6), 0.25, dtype=np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)


class TestLinear:
    def test_scales_linear_bit_exact(self):
        init.seed(0)
        layer = SCALESBinaryLinear(12, 12, skip=True)
        layer.binarizer.beta.data[...] = 0.05
        packed = PackedBinaryLinear.from_scales(layer)
        x = np.random.default_rng(5).normal(size=(2, 5, 12)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)

    def test_bibert_linear_bit_exact(self):
        init.seed(0)
        layer = BiBERTBinaryLinear(10, 14)
        packed = PackedBinaryLinear.from_bibert(layer)
        x = np.random.default_rng(6).normal(size=(3, 10)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)


class TestBatchNormTail:
    def test_eval_bn_matches_reference(self):
        init.seed(0)
        layer = E2FIFBinaryConv2d(4, 4, 3)
        layer.eval()
        layer.bn.running_mean[:] = [0.1, -0.2, 0.3, 0.0]
        layer.bn.running_var[:] = [1.5, 0.5, 2.0, 1.0]
        layer.bn.weight.data[:] = [1.1, 0.9, 1.0, 1.2]
        layer.bn.bias.data[:] = [0.05, -0.05, 0.0, 0.1]
        packed = PackedBinaryConv2d.from_e2fif(layer)
        x = np.random.default_rng(7).normal(size=(1, 4, 6, 6)).astype(np.float32)
        ref, fast = _both_backends(packed, x)
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_allclose(fast, _forward(layer, x), rtol=0, atol=1e-5)


class TestCompiledModels:
    @pytest.mark.parametrize("arch,scheme", [
        ("srresnet", "scales"), ("srresnet", "e2fif"), ("swinir", "bibert"),
    ])
    def test_whole_model_bit_exact_across_backends(self, arch, scheme):
        from repro.models import build_model
        init.seed(7)
        model = build_model(arch, scale=2, scheme=scheme, preset="tiny")
        compiled = compile_model(model)
        x = np.random.default_rng(8).random((1, 3, 8, 8)).astype(np.float32)
        with packed_backend("reference"):
            ref = _forward(compiled, x)
        fast = _forward(compiled, x)
        np.testing.assert_array_equal(fast, ref)

    def test_batch_rows_match_single_rows(self):
        # Batching is the pipeline's core assumption: row i of a batched
        # forward equals the same image alone.
        init.seed(9)
        layer = E2FIFBinaryConv2d(8, 8, 3)
        layer.eval()
        packed = PackedBinaryConv2d.from_e2fif(layer)
        x = np.random.default_rng(10).normal(size=(5, 8, 7, 7)).astype(np.float32)
        batched = _forward(packed, x)
        for i in range(5):
            np.testing.assert_array_equal(batched[i], _forward(packed, x[i:i + 1])[0])
