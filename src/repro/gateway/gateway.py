"""The HTTP gateway: a network front door over a worker pool.

This is the ROADMAP's "network front door + horizontal scale-out"
item: everything below (packed engine, micro-batcher, result cache,
typed shedding, graceful drain) already existed in-process; this layer
puts a socket in front of it and fans the zoo out across processes.

Shape of the thing::

    client ──HTTP──▶ Gateway (front door, routing, quotas)
                       │ consistent hash over (architecture, scheme,
                       │ scale) — each model's traffic pins to one
                       ▼ worker, so per-worker LRU/result caches hit
    worker 0..N-1: spawned processes, one ModelServer each, sharing
                   the artifact zoo directory (repro.gateway.worker)

Design decisions, and where each came from:

* **Routing by model key, not round-robin.**  A worker's value is its
  warm state (loaded models, result cache).  Consistent hashing
  (:mod:`repro.gateway.ring`) keeps each model's traffic on one
  worker, and moves only the dead worker's share on failure.
* **Admission control is layered, all of it typed.**  Per-client
  token buckets (:mod:`repro.gateway.quota`) answer 429 at the front
  door; a worker's queue-depth bound answers 429 via the serving
  layer's ``ServerBusy``; drain answers 503.  No request is ever
  silently dropped — the same never-strand contract ``ModelServer``
  keeps for futures, kept over HTTP.
* **Liveness + re-routing reuse the jobs-layer shape.**  The monitor
  thread is ``jobs/runner.py``'s lease loop in miniature: poll worker
  processes, respawn the dead (their in-flight requests fail fast at
  the proxy and re-route to the ring's next owner), and give up on a
  slot only after ``max_respawns`` consecutive deaths — the fruitless-
  death guard.  Proxy retries back off via the jobs layer's
  :class:`~repro.jobs.retry.RetryPolicy`, deterministic jitter and
  all.
* **Drain on SIGTERM is the PR 7 path end to end.**  The front door
  refuses new work (503), workers get SIGTERM and settle every
  admitted request through ``ModelServer.close(drain=True)``, then
  everything joins.  An in-flight client sees its result; a late
  client sees a typed refusal; nobody sees a reset connection.
"""

from __future__ import annotations

import http.client
import itertools
import logging
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..deploy.registry import classify_recipe
from ..deploy.revision import CanaryConfig, CanaryController, RevisionStore
from ..deploy.serialize import scan_artifact_dir
from ..grad import thread_default_dtype
from ..infer.pipeline import InferencePipeline
from ..jobs.retry import RetryPolicy
from ..serve.metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    families_from_dump,
    render_families,
)
from ..serve.server import (
    ModelKey,
    ServerConfig,
    model_label,
    parse_model_key,
)
from ..serve.telemetry import Telemetry
from . import wire
from .quota import QuotaRegistry
from .ring import HashRing
from .worker import worker_main

__all__ = ["Gateway", "GatewayConfig"]

#: Structured gateway events (see :mod:`repro.api.logs`).
_LOG = logging.getLogger("repro.gateway")

#: ``repro_canary_state`` gauge encoding.
_CANARY_STATES = {"idle": 0, "verifying": 1, "promoted": 2, "demoted": -1}


@dataclass
class GatewayConfig:
    """Operational knobs of :class:`Gateway`.

    host / port:
        Front-door bind address; port ``0`` picks an ephemeral port
        (read it back from ``Gateway.address``).
    n_workers:
        Worker processes in the pool.
    server:
        Per-worker :class:`~repro.serve.ServerConfig` (``None`` =
        defaults).  Its ``drain_timeout_s`` bounds each worker's
        SIGTERM drain.
    ring_replicas:
        Virtual nodes per worker on the hash ring.
    quota_rate_per_s / quota_burst:
        Per-client token bucket (``None`` rate disables metering).
    retry:
        Backoff between proxy re-route attempts; ``retry.max_attempts``
        bounds how many distinct workers one request may try.
    liveness_interval_s:
        Monitor poll period for dead-worker detection.
    max_respawns:
        Consecutive deaths after which a worker slot is abandoned
        (removed from the ring) instead of respawned forever.
    worker_start_timeout_s:
        How long to wait for a spawned worker's ready message.
    proxy_timeout_s:
        Socket timeout per proxied request (covers a worker's full
        queue + flush time, so it sits well above the result timeout).
    canary:
        Rollout policy (:class:`repro.deploy.CanaryConfig`).  Canary
        verification only runs while a candidate revision of a served
        model sits in the artifact directory, so the default-on policy
        costs nothing in the common single-revision case.
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_workers: int = 2
    server: Optional[ServerConfig] = None
    ring_replicas: int = 64
    quota_rate_per_s: Optional[float] = None
    quota_burst: float = 10.0
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, base_delay_s=0.05, max_delay_s=0.5))
    liveness_interval_s: float = 0.25
    max_respawns: int = 3
    worker_start_timeout_s: float = 120.0
    proxy_timeout_s: float = 90.0
    canary: CanaryConfig = field(default_factory=CanaryConfig)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass
class _WorkerSlot:
    """One pool slot: the live process behind a ring node."""

    slot: int
    process: multiprocessing.process.BaseProcess
    port: int
    respawns: int = 0
    abandoned: bool = False


class _FrontHTTPServer(ThreadingHTTPServer):
    """Front-door HTTP server; handlers reach the gateway through it."""

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler, gateway: "Gateway") -> None:
        super().__init__(address, handler)
        self.gateway = gateway


class _FrontHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    server: _FrontHTTPServer

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, body: bytes,
               content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        gateway = self.server.gateway
        if self.path == "/healthz":
            body = wire.dumps(gateway.health())
            self._reply(503 if gateway.draining else 200, body)
        elif self.path == "/models":
            self._reply(200, wire.dumps({
                "models": ["/".join((a, s, f"x{x}"))
                           for a, s, x in sorted(gateway.catalog)]}))
        elif self.path == "/stats":
            self._reply(200, wire.dumps(gateway.stats()))
        elif self.path == "/metrics":
            self._reply(200, gateway.metrics_text().encode("utf-8"),
                        content_type=EXPOSITION_CONTENT_TYPE)
        elif self.path == "/revisions":
            self._reply(200, wire.dumps(gateway.revision_status()))
        else:
            self._reply(404, wire.error_body(
                "error", f"no route {self.path}")[1])

    def do_POST(self) -> None:
        if self.path != "/infer":
            self._reply(404, wire.error_body(
                "error", f"no route {self.path}")[1])
            return
        gateway = self.server.gateway
        client_id = self.headers.get("X-Client-Id", "anonymous")
        request_id = self.headers.get("X-Request-Id") or None
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        self._reply(*gateway.proxy_infer(body, client_id,
                                         request_id=request_id))


class Gateway:
    """Front door + worker pool over an artifact zoo directory.

    Start it, read ``address``, point HTTP clients at it (or use
    :class:`repro.gateway.GatewayClient`); ``close()`` drains.  Also a
    context manager.
    """

    def __init__(self, artifact_dir, config: Optional[GatewayConfig] = None,
                 ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.artifact_dir = str(artifact_dir)
        #: Servable zoo keys — the same filter ModelServer applies, so
        #: the front door's 404s agree with its workers'.
        self.catalog: Set[ModelKey] = set()
        infos, _ = scan_artifact_dir(artifact_dir)
        for info in infos:
            if classify_recipe(info.recipe).deployable:
                self.catalog.add(info.key)
        if not self.catalog:
            raise ValueError(
                f"no servable deploy artifacts in {artifact_dir!s}")
        self.telemetry = Telemetry()
        self.metrics = MetricsRegistry()
        #: Durable revision bookkeeping + the canary state machine over
        #: it (versioned rollout; see :mod:`repro.deploy.revision`).
        self.revisions = RevisionStore(artifact_dir)
        self.canary = CanaryController(self.revisions, self.config.canary)
        self._canary_lock = threading.Lock()
        self._canary_pipelines: Dict[Tuple[ModelKey, int],
                                     InferencePipeline] = {}
        self._request_seq = itertools.count()
        self.draining = False
        self._closed = False
        self._quotas = QuotaRegistry(self.config.quota_rate_per_s,
                                     self.config.quota_burst)
        self._ctx = multiprocessing.get_context("spawn")
        self._ring = HashRing(replicas=self.config.ring_replicas)
        self._workers: Dict[int, _WorkerSlot] = {}
        self._workers_lock = threading.Lock()
        self._monitor_pause = threading.Event()
        self._rollout_threads: List[threading.Thread] = []
        self._init_metrics()
        try:
            for slot in range(self.config.n_workers):
                self._start_worker(slot)
            self._httpd = _FrontHTTPServer(
                (self.config.host, self.config.port), _FrontHandler, self)
        except Exception:
            self._terminate_workers(graceful=False)
            raise
        self._front_thread = threading.Thread(
            target=self._httpd.serve_forever, name="gateway-front",
            daemon=True)
        self._front_thread.start()
        self._monitor_stop = threading.Event()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="gateway-monitor", daemon=True)
        self._monitor_thread.start()

    # -- metrics -----------------------------------------------------------

    def _init_metrics(self) -> None:
        """Register the ``repro_gateway_*`` / ``repro_canary_*`` families.

        Front-door totals the telemetry already counts are published as
        scrape-time callbacks; canary lifecycle events increment their
        counters inline where they happen.  Worker-pool liveness is a
        per-slot gauge so a scraper sees exactly which slot died.
        """
        for name, help in (
            ("requests", "Requests arriving at the front door."),
            ("proxied", "Requests answered by a worker."),
            ("reroutes", "Retry attempts against another ring owner."),
            ("unrouted", "Requests that exhausted every live worker."),
        ):
            self.metrics.func(
                f"repro_gateway_{name}_total", help, "counter",
                (lambda n: lambda: self.telemetry.counter(n))(name))
        self.metrics.func(
            "repro_gateway_shed_total",
            "Requests refused at the front door, by reason.",
            "counter",
            lambda: [
                ({"reason": "draining"},
                 self.telemetry.counter("shed_draining")),
                ({"reason": "quota"}, self.telemetry.counter("shed_quota")),
            ])
        self.metrics.func(
            "repro_gateway_worker_respawns_total",
            "Dead workers respawned by the monitor.", "counter",
            lambda: self.telemetry.counter("worker_respawns"))
        self.metrics.func(
            "repro_gateway_workers_abandoned_total",
            "Worker slots abandoned after repeated deaths.", "counter",
            lambda: self.telemetry.counter("workers_abandoned"))

        def worker_alive():
            with self._workers_lock:
                return [
                    ({"worker": str(slot)},
                     1.0 if (not w.abandoned and w.process.is_alive())
                     else 0.0)
                    for slot, w in sorted(self._workers.items())
                ]

        self.metrics.func(
            "repro_gateway_worker_alive",
            "Per-slot worker liveness (1 = alive, 0 = dead/abandoned).",
            "gauge", worker_alive)
        self._m_canary_samples = self.metrics.counter(
            "repro_canary_samples_total",
            "Requests shadow-verified against a candidate revision.",
            ("model",))
        self._m_canary_mismatches = self.metrics.counter(
            "repro_canary_mismatches_total",
            "Shadow verifications where the candidate diverged.",
            ("model",))
        self._m_canary_promotions = self.metrics.counter(
            "repro_canary_promotions_total",
            "Candidate revisions promoted to active.", ("model",))
        self._m_canary_demotions = self.metrics.counter(
            "repro_canary_demotions_total",
            "Candidate revisions demoted on a parity mismatch.",
            ("model",))

        def canary_state():
            return [
                ({"model": label}, _CANARY_STATES.get(entry["state"], 0))
                for label, entry in sorted(self.canary.snapshot().items())
            ]

        self.metrics.func(
            "repro_canary_state",
            "Rollout state per model (0 idle, 1 verifying, 2 promoted, "
            "-1 demoted).", "gauge", canary_state)

    def metrics_text(self) -> str:
        """The merged ``/metrics`` exposition text: the gateway's own
        families plus every live worker's, each worker's samples tagged
        ``worker="<slot>"`` so per-process series stay distinguishable
        under one ``# TYPE`` block per family."""
        families = list(self.metrics.collect())
        with self._workers_lock:
            live = [(slot, w.port) for slot, w in sorted(self._workers.items())
                    if not w.abandoned and w.process.is_alive()]
        for slot, port in live:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5.0)
            try:
                conn.request("GET", "/metrics.json")
                response = conn.getresponse()
                dump = wire.loads(response.read())
                families.extend(
                    families_from_dump(dump, {"worker": str(slot)}))
            except (OSError, http.client.HTTPException, wire.WireError,
                    ValueError):
                continue  # a dying worker must not break the scrape
            finally:
                conn.close()
        return render_families(families)

    # -- worker pool -------------------------------------------------------

    def _spawn(self, slot: int) -> Tuple:
        """Spawn one worker and block until it reports its port."""
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(slot, self.artifact_dir, self.config.server, child),
            name=f"gateway-worker-{slot}", daemon=True)
        process.start()
        child.close()
        if not parent.poll(timeout=self.config.worker_start_timeout_s):
            process.terminate()
            raise RuntimeError(
                f"worker {slot} did not report ready within "
                f"{self.config.worker_start_timeout_s:g}s")
        kind, payload = parent.recv()
        parent.close()
        if kind != "ready":
            process.join(timeout=5.0)
            raise RuntimeError(f"worker {slot} failed to start: {payload}")
        return process, payload

    def _start_worker(self, slot: int, respawns: int = 0) -> None:
        process, port = self._spawn(slot)
        with self._workers_lock:
            self._workers[slot] = _WorkerSlot(
                slot=slot, process=process, port=port, respawns=respawns)
            self._ring.add(slot)

    def _monitor(self) -> None:
        """Liveness loop — ``jobs/runner.py``'s lease re-dispatch shape:
        a dead worker's slot leaves the ring (in-flight requests fail
        fast at the proxy and re-route), gets respawned, and rejoins;
        a slot that keeps dying is abandoned after ``max_respawns``."""
        while not self._monitor_stop.wait(self.config.liveness_interval_s):
            if self._monitor_pause.is_set():
                # A rolling restart is deliberately cycling workers;
                # respawning them here would race it (two processes
                # for one slot).
                continue
            for slot in list(self._workers):
                with self._workers_lock:
                    worker = self._workers.get(slot)
                    if worker is None or worker.abandoned:
                        continue
                    if worker.process.is_alive():
                        continue
                    # Dead: route around it before anything else.
                    self._ring.remove(slot)
                    worker.respawns += 1
                    abandon = worker.respawns > self.config.max_respawns
                    worker.abandoned = abandon
                if self._monitor_stop.is_set():
                    return
                if abandon:
                    self.telemetry.count("workers_abandoned")
                    continue
                self.telemetry.count("worker_respawns")
                try:
                    self._start_worker(slot, respawns=worker.respawns)
                except RuntimeError:
                    # Startup itself failed; the slot's dead entry is
                    # still in the table, so the next poll tick burns
                    # another respawn toward the abandonment cap.
                    self.telemetry.count("worker_respawn_failures")

    def _terminate_workers(self, graceful: bool) -> None:
        with self._workers_lock:
            workers = [w for w in self._workers.values() if not w.abandoned]
        if graceful:
            for worker in workers:
                if worker.process.is_alive():
                    worker.process.terminate()  # SIGTERM → worker drain
        timeout = 30.0 if graceful else 5.0
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(
                timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck drain
                worker.process.kill()
                worker.process.join(timeout=5.0)

    # -- front-door request handling ---------------------------------------

    def proxy_infer(self, body: bytes, client_id: str,
                    request_id: Optional[str] = None) -> Tuple[int, bytes]:
        """Route one ``/infer`` body to its worker; returns
        ``(status, response body)``.

        Layered admission first (drain 503, quota 429), then the ring
        walk: connection failures and worker-drain 503s exclude that
        worker and try the next ring owner after a jittered backoff,
        up to ``retry.max_attempts`` distinct workers.  Worker
        responses are forwarded byte-for-byte.

        While a candidate revision of the requested model is under
        rollout, a sampled fraction of successful requests is
        shadow-verified: the client's bytes still come from the
        incumbent, and the candidate's output for the same input is
        compared bit-for-bit after the fact — so a bad candidate is
        demoted without any client ever seeing its output or an error.
        """
        t0 = time.monotonic()
        if request_id is None:
            request_id = f"gw-{os.getpid():x}-{next(self._request_seq):06x}"
        self.telemetry.count("requests")
        if self.draining:
            self.telemetry.count("shed_draining")
            return 503, wire.error_body(
                "busy", "gateway draining", retryable=True)[1]
        if not self._quotas.try_acquire(client_id):
            self.telemetry.count("shed_quota")
            return 429, wire.error_body(
                "busy", f"client {client_id!r} over quota",
                retryable=True)[1]
        try:
            request = wire.loads(body)
            if not isinstance(request, dict) or "model" not in request:
                raise wire.WireError(
                    "request must be an object with 'model' and 'image'")
            key = parse_model_key(str(request["model"]))
        except (wire.WireError, ValueError) as exc:
            return 400, wire.error_body("error", str(exc))[1]
        if key not in self.catalog:
            known = ", ".join("/".join((a, s, f"x{x}"))
                              for a, s, x in sorted(self.catalog))
            return 404, wire.error_body(
                "error", f"no artifact for model {key}; available: "
                f"{known}")[1]
        route_key = model_label(key)
        tried: Set[int] = set()
        last_unavailable: Optional[Tuple[int, bytes]] = None
        for attempt in range(self.config.retry.max_attempts):
            with self._workers_lock:
                slot = self._ring.route(route_key, exclude=tried)
                port = (self._workers[slot].port
                        if slot is not None else None)
            if slot is None:
                break
            if attempt > 0:
                self.telemetry.count("reroutes")
                time.sleep(self.config.retry.delay_s(route_key, attempt - 1))
            try:
                status, payload = self._forward(port, body, request_id)
            except (OSError, http.client.HTTPException):
                tried.add(slot)
                last_unavailable = (503, wire.error_body(
                    "busy", f"worker {slot} unavailable",
                    retryable=True)[1])
                continue
            if status == 503:
                # The worker is draining or closed: it answered, but it
                # is on its way out — the next ring owner can serve.
                tried.add(slot)
                last_unavailable = (status, payload)
                continue
            self.telemetry.count("proxied")
            if status == 200 and self.canary.should_sample(key):
                self._verify_canary(key, request, payload, request_id)
            _LOG.info("proxy", extra={"repro_fields": {
                "request_id": request_id,
                "model": route_key,
                "client_id": client_id,
                "worker": slot,
                "status": status,
                "attempts": attempt + 1,
                "total_s": round(time.monotonic() - t0, 6),
            }})
            return status, payload
        self.telemetry.count("unrouted")
        _LOG.info("proxy", extra={"repro_fields": {
            "request_id": request_id,
            "model": route_key,
            "client_id": client_id,
            "status": 503,
            "outcome": "unrouted",
            "attempts": len(tried),
        }})
        if last_unavailable is not None:
            return last_unavailable
        return 503, wire.error_body(
            "busy", "no live workers", retryable=True)[1]

    def _forward(self, port: int, body: bytes,
                 request_id: Optional[str] = None) -> Tuple[int, bytes]:
        """One proxy attempt against one worker (fresh connection)."""
        headers = {"Content-Type": "application/json",
                   "Content-Length": str(len(body))}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=self.config.proxy_timeout_s)
        try:
            conn.request("POST", "/infer", body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    # -- canary rollout ----------------------------------------------------

    def refresh_revisions(self) -> None:
        """Re-scan the artifact directory for new revisions (e.g. after
        an export dropped a candidate next to the incumbent)."""
        self.revisions.refresh()

    def _canary_pipeline(self, key: ModelKey,
                         revision: int, path) -> InferencePipeline:
        """The cached in-gateway pipeline for one candidate revision."""
        cache_key = (key, revision)
        pipeline = self._canary_pipelines.get(cache_key)
        if pipeline is None:
            pipeline = InferencePipeline(
                str(path),
                clip=(self.config.server.clip
                      if self.config.server is not None else True))
            self._canary_pipelines[cache_key] = pipeline
        return pipeline

    def _drop_canary_pipelines(self, key: ModelKey) -> None:
        for cache_key in [k for k in self._canary_pipelines if k[0] == key]:
            self._canary_pipelines.pop(cache_key).close()

    def _verify_canary(self, key: ModelKey, request: Dict,
                       payload: bytes, request_id: str) -> None:
        """Shadow-verify one sampled request against the candidate.

        The client's response (``payload``, from the incumbent) is
        already decided; this compares the candidate's output for the
        same input bit-for-bit and drives the rollout state machine.
        Served outputs are deterministic, so any divergence — different
        bytes, shape, dtype, or the candidate failing to run at all —
        is proof of a bad artifact and demotes it on the spot.  Errors
        here never propagate to the request path.
        """
        label = model_label(key)
        try:
            with self._canary_lock:
                info = self.canary.candidate_info(key)
                if info is None:
                    return
                image = wire.decode_array(request["image"])
                served = wire.decode_array(wire.loads(payload)["output"])
                dtype = (self.config.server.dtype
                         if self.config.server is not None else None)
                # Same dtype scope the workers' ModelServer uses, over
                # both load and execution, so parity means parity.
                if dtype is not None:
                    with thread_default_dtype(dtype):
                        pipeline = self._canary_pipeline(
                            key, info.revision, info.path)
                        candidate = pipeline(image)
                else:
                    pipeline = self._canary_pipeline(
                        key, info.revision, info.path)
                    candidate = pipeline(image)
                matched = (candidate.shape == served.shape
                           and candidate.dtype == served.dtype
                           and np.array_equal(candidate, served))
                detail = ("" if matched else
                          f"candidate revision {info.revision} diverged "
                          f"from incumbent on request {request_id}")
        except Exception as exc:
            # A candidate that cannot even be loaded/run is a bad
            # artifact by definition: demote it rather than sampling
            # forever.  The client already has its (incumbent) answer.
            matched = False
            info = self.canary.candidate_info(key)
            if info is None:
                return
            detail = (f"candidate revision {info.revision} failed "
                      f"verification: {type(exc).__name__}: {exc}")
        self._m_canary_samples.labels(model=label).inc()
        state = self.canary.record(key, matched, detail)
        if not matched:
            self._m_canary_mismatches.labels(model=label).inc()
        if state == "demoted":
            self._m_canary_demotions.labels(model=label).inc()
            self._drop_canary_pipelines(key)
            _LOG.warning("canary_demoted", extra={"repro_fields": {
                "request_id": request_id, "model": label,
                "candidate": info.revision, "detail": detail,
            }})
        elif state == "promoted":
            self._m_canary_promotions.labels(model=label).inc()
            self._drop_canary_pipelines(key)
            _LOG.info("canary_promoted", extra={"repro_fields": {
                "request_id": request_id, "model": label,
                "candidate": info.revision,
            }})
            if self.config.canary.restart_workers_on_promote:
                thread = threading.Thread(
                    target=self._rolling_restart,
                    name="gateway-rollout", daemon=True)
                self._rollout_threads.append(thread)
                thread.start()

    def _rolling_restart(self) -> None:
        """Cycle the worker pool one slot at a time so live traffic
        picks up a newly promoted revision.

        Each slot leaves the ring, drains via SIGTERM (every admitted
        request is answered), and is respawned — the rest of the pool
        keeps serving throughout, so a promotion is invisible to
        clients beyond briefly re-routed traffic.
        """
        self._monitor_pause.set()
        try:
            for slot in sorted(self._workers):
                if self._monitor_stop.is_set():
                    return
                with self._workers_lock:
                    worker = self._workers.get(slot)
                    if worker is None or worker.abandoned:
                        continue
                    self._ring.remove(slot)
                process = worker.process
                if process.is_alive():
                    process.terminate()  # SIGTERM → graceful drain
                process.join(timeout=30.0)
                if process.is_alive():  # pragma: no cover - stuck drain
                    process.kill()
                    process.join(timeout=5.0)
                try:
                    self._start_worker(slot, respawns=worker.respawns)
                except RuntimeError:
                    # The monitor's respawn accounting takes over once
                    # unpaused; the slot's dead entry stays visible.
                    self.telemetry.count("worker_respawn_failures")
            self.telemetry.count("rollouts_completed")
            _LOG.info("rollout_complete", extra={"repro_fields": {
                "workers": len(self._workers)}})
        finally:
            self._monitor_pause.clear()

    def rollout_complete(self, timeout: Optional[float] = None) -> bool:
        """Block until any in-progress post-promotion rolling restart
        finishes; returns ``False`` on timeout."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for thread in list(self._rollout_threads):
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(timeout=remaining)
            if thread.is_alive():
                return False
        return True

    def revision_status(self) -> Dict:
        """Rollout state for ``/revisions``: on-disk revisions, the
        active one, and canary progress per model."""
        return {
            "revisions": self.revisions.snapshot(),
            "canary": self.canary.snapshot(),
        }

    # -- observability -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The front door's bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def health(self) -> Dict:
        with self._workers_lock:
            workers = {
                str(slot): {
                    "alive": worker.process.is_alive(),
                    "port": worker.port,
                    "respawns": worker.respawns,
                    "abandoned": worker.abandoned,
                }
                for slot, worker in sorted(self._workers.items())
            }
        return {
            "status": "draining" if self.draining else "ok",
            "models": len(self.catalog),
            "workers": workers,
        }

    def stats(self) -> Dict:
        """Gateway counters plus each live worker's ``stats()`` snapshot
        (which surfaces, among others, the serving layer's ``coalesced``
        counter)."""
        stats = {
            "gateway": {
                name: self.telemetry.counter(name)
                for name in ("requests", "proxied", "reroutes",
                             "shed_quota", "shed_draining", "unrouted",
                             "worker_respawns", "workers_abandoned")
            },
            "clients": self._quotas.clients(),
            "revisions": self.revisions.snapshot(),
            "canary": self.canary.snapshot(),
            "workers": {},
        }
        with self._workers_lock:
            live = [(slot, w.port) for slot, w in self._workers.items()
                    if not w.abandoned and w.process.is_alive()]
        for slot, port in live:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5.0)
            try:
                conn.request("GET", "/stats")
                response = conn.getresponse()
                stats["workers"][str(slot)] = wire.loads(response.read())
            except (OSError, http.client.HTTPException, wire.WireError):
                stats["workers"][str(slot)] = {"error": "unreachable"}
            finally:
                conn.close()
        return stats

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the gateway; with ``drain`` every admitted request is
        answered before sockets go down.

        Order: flag the front door draining (new ``/infer`` → 503) →
        stop the monitor (so dead workers are final, not respawned) →
        SIGTERM the pool (each worker settles its admitted work via
        ``ModelServer.close(drain=True)`` and exits 0) → join workers →
        shut the front door, joining its handler threads.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.draining = True
        self._monitor_stop.set()
        # A rolling restart mid-close would race worker teardown;
        # rollout threads check _monitor_stop between slots, so this
        # join is bounded by one worker drain.
        for thread in self._rollout_threads:
            thread.join(timeout=60.0)
        self._monitor_thread.join(timeout=10.0)
        self._terminate_workers(graceful=drain)
        self._httpd.shutdown()
        self._front_thread.join(timeout=10.0)
        self._httpd.server_close()
        with self._canary_lock:
            for pipeline in self._canary_pipelines.values():
                pipeline.close()
            self._canary_pipelines.clear()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
