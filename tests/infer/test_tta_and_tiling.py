"""Self-ensemble and tiled inference."""

import numpy as np
import pytest

from repro import grad as G
from repro.data import benchmark_suite
from repro.infer import (DIHEDRAL_TRANSFORMS, plan_tiles, self_ensemble,
                         tiled_super_resolve)
from repro.infer.tiling import _tile_starts
from repro.metrics import psnr_y
from repro.models import build_model
from repro.nn import Module, init
from repro.train import super_resolve


class _Bilinear(Module):
    """Deterministic stand-in model: nearest-neighbour x2 upscale."""

    def forward(self, x):
        data = np.repeat(np.repeat(x.data, 2, axis=2), 2, axis=3)
        from repro.grad import Tensor
        return Tensor(data)


class TestDihedralTransforms:
    def test_eight_distinct_transforms(self):
        rng = np.random.default_rng(0)
        img = rng.random((6, 8, 3))
        results = {DIHEDRAL_TRANSFORMS[i][0](img).tobytes()
                   for i in range(8)}
        assert len(results) == 8

    def test_inverses_cancel(self):
        rng = np.random.default_rng(1)
        img = rng.random((5, 7, 3))
        for forward_t, inverse_t in DIHEDRAL_TRANSFORMS:
            np.testing.assert_array_equal(inverse_t(forward_t(img)), img)


class TestSelfEnsemble:
    def test_equivariant_model_unchanged(self):
        # A transform-equivariant model makes the ensemble a no-op, which
        # checks the inverse bookkeeping precisely.
        model = _Bilinear()
        rng = np.random.default_rng(2)
        img = rng.random((6, 6, 3)).astype(np.float32)
        single = super_resolve(model, img)
        ensembled = self_ensemble(model, img, n_transforms=8)
        np.testing.assert_allclose(ensembled, single, atol=1e-6)

    def test_n_transforms_one_equals_plain(self):
        with G.default_dtype("float32"):
            init.seed(0)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            img = np.random.default_rng(3).random((8, 8, 3)).astype(np.float32)
            np.testing.assert_allclose(self_ensemble(model, img, 1),
                                       np.clip(super_resolve(model, img), 0, 1),
                                       atol=1e-6)

    def test_bad_n_transforms(self):
        with pytest.raises(ValueError):
            self_ensemble(_Bilinear(), np.zeros((4, 4, 3)), 0)
        with pytest.raises(ValueError):
            self_ensemble(_Bilinear(), np.zeros((4, 4, 3)), 9)

    def test_ensemble_at_least_matches_single_on_average(self):
        # Averaging dihedral predictions is a variance reduction; on a
        # real (non-equivariant) model it should not hurt materially.
        with G.default_dtype("float32"):
            init.seed(1)
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny")
            pairs = benchmark_suite("urban100", 2, 3, (32, 32))
            deltas = []
            for pair in pairs:
                single = psnr_y(np.clip(super_resolve(model, pair.lr), 0, 1),
                                pair.hr, shave=2)
                plus = psnr_y(self_ensemble(model, pair.lr, 8), pair.hr, shave=2)
                deltas.append(plus - single)
            assert np.mean(deltas) > -0.1


class TestTileStarts:
    def test_small_input_single_tile(self):
        assert _tile_starts(10, 16, 8) == [0]

    def test_flush_right_coverage(self):
        starts = _tile_starts(20, 8, 6)
        assert starts[-1] == 12
        covered = set()
        for s in starts:
            covered.update(range(s, s + 8))
        assert covered == set(range(20))


class TestPlanTiles:
    """The shared tiling geometry used by tiled_super_resolve AND
    deploy.TiledInference."""

    def test_full_coverage_after_trim(self):
        for h, w, tile, overlap in [(37, 41, 16, 8), (20, 14, 8, 4),
                                    (64, 64, 16, 6), (10, 50, 12, 2)]:
            plan = plan_tiles(h, w, tile, overlap)
            covered = np.zeros((h, w), dtype=int)
            th, tw = plan.tile_h, plan.tile_w
            for s in plan.tiles:
                covered[s.y0 + s.top:s.y0 + th - s.bottom,
                        s.x0 + s.left:s.x0 + tw - s.right] += 1
            assert (covered >= 1).all(), (h, w, tile, overlap)

    def test_borders_never_trimmed(self):
        plan = plan_tiles(40, 40, 16, 8)
        th, tw = plan.tile_h, plan.tile_w
        for s in plan.tiles:
            if s.y0 == 0:
                assert s.top == 0
            if s.x0 == 0:
                assert s.left == 0
            if s.y0 + th == 40:
                assert s.bottom == 0
            if s.x0 + tw == 40:
                assert s.right == 0

    def test_interior_edges_trimmed(self):
        plan = plan_tiles(40, 40, 16, 8)
        th = plan.tile_h
        interior = [s for s in plan.tiles if 0 < s.y0 and s.y0 + th < 40]
        assert interior
        assert all(s.top == s.bottom == plan.trim == 4 for s in interior)

    def test_small_input_single_tile(self):
        plan = plan_tiles(10, 12, 48, 8)
        assert len(plan) == 1
        assert (plan.tile_h, plan.tile_w) == (10, 12)

    def test_validation(self):
        with pytest.raises(ValueError, match="tile"):
            plan_tiles(20, 20, 0, 0)
        with pytest.raises(ValueError, match="overlap"):
            plan_tiles(20, 20, 8, 8)
        with pytest.raises(ValueError, match="trim"):
            plan_tiles(20, 20, 8, 4, trim=3)


class TestBatchedSelfEnsemble:
    def test_batched_matches_sequential(self):
        with G.default_dtype("float32"):
            init.seed(3)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            img = np.random.default_rng(6).random((8, 8, 3)).astype(np.float32)
            for n in (1, 4, 8):
                seq = self_ensemble(model, img, n, batched=False)
                bat = self_ensemble(model, img, n, batched=True)
                np.testing.assert_allclose(bat, seq, atol=1e-6)

    def test_batched_with_threads(self):
        with G.default_dtype("float32"):
            init.seed(4)
            model = build_model("srresnet", scale=2, scheme="e2fif",
                                preset="tiny")
            img = np.random.default_rng(7).random((10, 8, 3)).astype(np.float32)
            seq = self_ensemble(model, img, 8, batched=False)
            bat = self_ensemble(model, img, 8, batched=True, n_threads=4)
            np.testing.assert_allclose(bat, seq, atol=1e-6)

    def test_rectangular_image_groups_shapes(self):
        # Non-square inputs force two shape groups (H,W) and (W,H).
        model = _Bilinear()
        rng = np.random.default_rng(8)
        img = rng.random((6, 10, 3)).astype(np.float32)
        seq = self_ensemble(model, img, 8, batched=False)
        bat = self_ensemble(model, img, 8, batched=True)
        np.testing.assert_allclose(bat, seq, atol=1e-6)


class TestTiledSuperResolve:
    def test_matches_whole_image_for_local_model(self):
        # Nearest-neighbour upscale is purely local: tiling must be exact.
        model = _Bilinear()
        rng = np.random.default_rng(4)
        img = rng.random((20, 14, 3))
        whole = np.clip(super_resolve(model, img), 0, 1)
        tiled = tiled_super_resolve(model, img, scale=2, tile=8, overlap=4)
        np.testing.assert_allclose(tiled, whole, atol=1e-6)

    def test_close_to_whole_image_for_real_model(self):
        with G.default_dtype("float32"):
            init.seed(2)
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny")
            img = np.random.default_rng(5).random((24, 24, 3)).astype(np.float32)
            whole = np.clip(super_resolve(model, img), 0, 1)
            tiled = tiled_super_resolve(model, img, scale=2, tile=16, overlap=8)
            # Seam bands may differ slightly; the bulk must agree.
            assert np.abs(tiled - whole).mean() < 0.01

    def test_window_multiple_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            tiled_super_resolve(_Bilinear(), np.zeros((16, 16, 3)), 2,
                                tile=10, lr_multiple=4)

    def test_overlap_validation(self):
        with pytest.raises(ValueError, match="overlap"):
            tiled_super_resolve(_Bilinear(), np.zeros((16, 16, 3)), 2,
                                tile=8, overlap=8)

    def test_output_geometry(self):
        out = tiled_super_resolve(_Bilinear(), np.zeros((18, 10, 3)), 2,
                                  tile=8, overlap=2)
        assert out.shape == (36, 20, 3)
