"""ExperimentPreset.as_train_config — the presets -> TrainConfig bridge."""

from repro.experiments import FULL, QUICK
from repro.train import TrainConfig


def test_cnn_train_config_mirrors_preset():
    config = QUICK.as_train_config()
    assert isinstance(config, TrainConfig)
    assert config.steps == QUICK.steps
    assert config.batch_size == QUICK.batch_size
    assert config.patch_size == QUICK.patch_size
    assert config.lr == QUICK.lr
    assert config.lr_step == QUICK.lr_step
    assert config.seed == QUICK.seed


def test_transformer_train_config_uses_transformer_knobs():
    config = FULL.as_train_config(transformer=True)
    assert config.steps == FULL.transformer_steps
    assert config.patch_size == FULL.transformer_patch
    assert config.batch_size == FULL.transformer_batch


def test_overrides_win():
    config = QUICK.as_train_config(steps=3, loss="l2")
    assert config.steps == 3
    assert config.loss == "l2"
