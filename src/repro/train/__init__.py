"""Training harness: losses, trainer, evaluation."""

from .classification import (
    CLASS_KINDS,
    ClassifierTrainer,
    SyntheticClassificationDataset,
    accuracy,
    cross_entropy,
)
from .loss import LOSSES, charbonnier_loss, get_loss, l1_loss, l2_loss
from .trainer import (
    EvalResult,
    TrainConfig,
    Trainer,
    evaluate,
    evaluate_bicubic,
    super_resolve,
)

__all__ = [
    "CLASS_KINDS", "ClassifierTrainer", "SyntheticClassificationDataset",
    "accuracy", "cross_entropy",
    "LOSSES", "charbonnier_loss", "get_loss", "l1_loss", "l2_loss",
    "EvalResult", "TrainConfig", "Trainer", "evaluate", "evaluate_bicubic",
    "super_resolve",
]
