"""Markdown report generator: one document with every regenerated artifact.

``python -m repro.experiments.report out.md`` runs the fast experiments
(Tables I/II/VI, Figs. 3-5) plus, with ``--trained``, the training-based
ones, and writes a self-contained paper-vs-measured report.
"""

from __future__ import annotations

import argparse
import io
import sys
from typing import List

from .registry import DESCRIPTIONS, run
from .tables import (
    PAPER_TABLE3_X4,
    PAPER_TABLE5,
    PAPER_TABLE6_ROWS,
    format_rows,
    format_table1,
)

FAST_EXPERIMENTS = ["table1", "table2", "table6", "fig3", "fig4", "fig5"]
TRAINED_EXPERIMENTS = ["table3", "table4", "table5", "fig1", "fig9"]


def _render(name: str, result) -> str:
    out = io.StringIO()
    out.write(f"\n## {name}: {DESCRIPTIONS[name]}\n\n```\n")
    if name == "table1":
        out.write(format_table1(result))
    elif isinstance(result, list) and result and isinstance(result[0], dict):
        out.write(format_rows(result))
    elif isinstance(result, dict):
        for key, value in result.items():
            if hasattr(value, "rows"):
                out.write(f"{key}: spread={value.spread:.3f} "
                          f"center_var={value.center_variation:.3f}\n")
            elif isinstance(value, list) and value and isinstance(value[0], float):
                out.write(f"{key}: {[round(v, 3) for v in value]}\n")
    out.write("\n```\n")
    return out.getvalue()


def _paper_reference_section() -> str:
    lines = ["\n## Paper reference values\n", "```"]
    lines.append("Table III (x4): " + ", ".join(
        f"{k}: set5={v.get('set5')}, urban={v.get('urban100')}"
        for k, v in PAPER_TABLE3_X4.items()))
    lines.append("Table V OPs: " + ", ".join(
        f"{k}={v['ops_g']}G" for k, v in PAPER_TABLE5.items()))
    lines.append("Table VI latency: " + ", ".join(
        f"{k}={v}ms" for k, v in PAPER_TABLE6_ROWS.items()))
    lines.append("```")
    return "\n".join(lines)


def generate_report(include_trained: bool = False) -> str:
    """Run experiments and return the markdown report."""
    names: List[str] = list(FAST_EXPERIMENTS)
    if include_trained:
        names += TRAINED_EXPERIMENTS
    parts = ["# SCALES reproduction report\n",
             "Regenerated tables/figures (see EXPERIMENTS.md for the "
             "paper-vs-measured discussion).\n"]
    for name in names:
        parts.append(_render(name, run(name)))
    parts.append(_paper_reference_section())
    return "".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="generate reproduction report")
    parser.add_argument("output", nargs="?", default="-",
                        help="output file (default: stdout)")
    parser.add_argument("--trained", action="store_true",
                        help="include the training-based experiments (slow)")
    args = parser.parse_args(argv)
    report = generate_report(include_trained=args.trained)
    if args.output == "-":
        print(report)
    else:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
