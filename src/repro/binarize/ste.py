"""Straight-through estimators for binarization.

Implements the activation binarization function of SCALES (Eq. 1) with the
paper's hand-derived gradients:

* Eq. (2): gradient of ``x_hat = alpha * sign((x - beta)/alpha)`` w.r.t. the
  layer-wise scaling factor ``alpha``;
* Eq. (3): gradient w.r.t. the channel-wise threshold ``beta``;
* the Bi-Real-style piecewise-polynomial approximation of ``d sign(u)/du``
  (``g(u) = 2+2u`` on (-1, 0], ``2-2u`` on (0, 1], 0 outside) for the
  gradient w.r.t. the input ``x``.

The three formulas are consistent: the paper keeps the *forward* sign exact
and substitutes the polynomial only when differentiating, i.e.

``d x_hat / d alpha = sign(u) - u * g(u)``  with ``u = (x - beta)/alpha``,

which expands exactly to the four branches printed in Eq. (2).
"""

from __future__ import annotations

import numpy as np

from ..grad import Tensor, custom_op

#: Forward sign maps 0 to +1 so binary codes stay in {-1, +1}.
def _hard_sign(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0, -1.0)


def _poly_sign_grad(u: np.ndarray) -> np.ndarray:
    """Piecewise-polynomial surrogate for d sign(u)/du (Bi-Real Net)."""
    g = np.zeros_like(u)
    left = (u > -1.0) & (u <= 0.0)
    right = (u > 0.0) & (u <= 1.0)
    g[left] = 2.0 + 2.0 * u[left]
    g[right] = 2.0 - 2.0 * u[right]
    return g


def sign_ste(x: Tensor, clip_value: float = 1.0) -> Tensor:
    """Plain binarization ``sign(x)`` with clipped identity STE.

    This is the activation binarizer of E2FIF and the BiBERT baseline.
    """
    data = _hard_sign(x.data)

    def backward(grad, send):
        send(x, grad * (np.abs(x.data) <= clip_value))

    return custom_op((x,), data, backward)


def approx_sign_ste(x: Tensor) -> Tensor:
    """``sign(x)`` with the piecewise-polynomial gradient (Bi-Real Net)."""
    data = _hard_sign(x.data)

    def backward(grad, send):
        send(x, grad * _poly_sign_grad(x.data))

    return custom_op((x,), data, backward)


def lsf_binarize(x: Tensor, alpha: Tensor, beta: Tensor,
                 min_alpha: float = 1e-3) -> Tensor:
    """SCALES activation binarization (Eq. 1) with Eq. 2/3 gradients.

    ``x_hat = alpha * sign((x - beta) / alpha)``

    Parameters
    ----------
    x:
        Activations; any shape.
    alpha:
        Layer-wise scaling factor, broadcastable to ``x`` (scalar per layer
        in the paper).
    beta:
        Channel-wise threshold, broadcastable to ``x``.
    min_alpha:
        Numerical floor: alpha is clamped away from zero in the forward
        computation so the division stays defined.
    """
    alpha_safe = np.where(np.abs(alpha.data) < min_alpha,
                          np.where(alpha.data < 0, -min_alpha, min_alpha),
                          alpha.data)
    u = (x.data - beta.data) / alpha_safe
    s = _hard_sign(u)
    data = alpha_safe * s

    def backward(grad, send):
        g_poly = _poly_sign_grad(u)
        # Eq. (2): sign(u) - u * g(u); saturates to -1 / +1 outside [-1, 1].
        send(alpha, grad * (s - u * g_poly))
        # Eq. (3): -g(u).
        send(beta, grad * (-g_poly))
        # d x_hat / d x = g(u).
        send(x, grad * g_poly)

    return custom_op((x, alpha, beta), data, backward)
