"""End-to-end perf gate: batched tile pipeline vs the sequential seed path.

PR 1 made the kernels fast; this benchmark gates the *orchestration*:
full-image super-resolution through the packed engine, batched
(all tiles stacked into large-M GEMM batches), buffer-reusing (the
per-thread workspace arena) and bit-domain (fused threshold -> packed
im2col), against the retained seed execution — one tile at a time
through the reference float64 sign-plane kernels
(``REPRO_PACKED_IMPL=reference`` + ``TiledInference(batched=False)``).

Every timing comparison first asserts the two paths produce *identical*
outputs, so the trajectory numbers can never drift from a silently
diverging implementation.  Measurements append to
``BENCH_e2e_tiled_sr.json``.

Set ``REPRO_PERF_SMOKE=1`` (the CI perf-smoke job) to run only the
equivalence assertions with tiny shapes — no timing thresholds, so
loaded shared runners cannot flake the build.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_pipeline.py -v``.
"""

import os

import numpy as np
import pytest

from repro import grad as G
from repro.binarize.scales_layers import SCALESBinaryConv2d
from repro.deploy import TiledInference, compile_model, packed_backend
from repro.grad import Tensor, no_grad
from repro.infer import InferencePipeline, get_num_threads
from repro.nn import Sequential, init
from repro.perf import bench, record_bench, speedup
from repro.train import super_resolve

#: Gate from the PR acceptance criteria.
MIN_E2E_SPEEDUP = 3.0

SMOKE = bool(os.environ.get("REPRO_PERF_SMOKE"))


def _record(benchmark, ref, fast, ratio, **extra):
    entry = {
        "benchmark": benchmark,
        "reference": ref.to_dict(),
        "optimized": fast.to_dict(),
        "speedup": ratio,
        **extra,
    }
    try:
        record_bench("e2e_tiled_sr", entry)
    except OSError:  # pragma: no cover - read-only checkout
        pass


def _scales_model(channels, depth):
    """A paper-style LSF-only SCALES body (the Table VI latency story)."""
    init.seed(0)
    layers = [SCALESBinaryConv2d(3, channels, 3, use_spatial=False,
                                 use_channel=False)]
    for _ in range(depth - 2):
        layers.append(SCALESBinaryConv2d(channels, channels, 3,
                                         use_spatial=False, use_channel=False,
                                         skip=True))
    layers.append(SCALESBinaryConv2d(channels, 3, 3, use_spatial=False,
                                     use_channel=False))
    return Sequential(*layers)


class TestE2ETiledSR:
    def _paths(self, channels, depth, tile, overlap, batch_size):
        model = _scales_model(channels, depth)
        compiled = compile_model(model)
        seed = TiledInference(compiled, tile=tile, overlap=overlap,
                              batched=False)
        fast = TiledInference(compiled, tile=tile, overlap=overlap,
                              batched=True, batch_size=batch_size)
        return seed, fast

    def test_equivalence_small(self):
        """Smoke-sized: batched+fast output == sequential+reference output."""
        with G.default_dtype("float32"):
            seed, fast = self._paths(channels=16, depth=3, tile=16,
                                     overlap=8, batch_size=4)
            x = Tensor(np.random.default_rng(0)
                       .random((1, 3, 41, 37)).astype(np.float32))
            with no_grad():
                with packed_backend("reference"):
                    expected = seed(x).data
                actual = fast(x).data
            np.testing.assert_array_equal(actual, expected)

    def test_pipeline_equivalence_small(self):
        """The serving API returns exactly what super_resolve returns."""
        with G.default_dtype("float32"):
            model = compile_model(_scales_model(16, 3))
            rng = np.random.default_rng(1)
            images = [rng.random((12, 10, 3)).astype(np.float32)
                      for _ in range(4)]
            outs = InferencePipeline(model, batch_size=2).map(images)
            for img, out in zip(images, outs):
                np.testing.assert_array_equal(
                    out, np.clip(super_resolve(model, img), 0.0, 1.0))

    @pytest.mark.skipif(SMOKE, reason="REPRO_PERF_SMOKE: equivalence only")
    def test_e2e_tiled_sr_3x(self):
        """>= 3x on a 128x128 input, bit-identical outputs."""
        with G.default_dtype("float32"):
            seed, fast = self._paths(channels=64, depth=4, tile=32,
                                     overlap=8, batch_size=16)
            x = Tensor(np.random.default_rng(2)
                       .random((1, 3, 128, 128)).astype(np.float32))
            with no_grad():
                with packed_backend("reference"):
                    expected = seed(x).data
                actual = fast(x).data
                np.testing.assert_array_equal(actual, expected)

                with packed_backend("reference"):
                    ref = bench(lambda: seed(x), label="tiled_sr/seed_sequential",
                                warmup=1, repeats=3)
                opt = bench(lambda: fast(x), label="tiled_sr/batched_pipeline",
                            warmup=1, repeats=3)
            ratio = speedup(ref, opt)
            _record("e2e_tiled_sr_128", ref, opt, ratio,
                    image=[128, 128], tile=32, overlap=8, tile_batch=16,
                    channels=64, depth=4, n_threads=get_num_threads())
            assert ratio >= MIN_E2E_SPEEDUP, (
                f"batched tiled SR is only {ratio:.2f}x the sequential seed "
                f"path (need >= {MIN_E2E_SPEEDUP}x)")

    @pytest.mark.skipif(SMOKE, reason="REPRO_PERF_SMOKE: equivalence only")
    def test_pipeline_micro_batching_recorded(self):
        """Informational: serving-layer micro-batch vs one-at-a-time."""
        with G.default_dtype("float32"):
            model = compile_model(_scales_model(32, 3))
            rng = np.random.default_rng(3)
            images = [rng.random((48, 48, 3)).astype(np.float32)
                      for _ in range(8)]
            pipe = InferencePipeline(model, batch_size=8)
            expected = [np.clip(super_resolve(model, img), 0.0, 1.0)
                        for img in images]
            for out, exp in zip(pipe.map(images), expected):
                np.testing.assert_array_equal(out, exp)

            one_at_a_time = bench(
                lambda: [super_resolve(model, img) for img in images],
                label="pipeline/one_at_a_time", warmup=1, repeats=3)
            batched = bench(lambda: pipe.map(images),
                            label="pipeline/micro_batched", warmup=1,
                            repeats=3)
            _record("pipeline_micro_batch", one_at_a_time, batched,
                    speedup(one_at_a_time, batched),
                    images=8, image_size=[48, 48], batch_size=8,
                    n_threads=get_num_threads())
            # No timing floor: micro-batching mainly wins per-call
            # overhead; the assertion above already proved equivalence.
