"""Journal presenter: collapse a journal into a progress table.

``python -m repro.jobs status journal.jsonl`` replays the journal and
renders one row per ``(model, shard)`` — items, done, retries,
quarantined, and per-item latency percentiles — plus a per-model
rollup, a run summary line, and any audit findings.  Latency comes
from :class:`repro.serve.telemetry.LatencyHistogram`: one histogram
per shard, merged into per-model and run-wide rollups, so a journal of
a million items still presents from a few dozen integers per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..serve.telemetry import LatencyHistogram
from .journal import JournalState, audit_journal, replay_journal

__all__ = ["ShardRow", "summarize", "render_status", "format_status"]


@dataclass
class ShardRow:
    """Aggregated journal state of one ``(model, shard)`` group."""

    model: str
    shard: str
    items: int = 0
    done: int = 0
    leased: int = 0
    #: journaled transient failures across the shard's items
    retries: int = 0
    quarantined: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)


def summarize(state: JournalState) -> List[ShardRow]:
    """One :class:`ShardRow` per ``(model, shard)``, stably sorted."""
    rows: Dict[Tuple[str, str], ShardRow] = {}
    for entry in state.items.values():
        key = (entry.model, entry.shard)
        row = rows.get(key)
        if row is None:
            row = rows[key] = ShardRow(model=entry.model, shard=entry.shard)
        row.items += 1
        row.retries += entry.failures
        if entry.status == "done":
            row.done += 1
        elif entry.status == "leased":
            row.leased += 1
        elif entry.status == "quarantined":
            row.quarantined += 1
        for seconds in entry.seconds:
            row.latency.record(seconds)
    return [rows[key] for key in sorted(rows)]


def _shard_sort_key(shard: str) -> Tuple:
    # "model#3" sorts numerically by shard index, not lexically.
    base, _, index = shard.rpartition("#")
    return (base, int(index)) if index.isdigit() else (shard, -1)


def render_status(state: JournalState) -> List[str]:
    """The status table as a list of lines (joined by the CLI)."""
    rows = summarize(state)
    rows.sort(key=lambda r: (r.model, _shard_sort_key(r.shard)))

    header = (f"{'model':<24} {'shard':>6} {'items':>6} {'done':>6} "
              f"{'retry':>6} {'quar':>5} {'p50 ms':>9} {'p95 ms':>9}")
    lines = [header, "-" * len(header)]

    def latency_cells(hist: LatencyHistogram) -> Tuple[str, str]:
        if hist.count == 0:
            return "-", "-"
        return (f"{hist.percentile(50) * 1e3:.1f}",
                f"{hist.percentile(95) * 1e3:.1f}")

    def emit(label: str, shard: str, row: ShardRow) -> None:
        p50, p95 = latency_cells(row.latency)
        lines.append(
            f"{label:<24} {shard:>6} {row.items:>6} {row.done:>6} "
            f"{row.retries:>6} {row.quarantined:>5} {p50:>9} {p95:>9}")

    current_model = None
    model_total: ShardRow = ShardRow(model="", shard="")
    run_total: ShardRow = ShardRow(model="", shard="")

    def flush_model() -> None:
        if current_model is not None and model_total.items:
            emit(f"{current_model} (all)", "", model_total)

    for row in rows:
        if row.model != current_model:
            flush_model()
            current_model = row.model
            model_total = ShardRow(model=row.model, shard="")
        shard_index = row.shard.rpartition("#")[2]
        emit(row.model, f"#{shard_index}", row)
        for total in (model_total, run_total):
            total.items += row.items
            total.done += row.done
            total.retries += row.retries
            total.quarantined += row.quarantined
            total.latency.merge(row.latency)
    flush_model()

    lines.append("-" * len(header))
    emit("total", "", run_total)

    counts = state.counts()
    progress = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    lines.append("")
    lines.append(f"run: {'complete' if state.complete else 'in progress'}"
                 f" ({progress or 'no items'})"
                 + (f", resumed x{len(state.runs) - 1}"
                    if len(state.runs) > 1 else ""))
    findings = audit_journal(state)
    for finding in findings:
        lines.append(f"audit: {finding}")
    if not findings:
        lines.append("audit: clean (no duplicate processing)")
    return lines


def format_status(journal_path) -> str:
    """Replay ``journal_path`` and render the full status block."""
    return "\n".join(render_status(replay_journal(journal_path)))
