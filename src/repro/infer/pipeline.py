"""Micro-batching inference pipeline — the serving-layer API.

:class:`InferencePipeline` is the front door for running many images
through one SR model the way a serving process would: callers
``submit()`` images as they arrive and read results later; the pipeline
groups pending images by shape, stacks each group into NCHW batches of
``batch_size``, and fans the batches out over the inference thread pool
(:mod:`repro.infer.parallel`).  Large inputs can be routed through the
batched tiled path (:func:`repro.infer.tiling.tiled_super_resolve`)
instead, bounding peak memory by the tile size.

The batching is purely an execution-strategy change: convolution
batches are processed per-slice by the kernels, so a pipeline result is
identical to a one-at-a-time ``super_resolve`` call.

Typical use::

    pipeline = InferencePipeline(compiled_model, batch_size=8)
    handles = [pipeline.submit(img) for img in images]
    outputs = [h.result() for h in handles]     # flushes on first read

    # or simply
    outputs = pipeline.map(images)
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..grad import Tensor, no_grad
from .parallel import parallel_map
from .tiling import tiled_super_resolve

__all__ = ["DiscardedError", "InferencePipeline", "PendingResult",
           "PipelineHooks"]


class DiscardedError(RuntimeError):
    """``result()`` was called on a handle removed by
    :meth:`InferencePipeline.discard_pending`.  Raised immediately —
    a discarded submission can never produce a result, so blocking (or
    re-flushing the queue forever) would wedge the caller."""


class PipelineHooks:
    """Observer interface for an external scheduler / telemetry sink.

    Subclass and override what you need; the default implementation is
    a no-op, so the pipeline costs nothing when unobserved.  The serve
    layer (:mod:`repro.serve`) uses these to record batch occupancy and
    batch latency without the pipeline knowing telemetry exists.

    ``on_batch`` fires once per executed model forward on the batched
    path (it may fire from a worker thread); ``on_flush`` fires once
    per ``flush()`` that processed at least one image, from the thread
    driving the flush.
    """

    def on_batch(self, n_images: int, seconds: float) -> None:
        """One micro-batch of ``n_images`` ran in ``seconds``."""

    def on_flush(self, n_images: int, seconds: float) -> None:
        """One ``flush()`` completed ``n_images`` in ``seconds``."""


class PendingResult:
    """Handle for a submitted image; ``result()`` flushes if needed."""

    __slots__ = ("_pipeline", "_value", "_ready", "_discarded")

    def __init__(self, pipeline: "InferencePipeline"):
        self._pipeline = pipeline
        self._value: Optional[np.ndarray] = None
        self._ready = False
        self._discarded = False

    def done(self) -> bool:
        return self._ready

    def discarded(self) -> bool:
        return self._discarded

    def result(self) -> np.ndarray:
        """The super-resolved image (runs the pipeline if still pending).

        A handle removed by :meth:`InferencePipeline.discard_pending`
        raises :class:`DiscardedError` immediately: its image is no
        longer queued, so no amount of flushing can ever resolve it.
        """
        if self._discarded:
            raise DiscardedError(
                "this submission was discarded (discard_pending) and "
                "will never produce a result")
        if not self._ready:
            self._pipeline.flush()
        if not self._ready:  # pragma: no cover - defensive
            raise RuntimeError(
                "pipeline flush did not produce a result for this handle")
        return self._value

    def _set(self, value: np.ndarray) -> None:
        self._value = value
        self._ready = True


class InferencePipeline:
    """Batched, thread-parallel inference over submitted images.

    ``submit()`` is safe to call from any thread (the queue is locked);
    execution itself is driven by whichever thread calls ``flush()`` /
    ``result()`` — concurrent flushes process disjoint queue snapshots.

    Parameters
    ----------
    model:
        SR model mapping NCHW to NCHW (e.g. a ``compile_model`` output),
        or the path of a packed deploy artifact
        (:func:`repro.deploy.serialize.save_artifact`) — the serving
        process never touches the float model.
    batch_size:
        Images per model forward when micro-batching same-shape images
        (also the tile batch size on the tiled path).
    tile / tile_overlap:
        When ``tile`` is given, every image runs through the batched
        tiled path instead of a whole-image forward; ``scale`` is then
        required (tile placement needs the upsampling factor up front).
    scale:
        The model's upsampling factor; only used by the tiled path.
    n_threads:
        Worker threads for batches (default: the global setting, see
        :func:`repro.infer.parallel.get_num_threads`).
    clip:
        Clip outputs to [0, 1] (the convention of every SR entry point
        in this repo; disable for raw residual outputs).
    hooks:
        Optional :class:`PipelineHooks` observer — the pluggable
        scheduler/telemetry attachment point.
    """

    def __init__(self, model, batch_size: int = 8,
                 tile: Optional[int] = None, tile_overlap: int = 8,
                 scale: Optional[int] = None,
                 n_threads: Optional[int] = None, clip: bool = True,
                 hooks: Optional[PipelineHooks] = None):
        if isinstance(model, (str, os.PathLike)):
            # The pipeline drives tiling itself (tile=/scale=), so load
            # the bare packed graph, ignoring the artifact's own tiling.
            from ..deploy.serialize import load_artifact
            model = load_artifact(model, tile=None)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if tile is not None and scale is None:
            raise ValueError(
                "tiled pipelines need the model's scale factor up front "
                "(pass scale=...)")
        if tile is not None and not clip:
            raise ValueError(
                "clip=False is not supported on the tiled path: "
                "tiled_super_resolve blends per-tile outputs already "
                "clipped to [0, 1]")
        self.model = model
        self.batch_size = batch_size
        self.tile = tile
        self.tile_overlap = tile_overlap
        self.scale = scale
        self.n_threads = n_threads
        self.clip = clip
        self.hooks = hooks if hooks is not None else PipelineHooks()
        self._pending: List[Tuple[np.ndarray, PendingResult, float]] = []
        self._queue_lock = threading.Lock()
        self._closed = False
        #: Counters: submitted/completed images, batches run, largest batch.
        self.stats: Dict[str, int] = {
            "submitted": 0, "completed": 0, "batches": 0, "max_batch": 0}

    @classmethod
    def from_config(cls, model, config, scale: Optional[int] = None,
                    hooks: Optional[PipelineHooks] = None
                    ) -> "InferencePipeline":
        """Build a pipeline from an :class:`repro.api.EngineConfig`-style
        object (anything with ``batch_size`` / ``tile`` / ``tile_overlap``
        / ``n_threads`` / ``clip`` attributes) — how the typed facade
        (:class:`repro.api.Engine`) instantiates its execution layer."""
        return cls(model, batch_size=config.batch_size, tile=config.tile,
                   tile_overlap=config.tile_overlap, scale=scale,
                   n_threads=config.n_threads, clip=config.clip, hooks=hooks)

    def submit(self, lr_image: np.ndarray) -> PendingResult:
        """Queue an ``(H, W, 3)`` image; returns a result handle."""
        lr_image = np.asarray(lr_image)
        if lr_image.ndim != 3:
            raise ValueError(
                f"expected an (H, W, C) image, got shape {lr_image.shape}")
        handle = PendingResult(self)
        with self._queue_lock:
            if self._closed:
                raise RuntimeError(
                    "cannot submit to a closed InferencePipeline")
            self._pending.append((lr_image, handle, time.monotonic()))
        self.stats["submitted"] += 1
        return handle

    def oldest_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds the oldest queued image has waited (None if empty)."""
        with self._queue_lock:
            if not self._pending:
                return None
            enqueued = self._pending[0][2]
        return (time.monotonic() if now is None else now) - enqueued

    def due(self, budget_s: float, now: Optional[float] = None) -> bool:
        """Is a flush warranted under a ``budget_s`` latency budget?

        True when a full micro-batch is queued (nothing to gain by
        waiting) or the oldest queued image has already waited
        ``budget_s`` — the flush-deadline policy a serving loop polls.
        """
        with self._queue_lock:
            if not self._pending:
                return False
            if len(self._pending) >= self.batch_size:
                return True
            enqueued = self._pending[0][2]
        return (time.monotonic() if now is None else now) - enqueued >= budget_s

    def flush_if_due(self, budget_s: float,
                     now: Optional[float] = None) -> bool:
        """``flush()`` when :meth:`due`; returns whether it flushed."""
        if not self.due(budget_s, now):
            return False
        self.flush()
        return True

    def flush(self) -> None:
        """Run every pending image; all outstanding handles become ready.

        If the model raises, completed handles keep their results and
        the unprocessed images stay queued — a later ``flush()`` (or
        ``result()``) retries them instead of silently dropping them.
        The queue swap is locked, so a ``submit()`` racing a concurrent
        flush can never be dropped (it lands in the next flush).
        """
        with self._queue_lock:
            taken, self._pending = self._pending, []
        if not taken:
            return
        started = time.monotonic()
        try:
            if self.tile is not None:
                self._flush_tiled(taken)
            else:
                self._flush_batched(taken)
        finally:
            unprocessed = [entry for entry in taken if not entry[1]._ready]
            if unprocessed:
                with self._queue_lock:
                    self._pending = unprocessed + self._pending
            completed = len(taken) - len(unprocessed)
            if completed:
                self.hooks.on_flush(completed, time.monotonic() - started)

    def _flush_tiled(self, taken) -> None:
        for image, handle, _ in taken:
            sr = tiled_super_resolve(
                self.model, image, self.scale, tile=self.tile,
                overlap=self.tile_overlap, batch_size=self.batch_size,
                n_threads=self.n_threads)
            handle._set(sr)
            self.stats["completed"] += 1

    def _flush_batched(self, taken) -> None:
        groups: Dict[Tuple[int, ...], List[Tuple[np.ndarray, PendingResult]]] = {}
        for image, handle, _ in taken:
            groups.setdefault(image.shape, []).append((image, handle))
        batches: List[List[Tuple[np.ndarray, PendingResult]]] = []
        for group in groups.values():
            for i in range(0, len(group), self.batch_size):
                batches.append(group[i:i + self.batch_size])

        def run(batch: List[Tuple[np.ndarray, PendingResult]]):
            stacked = np.stack([img.transpose(2, 0, 1) for img, _ in batch])
            t0 = time.monotonic()
            out = np.asarray(self.model(Tensor(stacked)).data)
            return out, time.monotonic() - t0

        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                outputs = parallel_map(run, batches, self.n_threads)
        finally:
            self.model.train(was_training)

        for batch, (out, seconds) in zip(batches, outputs):
            self.stats["batches"] += 1
            self.stats["max_batch"] = max(self.stats["max_batch"], len(batch))
            self.hooks.on_batch(len(batch), seconds)
            for (_, handle), sr in zip(batch, out):
                sr = sr.transpose(1, 2, 0)
                if self.clip:
                    sr = np.clip(sr, 0.0, 1.0)
                handle._set(sr)
                self.stats["completed"] += 1

    def discard_pending(self, handles) -> int:
        """Drop queued images whose handle is in ``handles``; returns count.

        The cancellation path for layers driving the pipeline from
        outside (the model server): after a failed flush the offending
        submissions can be removed instead of poisoning every later
        flush of this model.  Handles already completed (or not queued
        here) are ignored.
        """
        targets = set(handles)
        with self._queue_lock:
            before = len(self._pending)
            kept, dropped = [], []
            for entry in self._pending:
                (dropped if entry[1] in targets else kept).append(entry)
            self._pending = kept
            for _, handle, _ in dropped:
                # Mark while still holding the lock, so a racing
                # result() either finds the entry queued or finds the
                # handle marked — never a silent limbo in between.
                handle._discarded = True
            return before - len(kept)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pipeline: drop the model, discard queued work.

        The eviction path of layers that cycle many pipelines (the
        model server's LRU registry, the bulk-jobs engine cache): the
        model's packed weights and staging buffers become collectable
        immediately instead of living until the garbage collector finds
        the cycle.  Any still-queued submission is marked discarded —
        its ``result()`` raises a typed :class:`DiscardedError` rather
        than blocking forever — and later ``submit()`` calls raise.
        Idempotent.
        """
        with self._queue_lock:
            if self._closed:
                return
            self._closed = True
            dropped, self._pending = self._pending, []
            for _, handle, _ in dropped:
                handle._discarded = True
        self.model = None

    def map(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Submit ``images``, flush once, and return results in order."""
        handles = [self.submit(img) for img in images]
        self.flush()
        return [h.result() for h in handles]

    def __call__(self, lr_image: np.ndarray) -> np.ndarray:
        """Single-image convenience: submit + flush + result."""
        return self.submit(lr_image).result()

    def pending(self) -> int:
        """Number of images queued but not yet run."""
        return len(self._pending)
