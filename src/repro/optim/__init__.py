"""Optimizers and learning-rate schedules."""

from .adam import Adam
from .sgd import SGD
from .schedule import CosineLR, StepLR

__all__ = ["Adam", "SGD", "CosineLR", "StepLR"]
