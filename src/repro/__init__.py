"""repro — reproduction of "SCALES: Boost Binary Neural Network for Image
Super-Resolution with Efficient Scalings" (DATE 2025).

Subpackages
-----------
``repro.grad``
    NumPy autograd engine (the PyTorch substitute).
``repro.nn`` / ``repro.optim``
    Layers, module system, optimizers.
``repro.binarize``
    The paper's contribution (SCALES layers) and all baseline binarizers.
``repro.models``
    SRResNet / EDSR / RDN / RCAN / SwinIR / HAT plus classifier references.
``repro.data``
    Synthetic DIV2K/benchmark substitutes, bicubic degradation, sampling.
``repro.metrics`` / ``repro.cost`` / ``repro.train`` / ``repro.analysis``
    PSNR/SSIM, params/OPs/latency accounting, training, activation study.
``repro.experiments``
    Drivers regenerating every table and figure.
"""

from . import (analysis, binarize, cost, data, experiments, grad, metrics,
               models, nn, optim, train)

__version__ = "0.1.0"

__all__ = [
    "analysis", "binarize", "cost", "data", "experiments", "grad",
    "metrics", "models", "nn", "optim", "train", "__version__",
]
