"""Tests for the params/OPs cost model."""

import numpy as np
import pytest

from repro import grad as G
from repro.binarize import get_conv_factory
from repro.cost import CostReport, count_cost, count_cost_for_hr, count_params
from repro.models import build_model
from repro.nn import Conv2d, Linear, Sequential

from ..helpers import rng


class TestCostReport:
    def test_effective_formulas(self):
        report = CostReport(fp_params=100, binary_params=3200,
                            fp_ops=1000, binary_ops=64000)
        assert report.params_effective == pytest.approx(100 + 100)
        assert report.ops_effective == pytest.approx(1000 + 1000)

    def test_scaled_only_ops(self):
        report = CostReport(fp_params=10, binary_params=32,
                            fp_ops=100, binary_ops=640,
                            per_layer=[("a", "Conv2d", 100.0, 640.0)])
        doubled = report.scaled(2.0)
        assert doubled.fp_ops == 200 and doubled.binary_ops == 1280
        assert doubled.fp_params == 10
        assert doubled.per_layer[0][2] == 200.0


class TestCountParams:
    def test_fp_conv_all_fp(self):
        conv = Conv2d(3, 8, 3)
        fp, binary = count_params(conv)
        assert fp == 3 * 8 * 9 + 8 and binary == 0

    def test_binary_conv_weight_is_binary(self):
        layer = get_conv_factory("scales")(8, 8, 3)
        fp, binary = count_params(layer)
        assert binary == 8 * 8 * 9
        assert fp > 0  # bias, alpha/beta, side branches

    def test_weight_only_layer_binary_weights(self):
        layer = get_conv_factory("weight_only")(4, 4, 3)
        fp, binary = count_params(layer)
        assert binary == 4 * 4 * 9

    def test_bn_running_stats_counted(self):
        from repro.nn import BatchNorm2d
        bn = BatchNorm2d(16)
        fp, _ = count_params(bn)
        assert fp == 16 * 4  # weight, bias, running mean, running var


class TestCountCost:
    def test_single_conv_ops(self):
        model = Sequential(Conv2d(3, 8, 3))
        report = count_cost(model, (1, 3, 10, 10))
        # 10*10*8*3*9 MACs * 2 ops
        assert report.fp_ops == pytest.approx(10 * 10 * 8 * 3 * 9 * 2)
        assert report.binary_ops == 0

    def test_linear_ops(self):
        class Wrap(Sequential):
            def forward(self, x):
                x = G.reshape(x, (1, -1))
                return super().forward(x)
        model = Wrap(Linear(300, 5))
        report = count_cost(model, (1, 3, 10, 10))
        assert report.fp_ops == pytest.approx(300 * 5 * 2)

    def test_binary_conv_ops_in_binary_pool(self):
        model = Sequential(get_conv_factory("e2fif")(4, 4, 3))
        report = count_cost(model, (1, 4, 8, 8))
        assert report.binary_ops == pytest.approx(8 * 8 * 4 * 4 * 9 * 2)
        assert report.fp_ops > 0  # its BatchNorm

    def test_area_scaling(self):
        model = Sequential(Conv2d(3, 4, 3))
        small = count_cost(model, (1, 3, 8, 8))
        scaled = count_cost(model, (1, 3, 8, 8), target_lr_hw=(16, 16))
        assert scaled.fp_ops == pytest.approx(small.fp_ops * 4)

    def test_scaling_matches_direct_count_for_conv_net(self):
        model = build_model("srresnet", scale=2, scheme="fp", preset="tiny")
        direct = count_cost(model, (1, 3, 24, 24))
        extrapolated = count_cost(model, (1, 3, 12, 12), target_lr_hw=(24, 24))
        assert extrapolated.fp_ops == pytest.approx(direct.fp_ops, rel=0.02)

    def test_eval_mode_restored(self):
        model = build_model("srresnet", scale=2, scheme="fp", preset="tiny")
        model.train()
        count_cost(model, (1, 3, 8, 8))
        assert model.training


class TestPaperScaleNumbers:
    def test_fp_srresnet_params_match_paper(self):
        """Paper Table III: FP SRResNet = 1517K params; ours within 5%."""
        model = build_model("srresnet", scale=4, scheme="fp", preset="paper")
        report = count_cost_for_hr(model, scale=4)
        assert report.params_effective == pytest.approx(1517e3, rel=0.05)

    def test_binary_models_massively_smaller(self):
        fp = build_model("srresnet", scale=4, scheme="fp", preset="paper")
        fp_report = count_cost_for_hr(fp, scale=4)
        binary = build_model("srresnet", scale=4, scheme="scales",
                             preset="paper", light_tail=True, head_kernel=3)
        b_report = count_cost_for_hr(binary, scale=4)
        assert fp_report.params_effective / b_report.params_effective > 10
        assert fp_report.ops_effective / b_report.ops_effective > 20

    def test_scales_cheaper_than_e2fif(self):
        """The Table III claim: SCALES has fewer params AND ops than E2FIF."""
        kwargs = dict(preset="paper", light_tail=True, head_kernel=3)
        scales = count_cost_for_hr(
            build_model("srresnet", scale=4, scheme="scales", **kwargs), scale=4)
        e2fif = count_cost_for_hr(
            build_model("srresnet", scale=4, scheme="e2fif", **kwargs), scale=4)
        assert scales.params_effective < e2fif.params_effective
        assert scales.ops_effective < e2fif.ops_effective

    def test_ablation_ops_ordering(self):
        """Table V ordering: LSF < +chl < +spatial < SCALES < E2FIF."""
        kwargs = dict(preset="paper", light_tail=True, head_kernel=3)
        ops = {}
        for scheme in ["scales_lsf", "scales_lsf_channel", "scales_lsf_spatial",
                       "scales", "e2fif"]:
            model = build_model("srresnet", scale=4, scheme=scheme, **kwargs)
            ops[scheme] = count_cost(model, (1, 3, 16, 16),
                                     target_lr_hw=(128, 128)).ops_effective
        assert (ops["scales_lsf"] < ops["scales_lsf_channel"]
                < ops["scales_lsf_spatial"] < ops["scales"] < ops["e2fif"])

    def test_transformer_param_reduction(self):
        """Table IV: large params reduction for binary SwinIR (the paper
        reports ~12x with its lightweight tail; ours with the same light
        tail lands >5x because LayerNorm/bias/branch params stay FP)."""
        fp = count_cost_for_hr(
            build_model("swinir", scale=2, scheme="fp", preset="paper",
                        light_tail=True),
            scale=2, window_multiple=8)
        binary = count_cost_for_hr(
            build_model("swinir", scale=2, scheme="scales", preset="paper",
                        light_tail=True),
            scale=2, window_multiple=8)
        assert fp.params_effective / binary.params_effective > 5
