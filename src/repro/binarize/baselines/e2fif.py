"""E2FIF binary convolution (Lang et al., the paper's prior-art CNN baseline).

End-to-end full-precision information flow: a plain ``sign`` binarizes
activations, weights use the per-channel l1 scale, BatchNorm follows the
binary conv (this BN is exactly the FP cost SCALES removes in Table V),
and a full-precision identity skip carries information across every layer.
No spatial / channel / layer / image adaptivity (Table I row: all ✗, Low
hardware cost).
"""

from __future__ import annotations

from typing import Optional

from ... import grad as G
from ...grad import Tensor
from ...nn import BatchNorm2d, Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class E2FIFBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = False):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.bn = BatchNorm2d(out_channels)
        self.skip = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        xb = approx_sign_ste(x)
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        out = self.bn(out)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "E2FIF", "spatial": False, "channel": False,
                "layer": False, "image": False, "hw_cost": "Low"}
