"""Crash-safe bulk inference: manifests, a write-ahead journal,
retry/backoff with quarantine, deterministic fault injection, and a
kill-and-resume-safe coordinator.

The durability story in one paragraph: every item transition is
appended (fsync'd) to a JSONL journal *around* the action it
describes, outputs are written atomically (temp file + ``os.replace``)
and committed by a ``done`` record carrying the output's content hash
— so after a ``SIGKILL`` at any instant, re-running the same command
replays the journal, skips every item whose output still verifies,
redoes anything half-finished, and never processes an input twice
(:func:`repro.jobs.audit_journal` proves it from the journal alone).

Entry points::

    python -m repro.jobs run manifest.json      # execute / resume
    python -m repro.jobs status journal.jsonl   # progress table

or programmatically: :func:`load_manifest` → :class:`JobRunner` →
:class:`RunReport`.
"""

from .chaos import ChaosConfig, ChaosPoisoned, ChaosTransient
from .journal import (JobsError, Journal, ItemState, JournalState,
                      audit_journal, replay_journal)
from .manifest import JobItem, Manifest, load_manifest
from .retry import RetryPolicy
from .runner import JobRunner, RunReport
from .status import format_status, render_status, summarize
from .worker import atomic_save_npy

__all__ = [
    "ChaosConfig",
    "ChaosPoisoned",
    "ChaosTransient",
    "ItemState",
    "JobItem",
    "JobRunner",
    "Journal",
    "JournalState",
    "JobsError",
    "Manifest",
    "RetryPolicy",
    "RunReport",
    "atomic_save_npy",
    "audit_journal",
    "format_status",
    "load_manifest",
    "render_status",
    "replay_journal",
    "summarize",
]
