"""Tests for synthetic image generation and dataset assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BENCHMARK_SUITES,
    PatchSampler,
    benchmark_suite,
    hr_images,
    make_pair,
    synthetic,
    training_pool,
)


class TestSyntheticGenerators:
    @pytest.mark.parametrize("kind", ["gradient", "stripes", "checkerboard",
                                      "rectangles", "blobs", "texture",
                                      "urban", "mixed"])
    def test_range_and_shape(self, kind):
        img = synthetic.generate(kind, seed=1, h=32, w=40)
        assert img.shape == (32, 40, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_determinism(self):
        a = synthetic.generate("mixed", seed=7, h=16, w=16)
        b = synthetic.generate("mixed", seed=7, h=16, w=16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthetic.generate("urban", seed=1, h=16, w=16)
        b = synthetic.generate("urban", seed=2, h=16, w=16)
        assert not np.allclose(a, b)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            synthetic.generate("photos", seed=0, h=8, w=8)

    def test_urban_has_high_frequency_content(self):
        """Urban images must contain strong gradients (repeated edges)."""
        img = synthetic.generate("urban", seed=3, h=64, w=64)
        grad_energy = np.abs(np.diff(img, axis=1)).mean()
        smooth = synthetic.generate("gradient", seed=3, h=64, w=64)
        smooth_energy = np.abs(np.diff(smooth, axis=1)).mean()
        assert grad_energy > 5 * smooth_energy

    def test_resolution_independent_statistics(self):
        """Mean gradient energy must not depend on image size (the
        train-96px / eval-64px distribution match)."""
        small = [np.abs(np.diff(synthetic.generate("stripes", s, 48, 48),
                                axis=0)).mean() for s in range(60, 75)]
        large = [np.abs(np.diff(synthetic.generate("stripes", s, 96, 96),
                                axis=0)).mean() for s in range(60, 75)]
        assert np.mean(small) == pytest.approx(np.mean(large), rel=0.35)


class TestSuites:
    def test_default_sizes(self):
        assert len(hr_images("set5")) == 5
        assert len(hr_images("set14")) == 14

    def test_suites_are_disjoint(self):
        a = hr_images("set5", 2)[0]
        b = hr_images("b100", 2)[0]
        assert not np.allclose(a, b)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            hr_images("set99")

    @pytest.mark.parametrize("suite", BENCHMARK_SUITES)
    def test_benchmark_pairs_consistent(self, suite):
        pairs = benchmark_suite(suite, scale=2, n_images=2, size=(32, 32))
        for pair in pairs:
            assert pair.hr.shape == (32, 32, 3)
            assert pair.lr.shape == (16, 16, 3)
            assert pair.scale == 2


class TestMakePair:
    def test_crop_to_scale_multiple(self):
        hr = np.zeros((33, 34, 3))
        pair = make_pair(hr, scale=4)
        assert pair.hr.shape == (32, 32, 3)
        assert pair.lr.shape == (8, 8, 3)

    def test_lr_multiple_crop(self):
        hr = np.zeros((40, 40, 3))
        pair = make_pair(hr, scale=2, lr_multiple=8)
        assert pair.lr.shape[0] % 8 == 0

    def test_bd_blurs_more_than_bicubic(self):
        hr = synthetic.generate("urban", seed=0, h=32, w=32)
        bd = make_pair(hr, 2, degradation="bd")
        bic = make_pair(hr, 2, degradation="bicubic")
        assert np.abs(np.diff(bd.lr, axis=0)).mean() < np.abs(
            np.diff(bic.lr, axis=0)).mean()

    def test_unknown_degradation(self):
        with pytest.raises(KeyError):
            make_pair(np.zeros((8, 8, 3)), 2, degradation="jpeg")


class TestPatchSampler:
    def _pool(self):
        return training_pool(scale=2, n_images=3, size=(48, 48))

    def test_batch_shapes(self):
        sampler = PatchSampler(self._pool(), patch_size=8, batch_size=4, seed=0)
        lr, hr = sampler.batch()
        assert lr.shape == (4, 3, 8, 8)
        assert hr.shape == (4, 3, 16, 16)

    def test_alignment(self):
        """The HR patch must be the upscaled region of the LR patch: check
        the means roughly agree."""
        sampler = PatchSampler(self._pool(), patch_size=8, batch_size=16,
                               seed=1, augment=False)
        lr, hr = sampler.batch()
        lr_means = lr.mean(axis=(1, 2, 3))
        hr_means = hr.mean(axis=(1, 2, 3))
        np.testing.assert_allclose(lr_means, hr_means, atol=0.1)

    def test_determinism_per_seed(self):
        s1 = PatchSampler(self._pool(), patch_size=8, seed=5)
        s2 = PatchSampler(self._pool(), patch_size=8, seed=5)
        np.testing.assert_array_equal(s1.batch()[0], s2.batch()[0])

    def test_rejects_oversized_patch(self):
        with pytest.raises(ValueError):
            PatchSampler(self._pool(), patch_size=64)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            PatchSampler([], patch_size=8)

    def test_batch_size_override(self):
        sampler = PatchSampler(self._pool(), patch_size=8, batch_size=4)
        lr, _ = sampler.batch(batch_size=2)
        assert lr.shape[0] == 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_values_in_range(self, seed):
        sampler = PatchSampler(self._pool(), patch_size=8, seed=seed)
        lr, hr = sampler.batch(2)
        assert lr.min() >= 0 and lr.max() <= 1
        assert hr.min() >= 0 and hr.max() <= 1
