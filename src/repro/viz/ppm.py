"""PPM (P6) / PGM (P5) binary image IO.

The zero-dependency interchange format: any image viewer and most tools
(ImageMagick, ffmpeg, GIMP) read netpbm files, which makes them a handy
escape hatch for inspecting this repo's synthetic data and SR outputs on
machines without Python imaging libraries.  Values are 8-bit, maxval 255.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np


def write_ppm(path: Union[str, Path], image: np.ndarray) -> None:
    """Write ``(H, W)`` as PGM (P5) or ``(H, W, 3)`` as PPM (P6).

    Floats are interpreted in [0, 1]; integers must be in [0, 255].
    The magic number is chosen from the array shape, regardless of the
    file extension.
    """
    arr = np.asarray(image)
    if arr.ndim == 3 and arr.shape[2] == 1:
        arr = arr[:, :, 0]
    if arr.ndim == 2:
        magic = b"P5"
    elif arr.ndim == 3 and arr.shape[2] == 3:
        magic = b"P6"
    else:
        raise ValueError(f"expected (H,W[,1|3]) image, got shape {arr.shape}")
    if np.issubdtype(arr.dtype, np.floating):
        arr = np.clip(np.round(arr * 255.0), 0, 255).astype(np.uint8)
    elif arr.dtype != np.uint8:
        if arr.min() < 0 or arr.max() > 255:
            raise ValueError("integer image values must be in [0, 255]")
        arr = arr.astype(np.uint8)
    h, w = arr.shape[:2]
    with open(path, "wb") as f:
        f.write(magic + b"\n%d %d\n255\n" % (w, h))
        f.write(arr.tobytes())


def _read_token(data: bytes, pos: int) -> tuple:
    """Next whitespace-delimited token, skipping ``#`` comments."""
    n = len(data)
    while pos < n:
        if data[pos:pos + 1].isspace():
            pos += 1
        elif data[pos:pos + 1] == b"#":
            while pos < n and data[pos:pos + 1] != b"\n":
                pos += 1
        else:
            break
    start = pos
    while pos < n and not data[pos:pos + 1].isspace():
        pos += 1
    return data[start:pos], pos


def read_ppm(path: Union[str, Path]) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) file into a uint8 array."""
    data = Path(path).read_bytes()
    magic, pos = _read_token(data, 0)
    if magic not in (b"P5", b"P6"):
        raise ValueError(f"unsupported netpbm magic {magic!r} (want P5/P6)")
    tokens = []
    for _ in range(3):
        token, pos = _read_token(data, pos)
        tokens.append(int(token))
    width, height, maxval = tokens
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    pos += 1  # single whitespace after maxval
    channels = 1 if magic == b"P5" else 3
    count = width * height * channels
    pixels = np.frombuffer(data[pos:pos + count], dtype=np.uint8)
    if pixels.size != count:
        raise ValueError("truncated netpbm payload")
    if channels == 1:
        return pixels.reshape(height, width).copy()
    return pixels.reshape(height, width, 3).copy()
