"""Tests for convolution and pooling ops, including a direct-convolution
reference implementation and hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import grad as G
from repro.grad import Tensor, conv2d_output_shape

from ..helpers import check_gradients, rng


def reference_conv2d(x, w, b=None, stride=1, padding=0):
    """Naive direct convolution for cross-checking the im2col version."""
    bsz, cin, h, ww = x.shape
    cout, _, kh, kw = w.shape
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (ww + 2 * padding - kw) // stride + 1
    out = np.zeros((bsz, cout, oh, ow))
    for n in range(bsz):
        for co in range(cout):
            for i in range(oh):
                for j in range(ow):
                    patch = x_pad[n, :, i * stride:i * stride + kh,
                                  j * stride:j * stride + kw]
                    out[n, co, i, j] = np.sum(patch * w[co])
            if b is not None:
                out[n, co] += b[co]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_direct_convolution(self, stride, padding):
        x = rng(0).normal(size=(2, 3, 6, 7))
        w = rng(1).normal(size=(4, 3, 3, 3))
        b = rng(2).normal(size=(4,))
        out = G.conv2d(Tensor(x), Tensor(w), Tensor(b),
                       stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_1x1_conv_is_channel_mix(self):
        x = rng(3).normal(size=(1, 3, 4, 4))
        w = rng(4).normal(size=(2, 3, 1, 1))
        out = G.conv2d(Tensor(x), Tensor(w), padding=0).data
        expected = np.einsum("oc,bchw->bohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_gradients(self):
        check_gradients(
            lambda ts: G.sum(G.conv2d(ts[0], ts[1], ts[2], stride=2, padding=1) ** 2),
            [rng(0).normal(size=(1, 2, 5, 5)),
             rng(1).normal(size=(3, 2, 3, 3)),
             rng(2).normal(size=(3,))],
            atol=1e-4, rtol=1e-3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            G.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            G.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))))

    def test_output_shape_helper(self):
        assert conv2d_output_shape((8, 10), 3, stride=2, padding=1) == (4, 5)

    @settings(max_examples=20, deadline=None)
    @given(h=st.integers(4, 9), w=st.integers(4, 9),
           k=st.sampled_from([1, 3]), stride=st.sampled_from([1, 2]))
    def test_shape_property(self, h, w, k, stride):
        x = np.zeros((1, 2, h, w))
        wt = np.zeros((3, 2, k, k))
        pad = k // 2
        out = G.conv2d(Tensor(x), Tensor(wt), stride=stride, padding=pad)
        assert out.shape[2:] == conv2d_output_shape((h, w), k, stride, pad)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_linearity_property(self, seed):
        """conv(a*x) == a * conv(x) — convolution is linear."""
        r = np.random.default_rng(seed)
        x = r.normal(size=(1, 2, 5, 5))
        w = r.normal(size=(2, 2, 3, 3))
        out1 = G.conv2d(Tensor(3.0 * x), Tensor(w), padding=1).data
        out2 = 3.0 * G.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out1, out2, atol=1e-9)


class TestConv1d:
    def test_values_against_manual(self):
        x = np.array([[[1.0, 2.0, 3.0, 4.0]]])
        w = np.array([[[1.0, 0.0, -1.0]]])
        out = G.conv1d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out[0, 0], [-2.0, -2.0, -2.0, 3.0])

    def test_gradients(self):
        check_gradients(
            lambda ts: G.sum(G.conv1d(ts[0], ts[1], ts[2], padding=2) ** 2),
            [rng(0).normal(size=(2, 1, 8)),
             rng(1).normal(size=(1, 1, 5)),
             rng(2).normal(size=(1,))],
            atol=1e-4, rtol=1e-3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            G.conv1d(Tensor(np.zeros((1, 2, 8))), Tensor(np.zeros((1, 3, 3))))


class TestPooling:
    def test_global_avg_pool_values(self):
        x = rng(0).normal(size=(2, 3, 4, 5))
        out = G.global_avg_pool2d(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3), keepdims=True))

    def test_global_avg_pool_grad(self):
        check_gradients(lambda ts: G.sum(G.global_avg_pool2d(ts[0]) ** 2),
                        [rng(1).normal(size=(1, 2, 3, 3))])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = G.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self):
        check_gradients(lambda ts: G.sum(G.avg_pool2d(ts[0], 2) ** 2),
                        [rng(2).normal(size=(1, 1, 4, 4))])


class TestConvBackendSwitch:
    """The fast (sliding_window_view + BLAS) and reference (loop gather)
    backends must agree on values and gradients for every geometry."""

    def test_default_is_fast(self):
        assert G.get_conv_backend() == "fast"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            G.set_conv_backend("blas")

    def test_context_manager_restores(self):
        with G.conv_backend("reference"):
            assert G.get_conv_backend() == "reference"
        assert G.get_conv_backend() == "fast"

    @pytest.mark.parametrize("stride,padding,k", [
        (1, 0, 3), (1, 1, 3), (2, 1, 3), (2, 0, 3), (1, 0, 1), (3, 2, 5),
        ((1, 2), (2, 1), 3),
    ])
    def test_conv2d_forward_and_grads_agree(self, stride, padding, k):
        x = rng(20).normal(size=(2, 3, 9, 8))
        w = rng(21).normal(size=(4, 3, k, k))
        b = rng(22).normal(size=(4,))
        results = {}
        for backend in ("fast", "reference"):
            with G.conv_backend(backend):
                xt = Tensor(x.copy(), requires_grad=True)
                wt = Tensor(w.copy(), requires_grad=True)
                bt = Tensor(b.copy(), requires_grad=True)
                out = G.conv2d(xt, wt, bt, stride=stride, padding=padding)
                G.sum(out * out).backward()
                results[backend] = (out.data, xt.grad, wt.grad, bt.grad)
        for fast_arr, ref_arr in zip(results["fast"], results["reference"]):
            np.testing.assert_allclose(fast_arr, ref_arr, rtol=1e-10,
                                       atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 2), (2, 1)])
    def test_conv1d_agrees(self, stride, padding):
        x = rng(23).normal(size=(2, 3, 11))
        w = rng(24).normal(size=(4, 3, 5))
        results = {}
        for backend in ("fast", "reference"):
            with G.conv_backend(backend):
                xt = Tensor(x.copy(), requires_grad=True)
                wt = Tensor(w.copy(), requires_grad=True)
                out = G.conv1d(xt, wt, stride=stride, padding=padding)
                G.sum(out * out).backward()
                results[backend] = (out.data, xt.grad, wt.grad)
        for fast_arr, ref_arr in zip(results["fast"], results["reference"]):
            np.testing.assert_allclose(fast_arr, ref_arr, rtol=1e-10,
                                       atol=1e-10)

    @pytest.mark.parametrize("kernel,stride", [(2, None), (3, 1), (2, 2)])
    def test_avg_pool_agrees(self, kernel, stride):
        x = rng(25).normal(size=(2, 3, 8, 7))
        outs = {}
        for backend in ("fast", "reference"):
            with G.conv_backend(backend):
                outs[backend] = G.avg_pool2d(Tensor(x), kernel,
                                             stride=stride).data
        np.testing.assert_allclose(outs["fast"], outs["reference"],
                                   rtol=1e-12, atol=1e-12)

    def test_reference_backend_matches_direct_conv(self):
        x = rng(26).normal(size=(1, 2, 6, 6))
        w = rng(27).normal(size=(3, 2, 3, 3))
        with G.conv_backend("reference"):
            out = G.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out, reference_conv2d(x, w, padding=1),
                                   atol=1e-10)


class TestIm2colRows:
    def test_rows_layout_matches_loop_gather(self):
        from repro.grad.conv import _gather_patches, im2col_rows
        x = rng(28).normal(size=(2, 3, 7, 6))
        kh = kw = 3
        oh, ow = 5, 4
        rows = im2col_rows(x, kh, kw, 1, 1, oh, ow)
        patches = _gather_patches(x, kh, kw, 1, 1, oh, ow)
        expected = patches.reshape(2, 3 * kh * kw, oh * ow)
        expected = expected.transpose(0, 2, 1).reshape(-1, 3 * kh * kw)
        np.testing.assert_array_equal(rows, expected)

    def test_strided(self):
        from repro.grad.conv import im2col_rows
        x = rng(29).normal(size=(1, 2, 8, 8))
        rows = im2col_rows(x, 3, 3, 2, 2, 3, 3)
        assert rows.shape == (9, 18)
        np.testing.assert_array_equal(rows[0], x[0, :, 0:3, 0:3].reshape(-1))
