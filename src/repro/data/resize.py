"""Bicubic resampling (MATLAB-``imresize``-style, antialiased downscale).

The SR literature (and this paper) derives LR inputs by bicubic
downsampling of HR images and reports the "Bicubic" baseline by bicubic
upsampling; both come from this module.  The kernel is the Keys cubic
with a = -0.5, applied separably per axis, with width widened by the
scale factor when shrinking (antialiasing), matching MATLAB/PIL behaviour
closely enough that the Bicubic baseline rows of Table III are meaningful.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic convolution kernel."""
    ax = np.abs(x)
    ax2 = ax * ax
    ax3 = ax2 * ax
    inner = (a + 2) * ax3 - (a + 3) * ax2 + 1
    outer = a * ax3 - 5 * a * ax2 + 8 * a * ax - 4 * a
    return np.where(ax <= 1, inner, np.where(ax < 2, outer, 0.0))


def _contributions(in_size: int, out_size: int, scale: float,
                   antialias: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Sample indices and weights for one axis.

    Returns ``(indices, weights)`` with shape ``(out_size, taps)``; border
    samples replicate the edge pixel.
    """
    kernel_width = 4.0
    kernel_scale = 1.0
    if scale < 1.0 and antialias:
        kernel_width /= scale
        kernel_scale = scale
    centers = (np.arange(out_size) + 0.5) / scale - 0.5
    taps = int(math.ceil(kernel_width)) + 2
    left = np.floor(centers - kernel_width / 2).astype(int) + 1
    indices = left[:, None] + np.arange(taps)[None, :]
    weights = cubic_kernel((centers[:, None] - indices) * kernel_scale)
    weights = weights * kernel_scale if kernel_scale != 1.0 else weights
    norm = weights.sum(axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    weights = weights / norm
    indices = np.clip(indices, 0, in_size - 1)
    return indices, weights


def _resize_axis(img: np.ndarray, out_size: int, axis: int,
                 antialias: bool) -> np.ndarray:
    in_size = img.shape[axis]
    if in_size == out_size:
        return img
    scale = out_size / in_size
    indices, weights = _contributions(in_size, out_size, scale, antialias)
    moved = np.moveaxis(img, axis, 0)
    gathered = moved[indices]                      # (out, taps, ...)
    weighted = np.einsum("ot...,ot->o...", gathered, weights)
    return np.moveaxis(weighted, 0, axis)


def bicubic_resize(img: np.ndarray, out_hw: Tuple[int, int],
                   antialias: bool = True, clip: bool = True) -> np.ndarray:
    """Resize an ``(H, W)`` or ``(H, W, C)`` image to ``out_hw``."""
    out_h, out_w = out_hw
    if out_h <= 0 or out_w <= 0:
        raise ValueError("output size must be positive")
    result = _resize_axis(img.astype(np.float64), out_h, 0, antialias)
    result = _resize_axis(result, out_w, 1, antialias)
    if clip:
        result = np.clip(result, 0.0, 1.0)
    return result


def downscale(img: np.ndarray, scale: int) -> np.ndarray:
    """Bicubic downscale by an integer factor (the LR degradation)."""
    h, w = img.shape[:2]
    if h % scale or w % scale:
        raise ValueError(f"image {h}x{w} not divisible by scale {scale}")
    return bicubic_resize(img, (h // scale, w // scale), antialias=True)


def upscale(img: np.ndarray, scale: int) -> np.ndarray:
    """Bicubic upscale by an integer factor (the Bicubic baseline)."""
    h, w = img.shape[:2]
    return bicubic_resize(img, (h * scale, w * scale), antialias=False)
