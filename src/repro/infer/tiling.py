"""Tiled ("chopped") inference for memory-bounded full-image SR.

One shared geometry — :func:`plan_tiles` — drives every tiled path in
the repo (this module's :func:`tiled_super_resolve` and the packed
engine's :class:`repro.deploy.engine.TiledInference`): overlapping tiles
with a flush-right final tile, interior edges trimmed by ``trim`` pixels
before placement, remaining overlap averaged.

The execution strategy is batched and streaming: tiles run through the
model in NCHW chunks of ``batch_size`` tiles, so the conv/GEMM kernels
see a few large-M operands instead of dozens of tiny ones; chunks fan
out over :func:`repro.infer.parallel.parallel_map` worker threads one
wave at a time and are stitched (then freed) as each wave completes,
keeping peak memory bounded by a wave rather than the input.  Stitching
happens on the calling thread in plan order, so results are identical
for every (batch size, thread count) combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..grad import Tensor, no_grad
from ..nn import Module
from .parallel import get_num_threads, parallel_map

__all__ = ["TileSpec", "TilePlan", "plan_tiles", "tiled_super_resolve",
           "iter_tile_batches", "TileStitcher", "tile_view"]


def _tile_starts(full: int, tile: int, stride: int) -> list:
    """Start offsets covering [0, full) with a final flush-right tile."""
    if full <= tile:
        return [0]
    starts = list(range(0, full - tile, stride))
    starts.append(full - tile)
    return starts


@dataclass(frozen=True)
class TileSpec:
    """One tile of a :class:`TilePlan`: origin plus per-edge trims.

    ``y0/x0`` index the tile's top-left corner in the input; ``top/left/
    bottom/right`` are the input pixels discarded from the corresponding
    tile edge before placing the output (non-zero only on interior
    edges — image borders keep their pixels).
    """

    y0: int
    x0: int
    top: int
    left: int
    bottom: int
    right: int


@dataclass(frozen=True)
class TilePlan:
    """Tile geometry for one (H, W) input."""

    height: int
    width: int
    tile_h: int
    tile_w: int
    overlap: int
    trim: int
    tiles: Tuple[TileSpec, ...]

    def __len__(self) -> int:
        return len(self.tiles)


def plan_tiles(height: int, width: int, tile: int, overlap: int = 8,
               trim: Optional[int] = None) -> TilePlan:
    """Plan overlapping tiles covering an ``(height, width)`` input.

    ``tile`` is clamped to the input on each axis; tiles step by ``tile
    - overlap`` with a final flush-right tile, so inputs that are not a
    multiple of the stride are still covered exactly.  ``trim`` (default
    ``overlap // 2``) input pixels are marked for discard on interior
    tile edges; ``2 * trim <= overlap`` keeps trimmed tiles covering the
    canvas with no gaps.
    """
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    if not 0 <= overlap < tile:
        raise ValueError(f"overlap {overlap} must be in [0, tile={tile})")
    trim = overlap // 2 if trim is None else trim
    if trim < 0 or 2 * trim > overlap:
        raise ValueError(f"trim {trim} needs 0 <= 2*trim <= overlap={overlap}")
    tile_h, tile_w = min(tile, height), min(tile, width)
    stride_h = max(tile_h - overlap, 1)
    stride_w = max(tile_w - overlap, 1)
    specs = []
    for y0 in _tile_starts(height, tile_h, stride_h):
        for x0 in _tile_starts(width, tile_w, stride_w):
            specs.append(TileSpec(
                y0=y0, x0=x0,
                top=trim if y0 > 0 else 0,
                left=trim if x0 > 0 else 0,
                bottom=trim if y0 + tile_h < height else 0,
                right=trim if x0 + tile_w < width else 0))
    return TilePlan(height=height, width=width, tile_h=tile_h, tile_w=tile_w,
                    overlap=overlap, trim=trim, tiles=tuple(specs))


def tile_view(image: np.ndarray, spec: TileSpec, tile_h: int,
              tile_w: int) -> np.ndarray:
    """Zero-copy view of one tile of a leading-(H, W) ``image``.

    Slices the first two axes at ``spec``'s origin, so it works for
    HWC frames and (H, W) planes alike.  The result is a *strided
    view* — callers hashing it (the streaming tile-delta planner does)
    rely on ``serve.cache.content_key`` normalizing contiguity.
    """
    return image[spec.y0:spec.y0 + tile_h, spec.x0:spec.x0 + tile_w]


def iter_tile_batches(model, data: np.ndarray, plan: TilePlan,
                      batch_size: int, n_threads: Optional[int] = None):
    """Yield ``(tile_indices, outputs)`` for a ``(B, C, H, W)`` input.

    Tiles run through ``model`` in chunks of ``batch_size`` tiles (each
    chunk is one NCHW forward of ``len(indices) * B`` rows, tile-major),
    dispatched over the thread pool one *wave* of ``n_threads`` chunks
    at a time.  Chunks are gathered from ``data`` only when their wave
    runs and outputs are yielded (and can be stitched and dropped) as
    each wave completes, so peak memory is bounded by one wave — not by
    the input size.  Yield order is plan order for every thread count.

    The caller manages eval mode and ``no_grad``.
    """
    b, c = data.shape[:2]
    th, tw = plan.tile_h, plan.tile_w
    batch_size = max(1, batch_size)
    chunks = [list(range(i, min(i + batch_size, len(plan))))
              for i in range(0, len(plan), batch_size)]

    def run(indices):
        tiles = np.empty((len(indices) * b, c, th, tw), dtype=data.dtype)
        for j, t in enumerate(indices):
            s = plan.tiles[t]
            tiles[j * b:(j + 1) * b] = data[:, :, s.y0:s.y0 + th,
                                            s.x0:s.x0 + tw]
        return np.asarray(model(Tensor(tiles)).data)

    wave = max(1, get_num_threads() if n_threads is None else int(n_threads))
    for i in range(0, len(chunks), wave):
        group = chunks[i:i + wave]
        for indices, out in zip(group, parallel_map(run, group, n_threads)):
            yield indices, out


class TileStitcher:
    """Accumulate trimmed tile outputs onto an averaged canvas.

    Consumes tiles incrementally (pair with :func:`iter_tile_batches`),
    so only the canvas and one wave of outputs are ever resident.
    """

    def __init__(self, plan: TilePlan, scale: int, batch: int, c_out: int):
        self.plan = plan
        self.scale = scale
        self.canvas = np.zeros(
            (batch, c_out, plan.height * scale, plan.width * scale),
            dtype=np.float64)
        self.weight = np.zeros(
            (1, 1, plan.height * scale, plan.width * scale), dtype=np.float64)

    def add(self, tile_index: int, sr: np.ndarray) -> None:
        """Place one tile's ``(B, C_out, th*s, tw*s)`` output."""
        s = self.plan.tiles[tile_index]
        scale = self.scale
        th, tw = self.plan.tile_h, self.plan.tile_w
        sr = sr[:, :, s.top * scale:(th - s.bottom) * scale,
                s.left * scale:(tw - s.right) * scale]
        ys = (s.y0 + s.top) * scale
        xs = (s.x0 + s.left) * scale
        self.canvas[:, :, ys:ys + sr.shape[2], xs:xs + sr.shape[3]] += sr
        self.weight[:, :, ys:ys + sr.shape[2], xs:xs + sr.shape[3]] += 1.0

    def finish(self) -> np.ndarray:
        """The averaged ``(B, C_out, H*s, W*s)`` float64 canvas."""
        self.canvas /= np.maximum(self.weight, 1.0)
        return self.canvas


def tiled_super_resolve(model: Module, lr_image: np.ndarray, scale: int,
                        tile: int = 48, overlap: int = 8,
                        lr_multiple: int = 1,
                        trim: int = None,
                        batch_size: int = 16,
                        n_threads: Optional[int] = None) -> np.ndarray:
    """Super-resolve ``lr_image`` tile by tile ("chop forward").

    Tiles run as NCHW batches of ``batch_size`` (in parallel over
    ``n_threads`` worker threads), stitched as each wave of batches
    completes — identical outputs to the sequential per-tile loop at a
    fraction of the per-call overhead, with peak memory bounded by one
    wave plus the output canvas.

    Parameters
    ----------
    model:
        SR model mapping ``(H, W, 3)`` LR to ``(scale*H, scale*W, 3)``.
    lr_image:
        ``(H, W, 3)`` image in [0, 1]; H and W must be multiples of
        ``lr_multiple`` (the model's window constraint).
    scale:
        The model's upsampling factor (output scaling of tile placement).
    tile:
        LR tile size; must be a multiple of ``lr_multiple``.
    overlap:
        LR pixels of overlap between neighbouring tiles.
    trim:
        LR pixels discarded from each interior tile edge before placing
        the output (tile borders carry the model's halo artifacts — most
        visibly the bicubic residual computed on the tile instead of the
        full image).  Defaults to ``overlap // 2``; must satisfy
        ``2 * trim <= overlap`` so trimmed tiles still cover the canvas.
        Remaining overlapped pixels are averaged.
    batch_size:
        Tiles per model forward — bounds peak memory exactly like the
        original per-tile loop did, just ``batch_size`` tiles at a time.
    n_threads:
        Worker threads for tile batches (default: the global setting,
        see :func:`repro.infer.parallel.get_num_threads`).
    """
    h, w = lr_image.shape[:2]
    if tile % max(lr_multiple, 1):
        raise ValueError(f"tile {tile} must be a multiple of {lr_multiple}")
    plan = plan_tiles(h, w, tile, overlap, trim)
    data = np.ascontiguousarray(lr_image.transpose(2, 0, 1))[None]
    expect = (plan.tile_h * scale, plan.tile_w * scale)

    stitcher = None
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for indices, out in iter_tile_batches(model, data, plan,
                                                  batch_size, n_threads):
                if out.shape[2:] != expect:
                    raise ValueError(
                        f"model produced {tuple(out.shape[2:])} for a "
                        f"{(plan.tile_h, plan.tile_w)} tile; expected "
                        f"{expect} at scale {scale}")
                if stitcher is None:
                    stitcher = TileStitcher(plan, scale, batch=1,
                                            c_out=out.shape[1])
                # Per-tile clip before blending, exactly like the
                # per-tile loop (which stitched ``super_resolve``
                # outputs, already clipped).
                out = np.clip(np.asarray(out, dtype=np.float64), 0.0, 1.0)
                for j, t in enumerate(indices):
                    stitcher.add(t, out[j:j + 1])
    finally:
        model.train(was_training)
    return np.clip(stitcher.finish()[0].transpose(1, 2, 0), 0.0, 1.0)
