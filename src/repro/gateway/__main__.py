"""``python -m repro.gateway``: run a gateway until SIGTERM/SIGINT.

Prints ``GATEWAY_READY host:port`` on stdout once the front door is
accepting (supervisors and the e2e tests wait for that line instead of
sleeping), then blocks.  SIGTERM or SIGINT triggers the graceful
drain — in-flight requests settle, late arrivals get 503 — and the
process exits 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from ..serve.server import ServerConfig
from .gateway import Gateway, GatewayConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="HTTP gateway over a directory of deploy artifacts")
    parser.add_argument("--artifact-dir", required=True,
                        help="directory of .npz deploy artifacts (the zoo)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="front-door port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in the pool")
    parser.add_argument("--quota-rate", type=float, default=None,
                        help="per-client sustained requests/s "
                             "(default: metering disabled)")
    parser.add_argument("--quota-burst", type=float, default=10.0,
                        help="per-client burst size")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="per-worker graceful-drain bound on SIGTERM")
    parser.add_argument("--dtype", default=None,
                        choices=("float32", "float64"),
                        help="serve under this default dtype")
    args = parser.parse_args(argv)

    config = GatewayConfig(
        host=args.host, port=args.port, n_workers=args.workers,
        quota_rate_per_s=args.quota_rate, quota_burst=args.quota_burst,
        server=ServerConfig(dtype=args.dtype,
                            drain_timeout_s=args.drain_timeout))
    gateway = Gateway(args.artifact_dir, config)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    host, port = gateway.address
    print(f"GATEWAY_READY {host}:{port}", flush=True)
    # Timed waits, not one bare wait(): the main thread wakes on a
    # short period, so a signal that lands while it is parked inside
    # the lock acquire always gets its Python-level handler run within
    # one period, whatever the platform's interruption semantics.
    while not stop.is_set():
        stop.wait(timeout=0.2)
    print("GATEWAY_DRAINING", flush=True)
    gateway.close(drain=True)
    print("GATEWAY_STOPPED", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
