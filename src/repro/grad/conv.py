"""Convolution and pooling with autograd support.

``conv2d`` is the computational core of every CNN-based SR network in the
paper (SRResNet/EDSR/RDN/RCAN) and of the binary convolution layers.  It is
implemented with an explicit patch-gather (im2col) so the backward pass is
exact; the small kernel loops (3x3 typically) keep it reasonably fast in
NumPy.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


def conv2d_output_shape(
    in_shape: Tuple[int, int],
    kernel: IntPair,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tuple[int, int]:
    """Spatial output size of a 2-D convolution."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    h, w = in_shape
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    return out_h, out_w


def _gather_patches(x: np.ndarray, kh: int, kw: int, sh: int, sw: int,
                    out_h: int, out_w: int) -> np.ndarray:
    """Gather conv patches into shape (B, C, kh, kw, out_h, out_w)."""
    b, c = x.shape[:2]
    patches = np.empty((b, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patches[:, :, i, j] = x[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw]
    return patches


def _scatter_patches(grad_patches: np.ndarray, x_shape: Tuple[int, ...],
                     kh: int, kw: int, sh: int, sw: int,
                     out_h: int, out_w: int) -> np.ndarray:
    """Inverse of :func:`_gather_patches` (col2im, overlapping add)."""
    gx = np.zeros(x_shape, dtype=grad_patches.dtype)
    for i in range(kh):
        for j in range(kw):
            gx[:, :, i:i + out_h * sh:sh, j:j + out_w * sw:sw] += grad_patches[:, :, i, j]
    return gx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW input.

    Parameters mirror ``torch.nn.functional.conv2d`` (no dilation/groups,
    which the paper's networks do not use).
    """
    b, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv2d_output_shape((h, w), (kh, kw), (sh, sw), (ph, pw))
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution output would be empty")

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    patches = _gather_patches(x_pad, kh, kw, sh, sw, out_h, out_w)
    cols = patches.reshape(b, c_in * kh * kw, out_h * out_w)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out = np.einsum("ok,bkl->bol", w_mat, cols, optimize=True)
    out = out.reshape(b, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, send):
        grad_mat = grad.reshape(b, c_out, out_h * out_w)
        gw = np.einsum("bol,bkl->ok", grad_mat, cols, optimize=True)
        send(weight, gw.reshape(weight.shape))
        gcols = np.einsum("ok,bol->bkl", w_mat, grad_mat, optimize=True)
        gpatches = gcols.reshape(b, c_in, kh, kw, out_h, out_w)
        gx_pad = _scatter_patches(gpatches, x_pad.shape, kh, kw, sh, sw, out_h, out_w)
        if ph or pw:
            gx = gx_pad[:, :, ph:ph + h, pw:pw + w]
        else:
            gx = gx_pad
        send(x, gx)
        if bias is not None:
            send(bias, grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out, parents, backward)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D convolution over (B, C, L) input.

    Used by the channel-wise re-scaling module of SCALES (Fig. 7), which
    applies a Conv1d with kernel size 5 across the channel axis.
    """
    b, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    out_l = (length + 2 * padding - k) // stride + 1
    if out_l <= 0:
        raise ValueError("conv1d output would be empty")

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding))) if padding else x.data
    patches = np.empty((b, c_in, k, out_l), dtype=x.data.dtype)
    for i in range(k):
        patches[:, :, i] = x_pad[:, :, i:i + out_l * stride:stride]
    cols = patches.reshape(b, c_in * k, out_l)
    w_mat = weight.data.reshape(c_out, c_in * k)
    out = np.einsum("ok,bkl->bol", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, send):
        gw = np.einsum("bol,bkl->ok", grad, cols, optimize=True)
        send(weight, gw.reshape(weight.shape))
        gcols = np.einsum("ok,bol->bkl", w_mat, grad, optimize=True)
        gpatches = gcols.reshape(b, c_in, k, out_l)
        gx_pad = np.zeros(x_pad.shape, dtype=grad.dtype)
        for i in range(k):
            gx_pad[:, :, i:i + out_l * stride:stride] += gpatches[:, :, i]
        gx = gx_pad[:, :, padding:padding + length] if padding else gx_pad
        send(x, gx)
        if bias is not None:
            send(bias, grad.sum(axis=(0, 2)))

    return Tensor._make(out, parents, backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(B, C, H, W) -> (B, C, 1, 1) spatial mean.

    The aggregation step of the channel-wise re-scaling branch.
    """
    b, c, h, w = x.shape
    data = x.data.mean(axis=(2, 3), keepdims=True)

    def backward(grad, send):
        send(x, np.broadcast_to(grad / (h * w), x.shape))

    return Tensor._make(data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling (no padding)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    b, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    patches = _gather_patches(x.data, kh, kw, sh, sw, out_h, out_w)
    data = patches.mean(axis=(2, 3))

    def backward(grad, send):
        gpatches = np.broadcast_to(
            grad[:, :, None, None] / (kh * kw), (b, c, kh, kw, out_h, out_w)
        )
        send(x, _scatter_patches(gpatches, x.shape, kh, kw, sh, sw, out_h, out_w))

    return Tensor._make(data, (x,), backward)
