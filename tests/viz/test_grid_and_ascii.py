"""Tiling and terminal-plot helpers."""

import numpy as np
import pytest

from repro.analysis import DistributionSummary
from repro.viz import (ascii_histogram, distribution_strip, image_grid,
                       labeled_row, render_summaries, to_uint8)


class TestToUint8:
    def test_plain_scaling(self):
        out = to_uint8(np.array([[0.0, 1.0]]))
        np.testing.assert_array_equal(out, [[0, 255]])

    def test_normalization(self):
        out = to_uint8(np.array([[-2.0, 0.0, 2.0]]), normalize=True)
        np.testing.assert_array_equal(out, [[0, 128, 255]])

    def test_constant_image_normalizes_to_zero(self):
        out = to_uint8(np.full((2, 2), 3.7), normalize=True)
        assert out.max() == 0


class TestImageGrid:
    def test_layout_geometry(self):
        panels = [np.zeros((4, 6)) for _ in range(5)]
        grid = image_grid(panels, n_cols=3, margin=2)
        # 2 rows x 3 cols with 2px margins.
        assert grid.shape == (2 + 2 * (4 + 2), 2 + 3 * (6 + 2), 3)

    def test_panel_placement(self):
        a = np.zeros((2, 2))
        b = np.ones((2, 2))
        grid = image_grid([a, b], n_cols=2, margin=1, background=0.5)
        assert grid[1, 1, 0] == 0.0     # first panel pixel
        assert grid[1, 4, 0] == 1.0     # second panel pixel
        assert grid[0, 0, 0] == 0.5     # margin

    def test_normalize_each(self):
        panels = [np.full((2, 2), 10.0), np.full((2, 2), -3.0)]
        grid = image_grid(panels, n_cols=2, normalize_each=True)
        assert grid.max() <= 1.0 and grid.min() >= 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            image_grid([], n_cols=1)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            image_grid([np.zeros((2, 2)), np.zeros((3, 3))], n_cols=2)

    def test_rgb_panels_pass_through(self):
        rgb = np.random.default_rng(0).random((3, 3, 3))
        grid = image_grid([rgb], n_cols=1, margin=0)
        np.testing.assert_allclose(grid, np.clip(rgb, 0, 1))


class TestLabeledRow:
    def test_single_row(self, capsys):
        row = labeled_row([np.zeros((2, 2)), np.ones((2, 2))],
                          labels=["HR", "SR"])
        assert row.shape[0] == 2 + 2 * 2  # margin + height + margin
        assert "HR" in capsys.readouterr().out

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            labeled_row([np.zeros((2, 2))], labels=["a", "b"])


class TestAsciiHistogram:
    def test_contains_counts(self):
        text = ascii_histogram(np.array([1.0, 1.0, 5.0]), bins=2, title="T")
        assert text.startswith("T")
        assert "2" in text and "1" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))


class TestDistributionStrip:
    def test_basic_render(self):
        rows = np.array([[0.0, 1.0, 2.0, 3.0, 4.0],
                         [-4.0, -2.0, 0.0, 2.0, 4.0]])
        text = distribution_strip(rows, labels=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3  # two strips + axis line
        assert "O" in lines[0] and "=" in lines[0] and "|" in lines[0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            distribution_strip(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            distribution_strip(np.zeros((0, 5)))

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            distribution_strip(np.zeros((2, 5)), labels=["only-one"])

    def test_render_summaries(self):
        summary = DistributionSummary(
            label="demo", rows=np.array([[0, 1, 2, 3, 4.0]]))
        text = render_summaries([summary])
        assert "demo" in text and "median variance" in text
