"""Deadline-aware micro-batch scheduling policy.

The serving trade-off: every queued request gets *cheaper* to run the
longer it waits (more same-model work to coalesce into one batched
forward) and *later* the longer it waits.  The scheduler resolves it
with a per-request deadline: a model's queue becomes *due* the moment
its oldest deadline arrives — flushing a partial batch rather than
blowing the latency budget — or as soon as a full batch's worth of
work is queued, whichever comes first.

:class:`MicroBatchScheduler` is deliberately just the policy and the
queues: it never reads the clock (callers pass ``now``), never runs a
model, and never sleeps.  That makes every decision deterministic and
directly unit-testable with a simulated clock; the background thread,
the executor handoff and the model registry all live in
:mod:`repro.serve.server`.

It also tracks per-model *in-flight* flush counts, which is how the
server enforces its per-model concurrency cap: a model at its cap is
never reported due, so its queue simply waits (or sheds at the
admission-control bound) until a flush completes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

__all__ = ["QueuedRequest", "MicroBatchScheduler"]


@dataclass
class QueuedRequest:
    """One admitted request waiting to be coalesced into a batch.

    ``extra_futures`` carries identical in-flight requests that were
    deduplicated onto this one (the server's thundering-herd guard) as
    ``(future, enqueued_at, request_id)`` triples: they resolve with
    the same result, but only this request occupies queue depth and
    batch space, and each rider's latency is measured from its *own*
    arrival time, not the primary's.

    ``request_id`` is the correlation id threaded through structured
    logs and (when the request came over HTTP) the ``X-Request-Id``
    header; the server assigns one when the caller didn't.
    """

    image: Any
    cache_key: str
    future: Any
    enqueued_at: float
    deadline: float
    model_key: Hashable = None
    extra_futures: List[Any] = field(default_factory=list)
    request_id: Optional[str] = None


class MicroBatchScheduler:
    """Per-model request queues with deadline/full-batch due policy.

    Parameters
    ----------
    max_batch:
        Queue length at which a model becomes due immediately (a full
        micro-batch is waiting; there is nothing to gain by waiting
        longer).
    max_inflight:
        Per-model concurrency cap: a model with this many flushes
        running is never due, whatever its queue looks like.

    All methods are thread-safe; ``now`` is always an explicit caller
    argument so tests can drive a simulated clock.
    """

    def __init__(self, max_batch: int, max_inflight: int = 1) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        # Insertion-ordered so round-robin across models is stable.
        self._queues: "OrderedDict[Hashable, Deque[QueuedRequest]]" = (
            OrderedDict()
        )
        self._inflight: Dict[Hashable, int] = {}
        # Running total of queued requests, maintained by enqueue/take/
        # drain_queued: admission control consults it on every submit,
        # so it must stay O(1) however many models the zoo holds.
        self._depth = 0

    # -- enqueue / inspect -------------------------------------------------

    def enqueue(
        self, request: QueuedRequest, max_depth: Optional[int] = None
    ) -> int:
        """Queue ``request`` under its model key; returns the new depth.

        With ``max_depth``, admission control happens atomically under
        the queue lock: if the total queued depth is already at the
        bound the request is refused and ``-1`` is returned — two
        racing submitters can never both squeeze past the bound.
        """
        with self._lock:
            if max_depth is not None and self._depth >= max_depth:
                return -1
            queue = self._queues.get(request.model_key)
            if queue is None:
                queue = self._queues[request.model_key] = deque()
            queue.append(request)
            self._depth += 1
            return self._depth

    def depth(self) -> int:
        """Total queued (not yet taken) requests across all models."""
        with self._lock:
            return self._depth

    def audit_depth(self) -> int:
        """The depth counter, asserted against a full queue scan.

        The O(1) counter is what admission control trusts; this is the
        O(#models) ground truth kept for tests and debugging — a drift
        between the two is a bookkeeping bug, so it raises rather than
        answering wrong.
        """
        with self._lock:
            scanned = sum(len(q) for q in self._queues.values())
            if scanned != self._depth:
                raise AssertionError(
                    f"depth counter {self._depth} != scanned queue total "
                    f"{scanned}"
                )
            return self._depth

    def pending(self, model_key: Hashable) -> int:
        with self._lock:
            queue = self._queues.get(model_key)
            return len(queue) if queue else 0

    def inflight(self, model_key: Hashable = None) -> int:
        """In-flight flushes for one model (or all models)."""
        with self._lock:
            if model_key is not None:
                return self._inflight.get(model_key, 0)
            return sum(self._inflight.values())

    # -- due policy --------------------------------------------------------

    def _due(self, queue: Deque[QueuedRequest], now: float) -> bool:
        return len(queue) >= self.max_batch or queue[0].deadline <= now

    def due_keys(self, now: float, force: bool = False) -> List[Hashable]:
        """Model keys that should flush at ``now`` (cap-respecting).

        ``force`` treats every non-empty queue as due — the drain /
        shutdown path, where latency budgets no longer matter.
        """
        with self._lock:
            due = []
            for key, queue in self._queues.items():
                if not queue:
                    continue
                if self._inflight.get(key, 0) >= self.max_inflight:
                    continue
                if force or self._due(queue, now):
                    due.append(key)
            return due

    def next_due(self, now: float) -> Optional[float]:
        """Seconds until the earliest queue becomes due (0 if one is).

        ``None`` when nothing eligible is queued — models at their
        concurrency cap don't count; their flush completion wakes the
        server loop anyway.
        """
        soonest: Optional[float] = None
        with self._lock:
            for key, queue in self._queues.items():
                if not queue:
                    continue
                if self._inflight.get(key, 0) >= self.max_inflight:
                    continue
                wait = (
                    0.0
                    if len(queue) >= self.max_batch
                    else max(0.0, queue[0].deadline - now)
                )
                if soonest is None or wait < soonest:
                    soonest = wait
        return soonest

    # -- flush lifecycle ---------------------------------------------------

    def take(
        self, model_key: Hashable, now: float
    ) -> Tuple[List[QueuedRequest], str]:
        """Pop every queued request for ``model_key`` and mark it in-flight.

        Returns ``(requests, reason)`` where ``reason`` is ``"full"``
        (a complete micro-batch was waiting), ``"deadline"`` (the
        oldest request's deadline forced a partial batch) or
        ``"drain"`` (taken before it was due).  The caller **must**
        pair a non-empty take with :meth:`release`.
        """
        with self._lock:
            queue = self._queues.get(model_key)
            if not queue:
                return [], "drain"
            # Re-check the cap under the lock: due_keys() and take()
            # are not atomic, so two racing pollers could otherwise
            # both start a flush of the same model.
            if self._inflight.get(model_key, 0) >= self.max_inflight:
                return [], "drain"
            if len(queue) >= self.max_batch:
                reason = "full"
            elif queue[0].deadline <= now:
                reason = "deadline"
            else:
                reason = "drain"
            taken = list(queue)
            queue.clear()
            self._depth -= len(taken)
            self._inflight[model_key] = self._inflight.get(model_key, 0) + 1
            return taken, reason

    def release(self, model_key: Hashable) -> None:
        """Mark one in-flight flush of ``model_key`` finished."""
        with self._lock:
            count = self._inflight.get(model_key, 0) - 1
            if count <= 0:
                self._inflight.pop(model_key, None)
            else:
                self._inflight[model_key] = count

    def drain_queued(self) -> List[QueuedRequest]:
        """Pop and return every queued (not in-flight) request.

        The shutdown shedding path: a server past its drain deadline
        empties the queues in one atomic sweep and resolves each
        request with a typed refusal, so no future is ever stranded
        behind a stop flag.  In-flight flushes are untouched — they
        settle their own futures on completion.
        """
        with self._lock:
            taken: List[QueuedRequest] = []
            for queue in self._queues.values():
                taken.extend(queue)
                queue.clear()
            self._depth -= len(taken)
            return taken

    def idle(self) -> bool:
        """True when nothing is queued and nothing is in flight."""
        with self._lock:
            if self._inflight:
                return False
            return not any(self._queues.values())
