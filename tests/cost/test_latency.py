"""Tests for the analytic latency model."""

import numpy as np
import pytest

from repro.cost import (
    CostReport,
    LatencyModel,
    PAPER_TABLE6,
    fit_latency_model,
    paper_calibrated_model,
)


class TestLatencyModel:
    def test_prediction_linear_in_ops(self):
        model = LatencyModel(c_fp_ms_per_gop=10.0, c_bin_ms_per_gop=1.0,
                             c_layer_ms=0.0)
        r1 = CostReport(fp_ops=1e9, binary_ops=0)
        r2 = CostReport(fp_ops=2e9, binary_ops=0)
        assert model.predict(r2) == pytest.approx(2 * model.predict(r1))

    def test_binary_cheaper_than_fp(self):
        model = paper_calibrated_model()
        assert model.c_bin_ms_per_gop < model.c_fp_ms_per_gop

    def test_speedup_helper(self):
        model = LatencyModel(10.0, 1.0, 0.0)
        fast = CostReport(fp_ops=1e9)
        slow = CostReport(fp_ops=10e9)
        assert model.speedup(slow, fast) == pytest.approx(10.0)

    def test_layer_overhead_added(self):
        model = LatencyModel(0.0, 0.0, 2.0)
        report = CostReport(n_counted_layers=5)
        assert model.predict(report) == pytest.approx(10.0)


class TestFitting:
    def test_exact_fit_two_points(self):
        true = LatencyModel(20.0, 2.0, 0.0)
        samples = []
        for fp, bn in [(1e9, 10e9), (5e9, 1e9)]:
            r = CostReport(fp_ops=fp, binary_ops=bn)
            samples.append((r, true.predict(r)))
        fitted = fit_latency_model(samples, c_layer_ms=0.0)
        assert fitted.c_fp_ms_per_gop == pytest.approx(20.0)
        assert fitted.c_bin_ms_per_gop == pytest.approx(2.0)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            fit_latency_model([(CostReport(fp_ops=1e9), 10.0)])

    def test_coefficients_nonnegative(self):
        samples = [(CostReport(fp_ops=1e9, binary_ops=1e9), 1.0),
                   (CostReport(fp_ops=2e9, binary_ops=1e9), 0.5)]
        fitted = fit_latency_model(samples, c_layer_ms=0.0)
        assert fitted.c_fp_ms_per_gop >= 0
        assert fitted.c_bin_ms_per_gop >= 0


class TestPaperCalibration:
    def test_reproduces_fp_vs_binary_gap(self):
        """The calibrated model must keep the paper's ~8-10x FP/E2FIF gap."""
        model = paper_calibrated_model()
        fp = CostReport(fp_ops=64.98e9, n_counted_layers=40)
        e2fif = CostReport(fp_ops=0.6e9, binary_ops=(1.83e9 - 0.6e9) * 64,
                           n_counted_layers=72)
        ratio = model.predict(fp) / model.predict(e2fif)
        assert 5.0 < ratio < 15.0

    def test_paper_table6_constants_present(self):
        assert PAPER_TABLE6["fp_srresnet"]["latency_ms"] == 1649.0
        assert PAPER_TABLE6["scales_chl40"]["ops_g"] == 0.83
