"""Per-client token-bucket quotas for the gateway front door.

The serving layer's admission control (queue-depth bound → typed
``ServerBusy``) protects the *system*; quotas protect clients from
*each other*: one chatty client exhausting the global queue would
starve everyone behind a fair shed.  The front door meters per client
id first, so a client over its budget gets 429 before its traffic can
touch a worker queue.

Classic token bucket: a bucket holds up to ``burst`` tokens and
refills continuously at ``rate_per_s``; each admitted request spends
one token.  Short bursts up to the bucket size pass at line rate,
sustained traffic is capped at the refill rate.  Refill is computed
lazily from elapsed time on each acquire — no timer thread, and an
injectable clock makes every decision deterministic under test.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["QuotaRegistry", "TokenBucket"]


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate_per_s`` refill."""

    def __init__(self, rate_per_s: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._refilled_at)
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate_per_s)
            self._refilled_at = now
            if self._tokens < tokens:
                return False
            self._tokens -= tokens
            return True

    def available(self) -> float:
        """Tokens spendable right now (refill applied, nothing spent)."""
        with self._lock:
            elapsed = max(0.0, self._clock() - self._refilled_at)
            return min(self.burst, self._tokens + elapsed * self.rate_per_s)


class QuotaRegistry:
    """Lazily-created :class:`TokenBucket` per client id.

    ``rate_per_s=None`` disables metering entirely (every acquire
    succeeds) — the default for local/bench use, where the queue-depth
    bound is the only admission control.
    """

    def __init__(self, rate_per_s=None, burst: float = 10.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate_per_s is not None

    def try_acquire(self, client_id: str) -> bool:
        """Admit one request for ``client_id`` (always true when
        metering is disabled)."""
        if self.rate_per_s is None:
            return True
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = self._buckets[client_id] = TokenBucket(
                    self.rate_per_s, self.burst, self._clock)
        return bucket.try_acquire()

    def clients(self) -> int:
        """Distinct client ids seen so far."""
        with self._lock:
            return len(self._buckets)
