"""Reproductions of the paper's figures (Figs. 1, 3, 4, 5, 9).

Figures are regenerated as *data* (five-number distribution summaries,
binary feature maps, per-image PSNR series) rather than rendered plots —
the benchmark suite asserts the property each figure illustrates, and the
runner prints ASCII summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import grad as G
from ..analysis import (
    ActivationRecorder,
    DistributionSummary,
    binary_feature_maps,
    binary_map_richness,
    channel_distributions,
    layer_distributions,
    pixel_distributions,
    token_distributions,
)
from ..binarize import LSFBinarizer2d
from ..binarize.ste import sign_ste
from ..data import benchmark_suite, hr_images
from ..models import build_model, resnet18, SwinViT
from ..nn import Conv2d, Linear, init
from ..train import super_resolve
from ..metrics import psnr_y
from . import cache
from .presets import ExperimentPreset, get_preset


# ----------------------------------------------------------------------
# Fig. 3 / Fig. 4 / Fig. 5 — activation distributions
# ----------------------------------------------------------------------
def fig3_edsr_distributions(image_size: int = 32, seed: int = 5) -> Dict[str, object]:
    """Pixel / layer / channel distributions in FP EDSR (Fig. 3).

    Inputs use the official EDSR 0-255 range (the source of the +-40
    magnitudes in the paper's plot).
    """
    with G.default_dtype("float32"):
        init.seed(11)
        model = build_model("edsr", scale=2, scheme="fp", preset="tiny")
        images = [255.0 * img.transpose(2, 0, 1)[None]
                  for img in hr_images("set14", 2, (image_size, image_size))]
        with ActivationRecorder(model, (Conv2d,), capture="input",
                                name_filter="body") as rec:
            for x in images:
                rec.run(x)
            first_layer = rec.layer_names()[0]
            fmap_img1 = rec.records[first_layer][0][0]
            fmap_img2 = rec.records[first_layer][1][0]
            return {
                "pixels_img1": pixel_distributions(fmap_img1, seed=seed,
                                                   label="EDSR pixels (img1)"),
                "pixels_img2": pixel_distributions(fmap_img2, seed=seed,
                                                   label="EDSR pixels (img2)"),
                "channels": channel_distributions(fmap_img1, seed=seed,
                                                  label="EDSR channels"),
                "layers": layer_distributions(rec.records, label="EDSR layers"),
            }


def fig4_classifier_distributions(image_size: int = 32,
                                  seed: int = 5) -> Dict[str, DistributionSummary]:
    """Pixel distributions in ResNet18 / SwinViT classifiers (Fig. 4)."""
    rng = np.random.default_rng(seed)
    with G.default_dtype("float32"):
        init.seed(11)
        image = rng.random((1, 3, image_size, image_size))

        resnet = resnet18(base_width=16)
        with ActivationRecorder(resnet, (Conv2d,), capture="input") as rec:
            rec.run(image)
            # Skip the stem conv (raw image input): body layers only.
            layer = rec.layer_names()[1]
            resnet_pixels = pixel_distributions(rec.records[layer][0][0], seed=seed,
                                                label="ResNet18 pixels")

        swinvit = SwinViT(embed_dim=16, depth=2, num_heads=2)
        with ActivationRecorder(swinvit, (Linear,), capture="input") as rec:
            rec.run(image)
            layer = rec.layer_names()[0]
            tokens = rec.records[layer][0][0]
            swin_pixels = token_distributions(tokens, seed=seed,
                                              label="SwinViT tokens")
    return {"resnet_pixels": resnet_pixels, "swinvit_pixels": swin_pixels}


def fig5_swinir_distributions(image_size: int = 32,
                              seed: int = 5) -> Dict[str, object]:
    """Pixel / linear-layer / conv-layer distributions in SwinIR (Fig. 5)."""
    with G.default_dtype("float32"):
        init.seed(11)
        model = build_model("swinir", scale=2, scheme="fp", preset="tiny")
        images = [255.0 * img.transpose(2, 0, 1)[None]
                  for img in hr_images("set14", 2, (image_size, image_size))]
        with ActivationRecorder(model, (Linear,), capture="input") as lin_rec, \
                ActivationRecorder(model, (Conv2d,), capture="input",
                                   name_filter="groups") as conv_rec:
            for x in images:
                lin_rec.run(x)
            first = lin_rec.layer_names()[0]
            tokens_img1 = lin_rec.records[first][0][0]
            tokens_img2 = lin_rec.records[first][1][0]
            return {
                "tokens_img1": token_distributions(tokens_img1, seed=seed,
                                                   label="SwinIR tokens (img1)"),
                "tokens_img2": token_distributions(tokens_img2, seed=seed,
                                                   label="SwinIR tokens (img2)"),
                "linear_layers": layer_distributions(lin_rec.records,
                                                     label="SwinIR linear layers"),
                "conv_layers": layer_distributions(conv_rec.records,
                                                   label="SwinIR conv layers"),
            }


# ----------------------------------------------------------------------
# Fig. 1 — binary feature maps: SCALES vs E2FIF
# ----------------------------------------------------------------------
def fig1_binary_feature_maps(scale: int = 4,
                             preset: Optional[ExperimentPreset] = None) -> Dict[str, object]:
    """Binary body feature maps of trained SCALES vs E2FIF models.

    Returns per-layer edge-density ("texture richness") of the binarized
    activations; the paper's visual claim is that SCALES' maps keep more
    structure.
    """
    preset = preset or get_preset()
    image = hr_images("urban100", 1, (64, 64))[0]
    from ..data import make_pair
    pair = make_pair(image, scale)
    x = pair.lr.transpose(2, 0, 1)[None]

    results: Dict[str, object] = {}
    with G.default_dtype("float32"):
        scales_model = cache.get_trained_model("srresnet", "scales", scale, preset,
                                               light_tail=True, head_kernel=3)
        e2fif_model = cache.get_trained_model("srresnet", "e2fif", scale, preset,
                                              light_tail=True, head_kernel=3)
        scales_maps = binary_feature_maps(scales_model, x, (LSFBinarizer2d,))
        # E2FIF has no binarizer module; capture sign outputs via the conv
        # inputs and re-binarize exactly as its forward does.
        from ..binarize.baselines import E2FIFBinaryConv2d
        with ActivationRecorder(e2fif_model, (E2FIFBinaryConv2d,),
                                capture="input") as rec:
            rec.run(x)
            e2fif_maps = {name: np.where(arrays[0] >= 0, 1.0, -1.0)
                          for name, arrays in rec.records.items()}
    results["scales_richness"] = [binary_map_richness(m) for m in scales_maps.values()]
    results["e2fif_richness"] = [binary_map_richness(m) for m in e2fif_maps.values()]
    results["scales_maps"] = scales_maps
    results["e2fif_maps"] = e2fif_maps
    return results


# ----------------------------------------------------------------------
# Fig. 9 — qualitative comparison (reconstruction-error proxy)
# ----------------------------------------------------------------------
def fig9_visual_comparison(scale: int = 4,
                           preset: Optional[ExperimentPreset] = None,
                           n_images: int = 8) -> List[Dict[str, float]]:
    """Per-image PSNR of SCALES vs E2FIF vs bicubic on stripe-heavy images.

    The paper's Fig. 9 shows SCALES reconstructing stripe orientation that
    E2FIF gets wrong; numerically that appears as a per-image PSNR gap on
    the urban suite.
    """
    preset = preset or get_preset()
    pairs = benchmark_suite("urban100", scale, n_images, (64, 64))
    rows: List[Dict[str, float]] = []
    with G.default_dtype("float32"):
        scales_model = cache.get_trained_model("srresnet", "scales", scale, preset,
                                               light_tail=True, head_kernel=3)
        e2fif_model = cache.get_trained_model("srresnet", "e2fif", scale, preset,
                                              light_tail=True, head_kernel=3)
        from ..data.resize import upscale
        for pair in pairs:
            sr_scales = super_resolve(scales_model, pair.lr)
            sr_e2fif = super_resolve(e2fif_model, pair.lr)
            sr_bicubic = np.clip(upscale(pair.lr, scale), 0, 1)
            rows.append({
                "image": pair.name,
                "scales_psnr": psnr_y(sr_scales, pair.hr, shave=scale),
                "e2fif_psnr": psnr_y(sr_e2fif, pair.hr, shave=scale),
                "bicubic_psnr": psnr_y(sr_bicubic, pair.hr, shave=scale),
            })
    return rows
