"""Extension bench — the LSF calibration design choice.

DESIGN.md substitutes the paper's 300-epoch budget (long enough for the
Eq. 1 threshold ``beta`` to find each channel's operating point) with a
one-batch data-dependent calibration.  This bench documents that choice:
with calibration, the trained SCALES model's binarized feature maps stay
textured (the Fig. 1 property) *and* accuracy does not regress versus
training the thresholds from zero init.
"""

import numpy as np

from repro import grad as G
from repro.analysis import binary_feature_maps, binary_map_richness
from repro.binarize import LSFBinarizer2d
from repro.data import benchmark_suite, make_pair, hr_images
from repro.experiments import cache
from repro.experiments.presets import ExperimentPreset
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer, evaluate

_PRESET = ExperimentPreset(train_images=24, train_image_size=96,
                           eval_images=8, eval_image_size=64, steps=400,
                           batch_size=8, patch_size=16, lr=3e-4, lr_step=280)


def _train(calibrate: bool, scale: int, suites):
    with G.default_dtype("float32"):
        init.seed(42)
        model = build_model("srresnet", scale=scale, scheme="scales",
                            preset="tiny", light_tail=True, head_kernel=3)
        pool = cache.get_training_pool(scale, _PRESET)
        config = TrainConfig(steps=_PRESET.steps, batch_size=_PRESET.batch_size,
                             patch_size=_PRESET.patch_size, lr=_PRESET.lr,
                             lr_step=_PRESET.lr_step, seed=_PRESET.seed,
                             calibrate=calibrate)
        Trainer(model, pool, config).fit()
        psnr = {name: evaluate(model, pairs).psnr
                for name, pairs in suites.items()}

        image = hr_images("urban100", 1, (64, 64))[0]
        x = make_pair(image, scale).lr.transpose(2, 0, 1)[None].astype(np.float32)
        maps = binary_feature_maps(model, x, (LSFBinarizer2d,))
        richness = [binary_map_richness(m) for m in maps.values()]
    return psnr, richness


def test_calibration_ablation(benchmark):
    scale = 4
    suites = {name: benchmark_suite(name, scale, _PRESET.eval_images,
                                    (_PRESET.eval_image_size,) * 2)
              for name in ("b100", "urban100")}

    def run_both():
        return {"on": _train(True, scale, suites),
                "off": _train(False, scale, suites)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    (psnr_on, rich_on) = results["on"]
    (psnr_off, rich_off) = results["off"]
    print(f"\ncalibrated:   psnr={psnr_on}  richness={np.round(rich_on, 3)}")
    print(f"uncalibrated: psnr={psnr_off}  richness={np.round(rich_off, 3)}")

    # Calibrated thresholds keep the sign maps textured (the Fig. 1
    # property): no layer collapses to a near-constant map.
    assert min(rich_on) > 0.02
    assert np.mean(rich_on) >= np.mean(rich_off)

    # And accuracy does not regress for the calibrated model.
    assert np.mean(list(psnr_on.values())) > np.mean(list(psnr_off.values())) - 0.1
