"""BTM / IBTM: binary training mechanism without BatchNorm (Jiang et al.).

BTM removes BatchNorm from the BNN entirely (BN's FP multiplies and adds
are a large share of a BNN's remaining cost) and instead normalizes the
*input image* once, then trains with a learnable per-layer threshold.
The image-level scale ``mean(|x|)`` re-applied to the binary output makes
the method image-adaptive at negligible cost (Table I: Img ✔, Low cost).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ... import grad as G
from ...grad import Tensor
from ...nn import Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class BTMBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.threshold = Parameter(np.zeros((1, in_channels, 1, 1)))
        self.skip = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        # Image-level scalar scale: one FP mean per image (cheap, Img ✔).
        image_scale = np.abs(x.data).mean(axis=(1, 2, 3), keepdims=True)
        xb = approx_sign_ste(x - self.threshold)
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        out = out * Tensor(image_scale)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "BTM", "spatial": False, "channel": False,
                "layer": False, "image": True, "hw_cost": "Low"}
