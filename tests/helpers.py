"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.grad import Tensor


def numeric_grad(f: Callable[[], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``x`` in place."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f()
        x[idx] = original - eps
        f_minus = f()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(build: Callable[[Sequence[Tensor]], Tensor],
                    arrays: Sequence[np.ndarray],
                    atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert autograd gradients match finite differences.

    ``build`` maps a list of leaf Tensors to a scalar Tensor output.
    """
    leaves = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(leaves)
    assert out.size == 1, "gradient check needs a scalar output"
    out.backward()

    for i, (leaf, arr) in enumerate(zip(leaves, arrays)):
        def f() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(build(fresh).data)

        expected = numeric_grad(f, arr)
        actual = leaf.grad
        assert actual is not None, f"no gradient for input {i}"
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol,
                                   err_msg=f"gradient mismatch for input {i}")


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
