"""Properties of the Fig. 1 richness metric and variance statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import binary_map_richness, variance_stats


class TestBinaryMapRichness:
    def test_constant_map_is_zero(self):
        assert binary_map_richness(np.ones((3, 8, 8))) == 0.0

    def test_checkerboard_is_maximal(self):
        y, x = np.mgrid[0:8, 0:8]
        board = np.where((y + x) % 2 == 0, 1.0, -1.0)
        assert binary_map_richness(board[None]) == 1.0

    def test_half_split_map(self):
        arr = np.ones((1, 8, 8))
        arr[:, 4:] = -1.0
        # One horizontal seam: 8 vertical flips of 56 vertical pairs,
        # zero horizontal flips.
        expected = (0 + 8 / 56) / 2
        assert binary_map_richness(arr) == pytest.approx(expected)

    def test_accepts_batch_axis(self):
        arr = np.ones((1, 2, 4, 4))
        assert binary_map_richness(arr) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31))
    def test_bounded_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        arr = np.where(rng.random((2, 6, 6)) > 0.5, 1.0, -1.0)
        richness = binary_map_richness(arr)
        assert 0.0 <= richness <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31))
    def test_invariant_to_global_sign_flip(self, seed):
        rng = np.random.default_rng(seed)
        arr = np.where(rng.random((2, 6, 6)) > 0.5, 1.0, -1.0)
        assert binary_map_richness(arr) == binary_map_richness(-arr)


class TestVarianceStats:
    def _records(self, scale_second_layer=1.0, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "layer0": [rng.normal(size=(1, 4, 6, 6)) for _ in range(3)],
            "layer1": [scale_second_layer * rng.normal(size=(1, 4, 6, 6))
                       for _ in range(3)],
        }

    def test_axes_present(self):
        stats = variance_stats("net", self._records())
        d = stats.as_dict()
        for axis in ("chl-to-chl", "pixel-to-pixel", "layer-to-layer",
                     "image-to-image"):
            assert axis in d and np.isfinite(d[axis])

    def test_layer_axis_grows_with_layer_magnitude_gap(self):
        near = variance_stats("a", self._records(scale_second_layer=1.0))
        far = variance_stats("b", self._records(scale_second_layer=50.0))
        assert far.layer_to_layer > near.layer_to_layer
