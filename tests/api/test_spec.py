"""ModelSpec: validation, recipe round-trip, and build_model interop."""

import pytest

from repro.api import ModelSpec
from repro.models import ARCHITECTURES, build_model, preset_names


class TestValidation:
    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            ModelSpec("vdsr")

    def test_unknown_scheme_for_cnn(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ModelSpec("srresnet", scheme="bivit")  # transformer-only scheme

    def test_unknown_scheme_for_transformer(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ModelSpec("swinir", scheme="e2fif")  # conv-only scheme

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            ModelSpec("srresnet", preset="huge")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            ModelSpec("srresnet", scale=0)

    def test_architecture_case_insensitive(self):
        assert ModelSpec("SRResNet").architecture == "srresnet"

    def test_preset_names_match_spec_validation(self):
        for arch in ARCHITECTURES:
            names = preset_names(arch)
            assert "tiny" in names
            for preset in names:
                # every advertised preset must construct a valid spec
                ModelSpec(arch, scheme="fp", preset=preset)

    def test_preset_names_unknown_architecture(self):
        with pytest.raises(KeyError):
            preset_names("vdsr")


class TestRecipeRoundTrip:
    def test_to_from_recipe(self):
        spec = ModelSpec("edsr", scheme="e2fif", scale=3, preset="small",
                         overrides={"n_feats": 24})
        assert ModelSpec.from_recipe(spec.to_recipe()) == spec

    def test_key_and_route(self):
        spec = ModelSpec("srresnet", scheme="scales", scale=2)
        assert spec.key == ("srresnet", "scales", 2)
        assert spec.route == "srresnet/scales/x2"

    def test_hashable(self):
        a = ModelSpec("srresnet", overrides={"light_tail": True})
        b = ModelSpec("srresnet", overrides={"light_tail": True})
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1

    def test_coerce(self):
        spec = ModelSpec("srresnet")
        assert ModelSpec.coerce(spec) is spec
        assert ModelSpec.coerce(spec.to_recipe()) == spec
        assert ModelSpec.coerce("srresnet") == spec
        with pytest.raises(ValueError, match="cannot combine"):
            ModelSpec.coerce(spec, scale=3)

    def test_coerce_refuses_recipe_plus_kwargs(self):
        # a silently-dropped kwarg would build the wrong model
        recipe = ModelSpec("srresnet").to_recipe()
        with pytest.raises(ValueError, match="cannot combine"):
            ModelSpec.coerce(recipe, scale=4)


class TestBuildInterop:
    def test_build_model_accepts_spec(self):
        spec = ModelSpec("srresnet", scheme="scales", scale=2,
                         overrides={"light_tail": True, "head_kernel": 3})
        model = build_model(spec)
        assert model.build_recipe == spec.to_recipe()

    def test_build_model_spec_with_override_wins(self):
        spec = ModelSpec("srresnet", scheme="scales",
                         overrides={"n_feats": 16})
        model = build_model(spec, n_feats=8)
        assert model.build_recipe["overrides"]["n_feats"] == 8

    def test_spec_build_matches_build_model(self):
        spec = ModelSpec("srresnet", scheme="scales", scale=2)
        a = spec.build(seed=7)
        from repro.nn import init
        init.seed(7)
        b = build_model("srresnet", scale=2, scheme="scales", preset="tiny")
        import numpy as np
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)
