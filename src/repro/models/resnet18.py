"""ResNet-style image classifier — the Fig. 4a / Table II comparison point.

The motivation study of Sec. III contrasts SR-network activations with a
classification CNN: BatchNorm keeps classifier activations in a narrow
band, which is exactly what Fig. 4a shows.  A configurable-depth ResNet
(default mirrors ResNet18's 4-stage layout at reduced width) provides
that reference here.
"""

from __future__ import annotations

from typing import Sequence

from ..grad import Tensor
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)


class BasicBlock(Module):
    """conv-BN-ReLU-conv-BN + skip (1x1 projection on stride/width change)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride)
        self.bn1 = BatchNorm2d(out_channels)
        self.act = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, padding=0),
                BatchNorm2d(out_channels))
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn2(self.conv2(self.act(self.bn1(self.conv1(x)))))
        return self.act.forward(out + self.shortcut(x))


class ResNet(Module):
    def __init__(self, num_classes: int = 10, base_width: int = 16,
                 blocks_per_stage: Sequence[int] = (2, 2, 2, 2), n_colors: int = 3):
        super().__init__()
        self.stem = Sequential(Conv2d(n_colors, base_width, 3),
                               BatchNorm2d(base_width), ReLU())
        stages = []
        in_ch = base_width
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            out_ch = base_width * (2 ** stage_idx)
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(BasicBlock(in_ch, out_ch, stride))
                in_ch = out_ch
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.flatten = Flatten()
        self.fc = Linear(in_ch, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        feat = self.stages(self.stem(x))
        return self.fc(self.flatten(self.pool(feat)))


def resnet18(num_classes: int = 10, base_width: int = 16) -> ResNet:
    """The 4-stage / 2-blocks-per-stage layout of ResNet18."""
    return ResNet(num_classes, base_width, (2, 2, 2, 2))
