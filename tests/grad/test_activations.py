"""Gradient and value tests for pointwise ops."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor

from ..helpers import check_gradients, rng


class TestValues:
    def test_relu_values(self):
        out = G.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_symmetry(self):
        x = rng(0).normal(size=100) * 5
        out = G.sigmoid(Tensor(x)).data
        assert np.all((out > 0) & (out < 1))
        np.testing.assert_allclose(G.sigmoid(Tensor(-x)).data, 1 - out, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = G.sigmoid(Tensor([-1000.0, 1000.0])).data
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_softmax_sums_to_one(self):
        x = rng(0).normal(size=(4, 7))
        out = G.softmax(Tensor(x), axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = rng(0).normal(size=(5,))
        a = G.softmax(Tensor(x)).data
        b = G.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_clip_values(self):
        out = G.clip(Tensor([-2.0, 0.5, 2.0]), -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_where_selects(self):
        cond = np.array([True, False])
        out = G.where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_maximum_values(self):
        out = G.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_gelu_known_points(self):
        out = G.gelu(Tensor([0.0])).data
        assert out[0] == pytest.approx(0.0)
        assert G.gelu(Tensor([3.0])).data[0] == pytest.approx(3.0, abs=0.02)


class TestGradients:
    @pytest.mark.parametrize("fn", [G.exp, G.tanh, G.sigmoid, G.gelu])
    def test_smooth_unary(self, fn):
        check_gradients(lambda ts: G.sum(fn(ts[0])),
                        [rng(3).normal(size=(3, 4))])

    def test_log_sqrt_positive_domain(self):
        check_gradients(lambda ts: G.sum(G.log(ts[0]) + G.sqrt(ts[0])),
                        [rng(0).random((3, 3)) + 0.5])

    def test_relu_grad_masks_negative(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        G.sum(G.relu(x)).backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_grad(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        G.sum(G.leaky_relu(x, 0.1)).backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_abs_grad_is_sign(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        G.sum(G.absolute(x)).backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_softmax_grad(self):
        check_gradients(lambda ts: G.sum(G.softmax(ts[0], axis=-1) ** 2),
                        [rng(5).normal(size=(2, 5))])

    def test_clip_grad_zero_outside(self):
        x = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        G.sum(G.clip(x, -1.0, 1.0)).backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_grad_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        G.sum(G.maximum(a, b)).backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_where_grad_routing(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        G.sum(G.where(cond, a, b)).backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])
