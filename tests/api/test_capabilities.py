"""Capability registry: one merged answer for compile/export/serve."""

import pytest

from repro.api import (Capability, EngineError, ModelSpec, capability,
                       capability_matrix)
from repro.deploy import deploy_registry
from repro.serve import parse_model_key


class TestCapability:
    def test_full_coverage_cell(self):
        cap = capability(ModelSpec("srresnet", scheme="scales"))
        assert cap.coverage == "full"
        assert cap.can_compile and cap.can_export and cap.can_serve
        cap.require("compile")
        cap.require("export")
        cap.require("serve")

    def test_fp_cell_refuses_with_detail(self):
        cap = capability(ModelSpec("srresnet", scheme="fp"))
        assert cap.coverage == "none"
        assert not cap.can_compile
        with pytest.raises(EngineError, match="cannot compile"):
            cap.require("compile")

    def test_partial_transformer_cell(self):
        cap = capability(ModelSpec("swinir", scheme="bibert"))
        assert cap.coverage == "partial"
        assert cap.can_serve

    def test_backend_switches_are_merged_in(self):
        cap = capability(ModelSpec("srresnet"))
        assert cap.packed_backends == ("fast", "reference")
        assert cap.conv_backends == ("fast", "reference")

    def test_unknown_action(self):
        with pytest.raises(KeyError):
            capability(ModelSpec("srresnet")).require("fly")


class TestMatrix:
    def test_matrix_matches_deploy_registry(self):
        caps = {c.key: c for c in capability_matrix()}
        entries = {e.key: e for e in deploy_registry()}
        assert caps.keys() == entries.keys()
        for key, cap in caps.items():
            assert isinstance(cap, Capability)
            assert cap.coverage == entries[key].coverage
            assert cap.can_compile == entries[key].deployable

    def test_matrix_cells_answer_before_work(self):
        # every cell answers without building or compiling a model
        for cap in capability_matrix():
            assert cap.coverage in ("full", "partial", "none")


class TestKeyInterop:
    def test_parse_model_key_accepts_spec(self):
        spec = ModelSpec("srresnet", scheme="scales", scale=2)
        assert parse_model_key(spec) == spec.key

    def test_parse_model_key_accepts_deploy_entry(self):
        entry = next(e for e in deploy_registry() if e.deployable)
        assert parse_model_key(entry) == entry.key

    def test_parse_model_key_still_accepts_strings_and_tuples(self):
        assert parse_model_key("srresnet/scales/x2") == \
            ("srresnet", "scales", 2)
        assert parse_model_key(("srresnet", "scales", 2)) == \
            ("srresnet", "scales", 2)
