"""Telemetry: counters, histogram percentiles, derived rates, report."""

import threading

import pytest

from repro.serve import LatencyHistogram, Telemetry


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.snapshot() == {"count": 0}

    def test_percentiles_are_monotone_and_bracketed(self):
        hist = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for v in values:
            hist.record(v)
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # Log-bucketed: p50 of a uniform 1..100ms spread lands within
        # a factor-of-two bucket of the true median.
        assert 0.025 <= p50 <= 0.1

    def test_exact_count_sum_min_max(self):
        hist = LatencyHistogram()
        for v in (0.5, 0.25, 1.5):
            hist.record(v)
        assert hist.count == 3
        assert hist.min == 0.25
        assert hist.max == 1.5
        assert hist.mean == pytest.approx(2.25 / 3)

    def test_single_observation_is_every_percentile(self):
        hist = LatencyHistogram()
        hist.record(0.042)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == pytest.approx(0.042)

    def test_invalid_percentile(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_negative_latency_clamped(self):
        hist = LatencyHistogram()
        hist.record(-0.5)
        assert hist.min == 0.0


class TestTelemetry:
    def test_counters(self):
        t = Telemetry()
        t.count("requests")
        t.count("requests", 4)
        assert t.counter("requests") == 5
        assert t.counter("never") == 0

    def test_stats_derived_rates(self):
        t = Telemetry(batch_capacity=8)
        for _ in range(3):
            t.count("cache_hits")
        t.count("cache_misses")
        t.count("requests", 10)
        t.count("shed", 2)
        t.count("batches", 2)
        t.count("batch_images", 12)
        derived = t.stats()["derived"]
        assert derived["cache_hit_rate"] == pytest.approx(0.75)
        assert derived["shed_rate"] == pytest.approx(0.2)
        assert derived["batch_occupancy"] == pytest.approx(12 / 16)

    def test_derived_none_without_inputs(self):
        derived = Telemetry().stats()["derived"]
        assert derived["cache_hit_rate"] is None
        assert derived["shed_rate"] is None
        assert derived["batch_occupancy"] is None

    def test_latency_snapshot_in_stats(self):
        t = Telemetry()
        for ms in (1, 2, 4):
            t.observe("request_latency", ms / 1e3)
        snap = t.stats()["latency"]["request_latency"]
        assert snap["count"] == 3
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
        assert snap["max_ms"] == pytest.approx(4.0)

    def test_report_mentions_everything(self):
        t = Telemetry(batch_capacity=4)
        t.count("requests", 7)
        t.observe("batch_seconds", 0.01)
        report = t.report()
        assert "requests" in report
        assert "7" in report
        assert "batch_seconds" in report
        assert "cache_hit_rate" in report

    def test_thread_safety_exact_totals(self):
        t = Telemetry()
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                t.count("requests")
                t.observe("request_latency", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert t.counter("requests") == n_threads * per_thread
        snap = t.stats()["latency"]["request_latency"]
        assert snap["count"] == n_threads * per_thread
