"""The gateway worker: one process, one :class:`ModelServer`, one port.

``worker_main`` is the spawn target the gateway launches per worker
slot.  Each worker owns a full serving stack over the *shared*
artifact zoo directory — consistent hashing at the front door decides
which slice of the zoo a worker actually sees, so its LRU and result
cache stay hot on just those models — and speaks the gateway wire
format (:mod:`repro.gateway.wire`) over a localhost HTTP server bound
to an ephemeral port.  The bound port is reported back through a pipe;
readiness is the gateway's to await, not a sleep.

Shutdown is the PR 7 graceful-drain path end to end: SIGTERM flips the
worker to *draining* (new ``/infer`` requests get an immediate 503
while handler threads already waiting on futures keep waiting), then
``ModelServer.close(drain=True)`` settles every admitted request,
the HTTP server stops accepting, and handler threads are joined —
an in-flight client sees its real result, never a reset connection.
"""

from __future__ import annotations

import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..serve.metrics import EXPOSITION_CONTENT_TYPE
from ..serve.server import ModelServer, ServeError, ServerBusy, ServerConfig
from . import wire

__all__ = ["RESULT_TIMEOUT_S", "classify_result", "worker_main"]

#: How long a handler thread waits on a future before answering 504.
RESULT_TIMEOUT_S = 60.0


def classify_result(value) -> Tuple[int, bytes]:
    """Map a settled :class:`ServeFuture` value to ``(status, body)``.

    The full status table lives in :mod:`repro.gateway.wire`; the two
    shed flavours split deliberately — 429 says "you are over a bound,
    back off", 503 says "this process is going away, go elsewhere" —
    so the front door can retry 503 on another worker but must
    propagate 429 to the client.
    """
    if isinstance(value, np.ndarray):
        return 200, wire.dumps(
            {"status": "ok", "output": wire.encode_array(value)})
    if isinstance(value, ServerBusy):
        status = 429 if value.reason == "queue full" else 503
        return status, wire.error_body(
            "busy", value.reason, retryable=True)[1]
    if isinstance(value, ServeError):
        return 500, wire.error_body("error", value.message)[1]
    return 500, wire.error_body(
        "error", f"unexpected result type {type(value).__name__}")[1]


class _WorkerHTTPServer(ThreadingHTTPServer):
    """Per-worker HTTP server carrying the serving state.

    ``daemon_threads`` is off on purpose: ``server_close()`` then joins
    every in-flight handler thread, which is what makes SIGTERM drain
    mean "every admitted request was answered" rather than "the
    process got around to exiting".
    """

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler, *, worker_id: int,
                 model_server: ModelServer) -> None:
        super().__init__(address, handler)
        self.worker_id = worker_id
        self.model_server = model_server
        self.draining = False


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive lets the front door reuse proxy connections.
    protocol_version = "HTTP/1.1"

    server: _WorkerHTTPServer  # narrowed from socketserver.BaseServer

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # workers are spawned in tests; stderr chatter is noise

    def _reply(self, status: int, body: bytes,
               content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            draining = self.server.draining
            self._reply(200 if not draining else 503, wire.dumps({
                "status": "draining" if draining else "ok",
                "worker": self.server.worker_id,
                "pid": os.getpid(),
            }))
        elif self.path == "/stats":
            self._reply(200, wire.dumps(self.server.model_server.stats()))
        elif self.path == "/metrics":
            # The worker's own scrape surface (exposition text); the
            # front door aggregates /metrics.json instead so families
            # merge across the pool under one TYPE block each.
            text = self.server.model_server.metrics.render()
            self._reply(200, text.encode("utf-8"),
                        content_type=EXPOSITION_CONTENT_TYPE)
        elif self.path == "/metrics.json":
            self._reply(
                200, wire.dumps(self.server.model_server.metrics.dump()))
        else:
            self._reply(404, wire.error_body(
                "error", f"no route {self.path}")[1])

    def do_POST(self) -> None:
        if self.path != "/infer":
            self._reply(404, wire.error_body(
                "error", f"no route {self.path}")[1])
            return
        if self.server.draining:
            self._reply(503, wire.error_body(
                "busy", "worker draining", retryable=True)[1])
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = wire.loads(self.rfile.read(length))
            if not isinstance(request, dict) or "model" not in request \
                    or "image" not in request:
                raise wire.WireError(
                    "request must be an object with 'model' and 'image'")
            image = wire.decode_array(request["image"])
            deadline_s = request.get("deadline_s")
            if deadline_s is not None:
                deadline_s = float(deadline_s)
        except wire.WireError as exc:
            self._reply(400, wire.error_body("error", str(exc))[1])
            return
        server = self.server.model_server
        # Correlation id threaded from the front door (or the client):
        # the worker's structured request log lines carry the same id
        # as the gateway's proxy line for the same request.
        request_id = self.headers.get("X-Request-Id") or None
        try:
            future = server.submit(image, str(request["model"]),
                                   deadline_s=deadline_s,
                                   request_id=request_id)
        except KeyError as exc:
            self._reply(404, wire.error_body("error", str(exc))[1])
            return
        except ValueError as exc:
            self._reply(400, wire.error_body("error", str(exc))[1])
            return
        try:
            value = future.result(timeout=RESULT_TIMEOUT_S)
        except TimeoutError:
            self._reply(504, wire.error_body(
                "error", "result not ready within "
                f"{RESULT_TIMEOUT_S:g}s", retryable=True)[1])
            return
        self._reply(*classify_result(value))


def worker_main(worker_id: int, artifact_dir: str,
                config: Optional[ServerConfig], conn) -> None:
    """Spawn target: serve ``artifact_dir`` on an ephemeral localhost
    port until SIGTERM, then drain and exit 0.

    ``conn`` (one end of a ``multiprocessing.Pipe``) receives exactly
    one message: ``("ready", port)`` once the socket is bound and the
    model server is scanning-complete, or ``("error", message)`` when
    startup fails — the gateway blocks on this instead of sleeping.
    """
    try:
        model_server = ModelServer(artifact_dir, config)
        httpd = _WorkerHTTPServer(
            ("127.0.0.1", 0), _Handler,
            worker_id=worker_id, model_server=model_server)
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        raise SystemExit(1)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    serve_thread = threading.Thread(
        target=httpd.serve_forever, name=f"gateway-worker-{worker_id}",
        daemon=True)
    serve_thread.start()
    conn.send(("ready", httpd.server_address[1]))
    conn.close()

    # Timed waits so a SIGTERM landing mid-acquire still gets its
    # Python-level handler run within one period on every platform.
    while not stop.is_set():
        stop.wait(timeout=0.2)
    # Drain order matters: refuse new work first, settle admitted work
    # second, only then stop the socket — so every request the worker
    # ever said yes to gets a real response.
    httpd.draining = True
    model_server.close(drain=True)
    httpd.shutdown()
    serve_thread.join(timeout=5.0)
    httpd.server_close()
