"""Wire format of the HTTP gateway: JSON with base64 array payloads.

Everything that crosses a gateway socket is a JSON object; image and
output tensors ride inside it as ``{"shape", "dtype", "data"}`` triples
with the raw array bytes base64-encoded.  The codec is deliberately
dumb — no pickling, no framing beyond HTTP's own ``Content-Length`` —
so any HTTP client in any language can talk to the gateway, and a
worker can never be made to execute attacker-supplied bytecode.

Status mapping (shared by worker and front door so a proxied response
forwards byte-for-byte):

====== ==========================================================
code    meaning
====== ==========================================================
200     ``{"status": "ok", "output": {...}}``
400     malformed request (bad JSON, missing field, bad shape)
404     unknown model key
429     shed — per-client quota or the server's queue-depth bound
503     shed — server/gateway draining or worker unavailable
500     typed ``ServeError`` from the execution layer
504     the worker's deadline passed without a result
====== ==========================================================

429 and 503 both carry ``"retryable": true``: the caller did nothing
wrong, the system is protecting itself.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, Tuple

import numpy as np

__all__ = [
    "WireError",
    "decode_array",
    "dumps",
    "encode_array",
    "error_body",
    "loads",
]


class WireError(ValueError):
    """A payload that does not follow the wire format (maps to 400)."""


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Pack an ndarray as a JSON-safe ``{"shape","dtype","data"}``."""
    array = np.ascontiguousarray(array)
    return {
        "shape": list(array.shape),
        "dtype": str(array.dtype),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: Any) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises :class:`WireError` on
    anything malformed (wrong keys, byte count not matching shape)."""
    if not isinstance(payload, dict):
        raise WireError(f"array payload must be an object, got "
                        f"{type(payload).__name__}")
    try:
        shape = tuple(int(n) for n in payload["shape"])
        dtype = np.dtype(str(payload["dtype"]))
        data = base64.b64decode(payload["data"], validate=True)
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"bad array payload: {exc}") from exc
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(data) != expected:
        raise WireError(
            f"array payload carries {len(data)} bytes but shape {shape} "
            f"dtype {dtype} needs {expected}")
    return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


def dumps(obj: Any) -> bytes:
    """JSON-encode a wire object to UTF-8 bytes."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def loads(data: bytes) -> Any:
    """Decode a wire body; raises :class:`WireError` on invalid JSON."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from exc


def error_body(status: str, reason: str, *,
               retryable: bool = False) -> Tuple[Dict[str, Any], bytes]:
    """A non-200 response body: ``(object, encoded bytes)``."""
    body = {"status": status, "reason": reason}
    if retryable:
        body["retryable"] = True
    return body, dumps(body)
