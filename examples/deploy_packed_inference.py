"""Deploy a trained binary SR network on packed XNOR-popcount kernels.

The paper's Table VI measures its models on a phone through Larq, which
executes binary convolutions on packed 1-bit operands.  This example
shows the equivalent flow in this repo:

1. train a small SCALES-binarized SRResNet;
2. compile it with :func:`repro.deploy.compile_model` — every binary conv
   is replaced by a packed uint64 XNOR-popcount twin;
3. verify the deployment is lossless and inspect the memory footprint.

Run:  python examples/deploy_packed_inference.py
"""

import numpy as np

from repro import grad as G
from repro.data import benchmark_suite, training_pool
from repro.deploy import compile_model, deployment_report
from repro.metrics import psnr_y
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer, evaluate, super_resolve


def main() -> None:
    scale = 4
    with G.default_dtype("float32"):
        init.seed(42)
        model = build_model("srresnet", scale=scale, scheme="scales",
                            preset="tiny", light_tail=True, head_kernel=3)

        print("Training SCALES-binarized SRResNet (quick demo schedule)...")
        pool = training_pool(scale=scale, n_images=12, size=(96, 96))
        trainer = Trainer(model, pool, TrainConfig(steps=200, batch_size=8,
                                                   patch_size=16, lr=3e-4,
                                                   lr_step=140, seed=7))
        trainer.fit(verbose=True)

        print("\nCompiling onto packed XNOR-popcount kernels...")
        compiled = compile_model(model)
        report = deployment_report(compiled)
        print(f"  packed binary layers : {report.n_binary_layers}")
        print(f"  binary weights       : {report.packed_weight_bytes} bytes "
              f"(was {report.dense_weight_bytes} in float32 -> "
              f"{report.weight_compression:.1f}x)")
        print(f"  FP remainder         : {report.fp_bytes} bytes")
        print(f"  whole model          : {report.model_compression:.2f}x smaller")

        print("\nVerifying the deployment is lossless...")
        pairs = benchmark_suite("urban100", scale, 3, (64, 64))
        for pair in pairs:
            sr_float = super_resolve(model, pair.lr)
            sr_packed = super_resolve(compiled, pair.lr)
            p_float = psnr_y(sr_float, pair.hr, shave=scale)
            p_packed = psnr_y(sr_packed, pair.hr, shave=scale)
            max_diff = np.abs(sr_float - sr_packed).max()
            print(f"  {pair.name}: float {p_float:.2f} dB | packed "
                  f"{p_packed:.2f} dB | max pixel diff {max_diff:.2e}")

        result = evaluate(compiled, pairs)
        print(f"\nPacked-path mean PSNR over the suite: {result.psnr:.2f} dB")

        print("\nTiled inference (bounded memory on large inputs)...")
        tiled = compile_model(model, tile=32, tile_overlap=8,
                              tile_batch_size=16)
        big = np.random.default_rng(0).random((96, 128, 3)).astype(np.float32)
        sr_tiled = super_resolve(tiled, big)
        print(f"  {big.shape[1]}x{big.shape[0]} LR -> "
              f"{sr_tiled.shape[1]}x{sr_tiled.shape[0]} SR via batched "
              f"32x32 tiles (see examples/pipeline_serving.py for the "
              f"serving pipeline)")


if __name__ == "__main__":
    main()
