"""BiBERT-style binary linear layer — the transformer baseline of Table IV.

The paper builds its binary-transformer baseline from BiBERT (Bai et al.):
activations pass through a plain sign, weights get the per-row l1 scale,
and no input-dependent re-scaling exists anywhere.  SCALES' >1 dB gain in
Table IV is measured against exactly this layer dropped into SwinIR / HAT.
"""

from __future__ import annotations

from ... import grad as G
from ...grad import Tensor
from ...nn import Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import sign_ste
from ..weight import binarize_weight


class BiBERTBinaryLinear(BinaryLayerBase):
    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.trunc_normal((out_features, in_features), std=0.02))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        xb = sign_ste(x)
        w_hat = binarize_weight(self.weight)
        flat = x.ndim != 2
        prefix = x.shape[:-1]
        xb2 = G.reshape(xb, (-1, self.in_features)) if flat else xb
        out = xb2 @ G.transpose(w_hat, (1, 0))
        if self.bias is not None:
            out = out + self.bias
        if flat:
            out = G.reshape(out, prefix + (self.out_features,))
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "BiBERT baseline", "spatial": False, "channel": False,
                "layer": False, "image": False, "hw_cost": "Low"}
