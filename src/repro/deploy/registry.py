"""Zoo-wide deploy registry: which (architecture, scheme) pairs pack.

The paper's deployment story assumes any trained network can be exported
to the packed XNOR-popcount form; this module makes that claim auditable
across the whole model zoo.  For every combination
``models.build_model`` can produce it records a :class:`DeployEntry`
describing *compile coverage*:

``full``
    every binary layer the scheme inserts has a packed twin in
    :data:`repro.deploy.engine._COMPILERS` — the artifact ships no float
    binary weights at all;
``partial``
    at least one layer packs but some binary layers stay on the float
    path (e.g. transformer ``bibert``: the BiBERT linears pack, the
    ``plain``-scheme block convs do not);
``none``
    nothing packs — ``compile_model`` would raise (``fp`` and the
    float-simulation baselines such as ``bam`` / ``daq``).

Coverage is probed *empirically*: one throwaway layer per scheme is
instantiated and matched against the compiler table, so a new scheme or
a new packed twin is picked up automatically.

The registry also builds the *skeletons* the artifact loader needs: the
same architecture with :class:`PlaceholderBinaryLayer` at every
packable site, so ``load_artifact`` never materializes (or even
randomly initializes) the float binary weights it is about to discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..binarize import (conv_scheme_names, get_conv_factory,
                        get_linear_factory)
from ..models import (ARCHITECTURES, CNN_ARCHITECTURES, build_model,
                      transformer_scheme_names, transformer_scheme_pair)
from ..nn import Module

__all__ = [
    "PlaceholderBinaryLayer", "DeployEntry", "deploy_registry",
    "deployable_entries", "registry_matrix", "build_entry",
    "build_skeleton", "classify_recipe",
]


class PlaceholderBinaryLayer(Module):
    """Stand-in for a packable binary layer in a loader skeleton.

    Carries no parameters and cannot run: if a forward ever reaches one,
    the artifact did not cover a site the recipe builds — surfacing the
    mismatch loudly beats serving garbage.
    """

    def __init__(self, *args, **kwargs):
        super().__init__()

    def forward(self, *args, **kwargs):
        raise RuntimeError(
            "PlaceholderBinaryLayer was never replaced by a packed layer — "
            "the artifact does not cover this site (artifact/recipe mismatch)")


def _compilable_types() -> Tuple[type, ...]:
    from .engine import _COMPILERS
    return tuple(src for src, _ in _COMPILERS)


@lru_cache(maxsize=None)
def _conv_scheme_packs(scheme: str) -> Optional[bool]:
    """Does this conv scheme's layer have a packed twin?

    ``None`` for ``fp`` (no binary layer at all), else True/False by
    instantiating one throwaway layer and matching the compiler table.
    """
    if scheme == "fp":
        return None
    layer = get_conv_factory(scheme)(4, 4, 3)
    return isinstance(layer, _compilable_types())


@lru_cache(maxsize=None)
def _linear_scheme_packs(scheme: str) -> Optional[bool]:
    if scheme == "fp":
        return None
    layer = get_linear_factory(scheme)(8, 8)
    return isinstance(layer, _compilable_types())


@dataclass(frozen=True)
class DeployEntry:
    """One (architecture, scheme, scale) cell of the deploy matrix."""

    architecture: str
    scheme: str
    scale: int = 2
    preset: str = "tiny"
    #: "full" | "partial" | "none" (see module docstring)
    coverage: str = "none"
    #: human-readable note on what packs / what blocks packing
    detail: str = ""

    @property
    def deployable(self) -> bool:
        """True when ``compile_model`` succeeds (>= 1 packed layer)."""
        return self.coverage in ("full", "partial")

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.architecture, self.scheme, self.scale)

    def build(self, **overrides) -> Module:
        """Instantiate this entry's float model (carries its recipe)."""
        return build_entry(self, **overrides)


def _classify(architecture: str, scheme: str) -> Tuple[str, str]:
    """``(coverage, detail)`` for one architecture x scheme cell."""
    if architecture in CNN_ARCHITECTURES:
        packs = _conv_scheme_packs(scheme)
        if packs is None:
            return "none", "full-precision model: nothing to pack"
        if packs:
            return "full", "every body conv packs"
        return "none", f"conv scheme {scheme!r} has no packed twin"
    linear_scheme, conv_scheme = transformer_scheme_pair(scheme)
    lin, conv = _linear_scheme_packs(linear_scheme), _conv_scheme_packs(conv_scheme)
    if lin is None and conv is None:
        return "none", "full-precision model: nothing to pack"
    parts, packed_any, float_any = [], False, False
    for what, packs, name in (("linears", lin, linear_scheme),
                              ("block convs", conv, conv_scheme)):
        if packs is None:
            continue
        packed_any |= bool(packs)
        float_any |= not packs
        parts.append(f"{name} {what} {'pack' if packs else 'stay float'}")
    if not packed_any:
        return "none", "; ".join(parts)
    return ("partial" if float_any else "full"), "; ".join(parts)


def deploy_registry(scales: Sequence[int] = (2,),
                    preset: str = "tiny") -> List[DeployEntry]:
    """Every (architecture, scheme, scale) cell the zoo builds."""
    entries: List[DeployEntry] = []
    for architecture in ARCHITECTURES:
        schemes = (conv_scheme_names() if architecture in CNN_ARCHITECTURES
                   else transformer_scheme_names())
        for scheme in schemes:
            coverage, detail = _classify(architecture, scheme)
            for scale in scales:
                entries.append(DeployEntry(
                    architecture=architecture, scheme=scheme, scale=scale,
                    preset=preset, coverage=coverage, detail=detail))
    return entries


def deployable_entries(scales: Sequence[int] = (2,),
                       preset: str = "tiny") -> List[DeployEntry]:
    """The conformance-matrix rows: every cell ``compile_model`` accepts."""
    return [e for e in deploy_registry(scales, preset) if e.deployable]


def registry_matrix(scales: Sequence[int] = (2,)) -> Dict[Tuple[str, str], str]:
    """``(architecture, scheme) -> coverage`` — the printable deploy map."""
    return {(e.architecture, e.scheme): e.coverage
            for e in deploy_registry(scales=scales[:1])}


def classify_recipe(recipe: Dict) -> DeployEntry:
    """The registry cell for an artifact's build recipe.

    This is how a scanned artifact is admitted into a serving zoo: its
    recipe is mapped back onto the coverage classification, so the
    caller can see whether the cell packs fully or partially — and an
    artifact claiming a combination the registry knows cannot pack at
    all (coverage ``none``) is surfaced as the inconsistency it is
    rather than loaded blind.

    Accepts a recipe dict or any spec object with ``to_recipe()``
    (e.g. :class:`repro.api.ModelSpec`).
    """
    to_recipe = getattr(recipe, "to_recipe", None)
    if callable(to_recipe):
        recipe = to_recipe()
    architecture = recipe.get("architecture")
    scheme = recipe.get("scheme")
    if architecture not in ARCHITECTURES:
        raise ValueError(
            f"recipe names unknown architecture {architecture!r} "
            f"(known: {', '.join(ARCHITECTURES)})")
    coverage, detail = _classify(architecture, scheme)
    return DeployEntry(
        architecture=architecture, scheme=scheme,
        scale=int(recipe.get("scale", 2)),
        preset=str(recipe.get("preset", "tiny")),
        coverage=coverage, detail=detail)


def build_entry(entry: DeployEntry, **overrides) -> Module:
    """Build the float model for a registry entry (recipe attached)."""
    return build_model(entry.architecture, scale=entry.scale,
                       scheme=entry.scheme, preset=entry.preset, **overrides)


def _placeholder_conv_factory(scheme: str):
    """Conv factory for a skeleton: placeholder at packable sites,
    the real (float-serving) layer everywhere else."""
    if scheme != "fp" and _conv_scheme_packs(scheme):
        return lambda cin, cout, k: PlaceholderBinaryLayer()
    return get_conv_factory(scheme)


def _placeholder_linear_factory(scheme: str):
    if scheme != "fp" and _linear_scheme_packs(scheme):
        return lambda fin, fout: PlaceholderBinaryLayer()
    return get_linear_factory(scheme)


def build_skeleton(recipe: Dict) -> Module:
    """Rebuild a recipe's architecture with placeholders at packed sites.

    This is the loader's half of the artifact round-trip: the returned
    tree has :class:`PlaceholderBinaryLayer` (no parameters, no float
    weights) wherever ``compile_model`` would have put a packed twin,
    real float modules everywhere else.  ``load_artifact`` then swaps
    the placeholders for deserialized packed layers and restores the
    float remainder from the artifact's state section.
    """
    architecture = recipe["architecture"]
    scheme = recipe["scheme"]
    if architecture in CNN_ARCHITECTURES:
        conv_factory = _placeholder_conv_factory(scheme)
        linear_factory = None
    else:
        linear_scheme, conv_scheme = transformer_scheme_pair(scheme)
        conv_factory = _placeholder_conv_factory(conv_scheme)
        linear_factory = _placeholder_linear_factory(linear_scheme)
    return build_model(architecture, scale=recipe["scale"], scheme=scheme,
                       preset=recipe["preset"], conv_factory=conv_factory,
                       linear_factory=linear_factory,
                       **recipe.get("overrides", {}))
