"""Frame-deadline policies for streaming sessions.

This is the pure-policy half of the frame scheduler, in the same
spirit as ``serve/scheduler.py``: every decision takes an explicit
``now`` so tests drive it with a simulated clock.  The session owns
the clock and the waiting; this module owns the arithmetic.

Two policies:

* ``best-effort`` — every frame completes; lateness is measured and
  reported on the result but never causes a drop.
* ``drop-late``   — a frame still incomplete when its deadline
  expires resolves as a dropped :class:`FrameResult` immediately, so
  it can never block its successors.

The bridge to the serving layer's deadline-aware micro-batcher: a
frame's *remaining* budget at tile-submit time becomes the
``deadline_s`` of each dirty-tile request, so
``MicroBatchScheduler`` flushes those tiles no later than the frame
deadline instead of idling out its default batch window.
"""

from typing import Optional

__all__ = [
    "BEST_EFFORT",
    "DROP_LATE",
    "DeadlinePolicy",
    "POLICIES",
]

DROP_LATE = "drop-late"
BEST_EFFORT = "best-effort"
POLICIES = (DROP_LATE, BEST_EFFORT)


class DeadlinePolicy:
    """Deadline arithmetic for one stream, under an explicit clock.

    ``frame_budget_s`` is the default per-frame budget; a frame may
    override it at submit time.  ``None`` means unbounded — frames
    have no deadline and ``drop-late`` degenerates to best-effort
    for them.
    """

    __slots__ = ("policy", "frame_budget_s")

    def __init__(
        self,
        policy: str = BEST_EFFORT,
        frame_budget_s: Optional[float] = None,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown deadline policy {policy!r}; expected one of"
                f" {POLICIES}"
            )
        if frame_budget_s is not None and frame_budget_s < 0:
            raise ValueError("frame_budget_s must be >= 0")
        self.policy = policy
        self.frame_budget_s = frame_budget_s

    def deadline(
        self, arrival: float, budget_s: Optional[float] = None
    ) -> Optional[float]:
        """Absolute deadline for a frame admitted at ``arrival``."""
        if budget_s is None:
            budget_s = self.frame_budget_s
        if budget_s is None:
            return None
        return arrival + float(budget_s)

    @staticmethod
    def expired(deadline: Optional[float], now: float) -> bool:
        """True once the remaining budget reaches zero.

        A deadline expiring *exactly at* ``now`` counts as expired —
        the same boundary ``MicroBatchScheduler._due`` uses — but a
        frame that already completed by then is delivered, not
        dropped: drop-late only sheds frames still incomplete at
        expiry.
        """
        return deadline is not None and now >= deadline

    def should_drop(self, deadline: Optional[float], now: float) -> bool:
        """Whether an *incomplete* frame must resolve as dropped."""
        return self.policy == DROP_LATE and self.expired(deadline, now)

    @staticmethod
    def lateness(deadline: Optional[float], now: float) -> float:
        """Seconds past the deadline (0.0 when on time or unbounded)."""
        if deadline is None:
            return 0.0
        return max(0.0, now - deadline)

    @staticmethod
    def remaining(deadline: Optional[float], now: float) -> Optional[float]:
        """Budget left for this frame's tiles (``None`` = unbounded).

        Clamped at zero: once expired, tile requests are submitted
        with a zero budget so the micro-batcher flushes them on its
        next pass rather than holding them for a full batch window.
        """
        if deadline is None:
            return None
        return max(0.0, deadline - now)
