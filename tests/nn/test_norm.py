"""Tests for BatchNorm2d and LayerNorm."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.nn import BatchNorm2d, LayerNorm

from ..helpers import check_gradients, rng


class TestBatchNorm2d:
    def test_training_normalizes_batch(self):
        bn = BatchNorm2d(3)
        x = rng(0).normal(2.0, 4.0, size=(8, 3, 5, 5))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng(1).normal(3.0, 1.0, size=(16, 2, 4, 4))
        bn(Tensor(x))
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2, momentum=1.0)
        x = rng(2).normal(1.0, 2.0, size=(16, 2, 4, 4))
        bn(Tensor(x))          # sets running stats to batch stats
        bn.eval()
        y = rng(3).normal(1.0, 2.0, size=(4, 2, 4, 4))
        out = bn(Tensor(y)).data
        expected = (y - bn.running_mean.reshape(1, 2, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, 2, 1, 1) + bn.eps)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_eval_does_not_update_stats(self):
        bn = BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng(4).normal(5.0, 1.0, size=(4, 2, 3, 3))))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_affine_params_trainable(self):
        bn = BatchNorm2d(2)
        out = bn(Tensor(rng(5).normal(size=(4, 2, 3, 3))))
        G.sum(out * out).backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None

    def test_gradients_numeric(self):
        bn = BatchNorm2d(2)

        def build(ts):
            bn2 = BatchNorm2d(2)
            bn2.weight, bn2.bias = ts[1], ts[2]
            bn2._parameters = {"weight": ts[1], "bias": ts[2]}
            return G.sum(bn2(ts[0]) ** 2)

        check_gradients(build, [rng(6).normal(size=(2, 2, 3, 3)),
                                rng(7).random(2) + 0.5,
                                rng(8).normal(size=2)],
                        atol=1e-4, rtol=1e-3)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(8)
        x = rng(0).normal(3.0, 5.0, size=(2, 10, 8))
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros((2, 10)), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones((2, 10)), atol=1e-2)

    def test_kills_channel_variation(self):
        """The Sec. III-B observation: LN removes channel-to-channel shift."""
        ln = LayerNorm(16)
        x = rng(1).normal(size=(1, 50, 16)) + np.arange(16) * 10.0
        out = ln(Tensor(x)).data
        channel_means = out.mean(axis=(0, 1))
        assert np.var(channel_means) < np.var(x.mean(axis=(0, 1))) * 1e-3

    def test_gradients(self):
        def build(ts):
            ln = LayerNorm(4)
            ln.weight, ln.bias = ts[1], ts[2]
            ln._parameters = {"weight": ts[1], "bias": ts[2]}
            return G.sum(ln(ts[0]) ** 2)

        check_gradients(build, [rng(2).normal(size=(2, 3, 4)),
                                rng(3).random(4) + 0.5,
                                rng(4).normal(size=4)],
                        atol=1e-4, rtol=1e-3)
