"""ServeSession: typed results over a multi-model artifact zoo."""

import numpy as np
import pytest

from repro.api import (Engine, EngineConfig, EngineError, InferRequest,
                       InferResult, ModelSpec, serve_directory)

SPECS = [
    ModelSpec("srresnet", scheme="scales", scale=2),
    ModelSpec("edsr", scheme="e2fif", scale=2),
]


@pytest.fixture(scope="module")
def zoo_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("zoo")
    for spec in SPECS:
        Engine.from_spec(spec, config=EngineConfig(seed=9)).export(
            directory / spec.artifact_name())
    return directory


def _image(seed=0, shape=(10, 10, 3)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


class TestServeSession:
    def test_serves_every_artifact_with_typed_results(self, zoo_dir):
        with serve_directory(zoo_dir) as session:
            assert session.available_models == \
                tuple(sorted(s.key for s in SPECS))
            for spec in SPECS:
                result = session.infer(_image(), model=spec)
                assert isinstance(result, InferResult)
                assert result.ok and result.model == spec.key
                assert result.image.shape == (20, 20, 3)

    def test_route_strings_and_infer_requests(self, zoo_dir):
        with serve_directory(zoo_dir) as session:
            by_route = session.infer(_image(), model="srresnet/scales/x2")
            by_request = session.infer(
                InferRequest(image=_image(), model=SPECS[0].key))
            assert np.array_equal(by_route.unwrap(), by_request.unwrap())

    def test_default_model(self, zoo_dir):
        with serve_directory(zoo_dir, default_model=SPECS[0].key) as session:
            assert session.infer(_image()).model == SPECS[0].key

    def test_no_default_model_raises(self, zoo_dir):
        with serve_directory(zoo_dir) as session:
            with pytest.raises(EngineError, match="no model"):
                session.infer(_image())

    def test_matches_engine_infer(self, zoo_dir):
        images = [_image(s) for s in range(3)]
        with serve_directory(zoo_dir) as session:
            served = session.infer_many(images, model=SPECS[1])
        engine = Engine.from_artifact(
            zoo_dir / SPECS[1].artifact_name())
        for a, b in zip(served, engine.infer_many(images)):
            assert a.status == b.status == "ok"
            assert np.array_equal(a.image, b.image)

    def test_shed_request_is_a_typed_busy_result(self, zoo_dir):
        session = serve_directory(zoo_dir)
        session.close()
        # a closed server sheds instead of stranding the future
        result = session.submit(_image(), model=SPECS[0]).result(timeout=5)
        assert result.status == "busy"
        assert not result.ok
        with pytest.raises(EngineError, match="busy"):
            result.unwrap()

    def test_stats_and_report(self, zoo_dir):
        with serve_directory(zoo_dir) as session:
            session.infer(_image(), model=SPECS[0])
            stats = session.stats()
            assert stats["server"]["available_models"] == len(SPECS)
            assert "cache" in stats
            assert "models:" in session.report()
