"""SSIM (Wang et al., 2004) with the standard Gaussian window.

Computed on the Y channel with an 11x11 Gaussian window (sigma = 1.5) and
the usual constants K1 = 0.01, K2 = 0.03 — the configuration SR papers
(including this one) report.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..data.color import rgb_to_y, shave_border


def _gaussian_filter(img: np.ndarray, sigma: float, truncate: float) -> np.ndarray:
    return ndimage.gaussian_filter(img, sigma=sigma, truncate=truncate, mode="reflect")


def ssim(sr: np.ndarray, hr: np.ndarray, shave: int = 0, max_value: float = 1.0,
         sigma: float = 1.5, k1: float = 0.01, k2: float = 0.03) -> float:
    """Mean structural similarity between two single-channel images."""
    if sr.shape != hr.shape:
        raise ValueError(f"shape mismatch: {sr.shape} vs {hr.shape}")
    if sr.ndim != 2:
        raise ValueError("ssim expects single-channel images; use ssim_y for RGB")
    if shave:
        sr = shave_border(sr, shave)
        hr = shave_border(hr, shave)
    x = sr.astype(np.float64)
    y = hr.astype(np.float64)
    # 11x11 window: truncate at 5 pixels for sigma 1.5 -> radius 5.
    truncate = 5.0 / (2 * sigma) * 1.5 if sigma != 1.5 else 3.3333333333
    c1 = (k1 * max_value) ** 2
    c2 = (k2 * max_value) ** 2
    mu_x = _gaussian_filter(x, sigma, truncate)
    mu_y = _gaussian_filter(y, sigma, truncate)
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x2 = _gaussian_filter(x * x, sigma, truncate) - mu_x2
    sigma_y2 = _gaussian_filter(y * y, sigma, truncate) - mu_y2
    sigma_xy = _gaussian_filter(x * y, sigma, truncate) - mu_xy
    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x2 + mu_y2 + c1) * (sigma_x2 + sigma_y2 + c2)
    return float(np.mean(numerator / denominator))


def ssim_y(sr_rgb: np.ndarray, hr_rgb: np.ndarray, shave: int = 0) -> float:
    """SSIM over the BT.601 luma channel, as reported in Tables III–VI."""
    return ssim(rgb_to_y(sr_rgb), rgb_to_y(hr_rgb), shave=shave)
