"""Pytest configuration: keep the initializer deterministic per test."""

import pytest

from repro.nn import init


@pytest.fixture(autouse=True)
def _deterministic_init():
    init.seed(1234)
    yield
