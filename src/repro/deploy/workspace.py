"""Per-thread scratch-buffer arena for the packed inference engine.

Every packed forward pass needs the same family of temporaries — the
padded activation-bit image, the gathered patch rows, the XOR / popcount
/ accumulator panels inside :func:`repro.deploy.kernels.binary_gemm` —
and their shapes repeat across tiles, batches and layers.  Allocating
(and for bit buffers, zeroing) them on every call costs a measurable
slice of small-tile inference, so the engine instead *takes* them from a
workspace keyed by ``(tag, shape, dtype)`` and reuses the same memory on
the next identically-shaped call, mirroring the per-shape padding
-correction memo on :class:`repro.deploy.engine.PackedBinaryConv2d`.

Two rules keep this safe:

* Workspaces are **thread-local** (:func:`workspace` returns this
  thread's arena), so the thread-parallel tile scheduler in
  :mod:`repro.infer.parallel` never hands two in-flight forwards the
  same buffer.
* Only buffers that **never escape** a kernel live here (scratch panels,
  staging rows).  Anything returned to the caller is freshly allocated.

The arena is bounded: least-recently-inserted buffers are dropped once
``max_entries`` distinct keys accumulate, so shape churn cannot grow
memory without limit.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = ["Workspace", "workspace", "clear_workspace"]

#: Default bound on distinct (tag, shape, dtype) buffers per thread.
_MAX_ENTRIES = 64

_Key = Tuple[str, Tuple[int, ...], str]


class Workspace:
    """A keyed arena of reusable scratch arrays (single-thread use)."""

    def __init__(self, max_entries: int = _MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._buffers: Dict[_Key, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, tag: str, shape: Tuple[int, ...], dtype,
             zero_on_create: bool = False) -> np.ndarray:
        """Return a reusable array for ``(tag, shape, dtype)``.

        The contents are whatever the previous user of the key left
        behind (callers overwrite what they read).  With
        ``zero_on_create`` the buffer is zero-filled only when first
        allocated — the pattern for bit images whose padded border must
        be 0 but is never written afterwards.
        """
        dt = np.dtype(dtype)
        key = (tag, tuple(int(s) for s in shape), dt.str)
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            if len(self._buffers) >= self.max_entries:
                self._buffers.pop(next(iter(self._buffers)))
            buf = (np.zeros if zero_on_create else np.empty)(key[1], dtype=dt)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


_local = threading.local()


def workspace() -> Workspace:
    """The calling thread's arena (created on first use)."""
    ws = getattr(_local, "ws", None)
    if ws is None:
        ws = _local.ws = Workspace()
    return ws


def clear_workspace() -> None:
    """Drop every buffer held by the calling thread's arena."""
    ws = getattr(_local, "ws", None)
    if ws is not None:
        ws.clear()
