"""Microbenchmark timing: warmed-up, repeated, summarized.

Nothing here imports the rest of the repo — the perf layer has to stay
importable from benchmark files that deliberately exercise broken or
partial builds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List


@dataclass
class BenchStats:
    """Summary of repeated timings of one callable (seconds)."""

    label: str
    times: List[float] = field(repr=False, default_factory=list)

    @property
    def repeats(self) -> int:
        return len(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def median(self) -> float:
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "repeats": self.repeats,
            "best_s": self.best,
            "median_s": self.median,
            "mean_s": self.mean,
        }


def bench(fn: Callable[[], object], *, label: str = "", warmup: int = 2,
          repeats: int = 5, min_time: float = 0.05) -> BenchStats:
    """Time ``fn`` with warmup and repetition.

    Each repeat calls ``fn`` in an inner loop until at least ``min_time``
    seconds elapse, then records the per-call average — this keeps very
    fast kernels above the timer resolution.  Speedup comparisons should
    use :attr:`BenchStats.best`, the repeat least disturbed by the OS.
    """
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        calls = 0
        start = time.perf_counter()
        while True:
            fn()
            calls += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_time:
                break
        times.append(elapsed / calls)
    return BenchStats(label=label or getattr(fn, "__name__", "fn"), times=times)


def speedup(reference: BenchStats, candidate: BenchStats) -> float:
    """How many times faster ``candidate`` is than ``reference`` (best-of)."""
    return reference.best / candidate.best
