"""repro.api — the typed public front door to the whole system.

One coherent surface over the five execution layers that grew under it
(``models`` -> ``deploy`` -> ``infer`` -> ``serve``):

* :class:`ModelSpec` — declarative, validated description of a zoo
  cell (architecture, scheme, scale, preset, overrides);
* :class:`EngineConfig` — every execution knob in one typed object;
  the consolidated home of the ``REPRO_*`` environment variables with
  documented precedence (explicit arg > env > default);
* :class:`Engine` — the lifecycle facade:
  ``from_spec -> train -> compile -> export`` and
  ``from_artifact -> infer / infer_many / serve``;
* :class:`InferRequest` / :class:`InferResult` / :class:`EngineError`
  — shared typed request/result objects: a direct engine call and a
  model-server round-trip return the same result type;
* :class:`Capability` / :func:`capability` / :func:`capability_matrix`
  — the merged registry answering "can this cell compile, export,
  serve?" before any work happens;
* :class:`ServeSession` / :func:`serve_directory` — typed serving
  over a packed-artifact zoo;
* :func:`configure_logging` / :func:`log_event` — process-wide
  structured JSON logging for every ``repro.*`` layer (one JSON
  object per line; the serving stack's per-request events use it).

The legacy entry points remain supported as the low-level layer this
facade drives (see the README's Public API table); new cross-layer
features land here first.
"""

from .capabilities import Capability, capability, capability_matrix
from .config import EngineConfig
from .engine import Engine
from .logs import configure_logging, log_event
from .results import EngineError, InferRequest, InferResult
from .serving import ServeSession, ServeTicket, serve_directory
from .spec import ModelSpec

__all__ = [
    "Capability",
    "Engine",
    "EngineConfig",
    "EngineError",
    "InferRequest",
    "InferResult",
    "ModelSpec",
    "ServeSession",
    "ServeTicket",
    "capability",
    "capability_matrix",
    "configure_logging",
    "log_event",
    "serve_directory",
]
