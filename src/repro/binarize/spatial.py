"""Spatial re-scaling (Sec. IV-B, Fig. 6).

A tiny full-precision side branch reads the *pre-binarization* activation
and predicts one scaling factor per spatial position, which multiplies the
output of the binary conv / linear layer (Eq. 4).  Because the factor is
inferred from data at inference time, it captures pixel-to-pixel and
image-to-image variation in an input-dependent manner.
"""

from __future__ import annotations

from .. import grad as G
from ..grad import Tensor
from ..nn import Conv2d, Linear, Module


class SpatialRescale2d(Module):
    """1x1 FP conv + sigmoid -> (B, 1, H, W) scale map (Fig. 6a)."""

    def __init__(self, channels: int, kernel_size: int = 1, stride: int = 1):
        super().__init__()
        self.channels = channels
        self.proj = Conv2d(channels, 1, kernel_size, stride=stride,
                           padding=kernel_size // 2)

    def forward(self, x: Tensor) -> Tensor:
        return G.sigmoid(self.proj(x))


class SpatialRescaleTokens(Module):
    """FP linear + sigmoid -> (B, L, 1) scale per token (Fig. 6b)."""

    def __init__(self, channels: int):
        super().__init__()
        self.channels = channels
        self.proj = Linear(channels, 1)

    def forward(self, x: Tensor) -> Tensor:
        return G.sigmoid(self.proj(x))
