"""Table IV (HAT rows) — the second binary transformer of the paper.

The paper's strongest claim lives here: BiBERT-binarized HAT collapses
(22-28 dB) while SCALES recovers 1.9-4.3 dB across the four suites.  At
this repo's tiny scale the collapse is milder, but the SCALES > BiBERT
ordering on the learnable suites must reproduce, and SCALES must clear
the bicubic floor.  The FP row is printed, not asserted (same tiny-scale
FP deviation as the SwinIR bench; see EXPERIMENTS.md).
"""

from repro.experiments.tables import format_rows, table4_transformer


def test_table4_hat_x4(benchmark):
    rows = benchmark.pedantic(
        lambda: table4_transformer(architecture="hat", scale=4),
        rounds=1, iterations=1)
    print("\n" + format_rows(rows))
    by_method = {r["method"]: r for r in rows}

    fp = by_method["fp"]
    bibert = by_method["bibert"]
    scales = by_method["scales"]
    bicubic = by_method["bicubic"]

    # SCALES rescues the binary HAT relative to the BiBERT baseline.
    assert scales["b100_psnr"] > bibert["b100_psnr"]
    assert scales["urban100_psnr"] >= bibert["urban100_psnr"] - 0.05

    # And clears the interpolation floor where headroom exists.
    assert scales["b100_psnr"] > bicubic["b100_psnr"]

    # Cost columns at paper size: large parameter reduction vs FP HAT
    # (paper: 20.80M -> 1.06M, ~20x), small overhead over BiBERT.  Our
    # binarized HAT keeps the full-width FP reconstruction tail (~2.5M
    # params at embed 180) that the paper's deployment slims down, so the
    # measured ratio is ~6x; the binarized *body* alone compresses ~31x.
    assert fp["params_k"] > 5 * scales["params_k"]
    assert scales["params_k"] < 1.3 * bibert["params_k"]
