"""Reduction operations with autograd support."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor

Axis = Union[None, int, Tuple[int, ...], Sequence[int]]


def _normalize_axis(axis: Axis, ndim: int) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_for_reduce(grad: np.ndarray, shape: Tuple[int, ...], axis) -> np.ndarray:
    """Reshape a reduced gradient back to broadcastable form."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    expanded = list(shape)
    for a in axis:
        expanded[a] = 1
    return np.broadcast_to(grad.reshape(expanded), shape)


def sum(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, x.ndim)
    data = x.data.sum(axis=norm_axis, keepdims=keepdims)

    def backward(grad, send):
        g = grad
        if not keepdims:
            g = _expand_for_reduce(g, x.shape, norm_axis)
        else:
            g = np.broadcast_to(g, x.shape)
        send(x, g)

    return Tensor._make(data, (x,), backward)


def mean(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, x.ndim)
    data = x.data.mean(axis=norm_axis, keepdims=keepdims)
    if norm_axis is None:
        count = x.size
    else:
        count = int(np.prod([x.shape[a] for a in norm_axis]))

    def backward(grad, send):
        g = grad / count
        if not keepdims:
            g = _expand_for_reduce(g, x.shape, norm_axis)
        else:
            g = np.broadcast_to(g, x.shape)
        send(x, g)

    return Tensor._make(data, (x,), backward)


def var(x: Tensor, axis: Axis = None, keepdims: bool = False, ddof: int = 0) -> Tensor:
    """Variance, differentiable through the mean."""
    mu = mean(x, axis=axis, keepdims=True)
    centered = x - mu
    sq = centered * centered
    norm_axis = _normalize_axis(axis, x.ndim)
    if norm_axis is None:
        count = x.size
    else:
        count = int(np.prod([x.shape[a] for a in norm_axis]))
    scale = 1.0 / max(count - ddof, 1)
    total = sum(sq, axis=axis, keepdims=keepdims)
    return total * scale


def maxval(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Max reduction; gradient flows to the (first) argmax positions."""
    norm_axis = _normalize_axis(axis, x.ndim)
    data = x.data.max(axis=norm_axis, keepdims=keepdims)

    def backward(grad, send):
        full = data if keepdims else _expand_for_reduce(
            np.asarray(data), x.shape, norm_axis)
        if keepdims:
            full = np.broadcast_to(full, x.shape)
        mask = (x.data == full)
        # Split gradient equally among ties to keep the op well-behaved.
        denom = mask.sum(axis=norm_axis, keepdims=True)
        g = grad if keepdims else _expand_for_reduce(grad, x.shape, norm_axis)
        if keepdims:
            g = np.broadcast_to(g, x.shape)
        send(x, g * mask / np.maximum(denom, 1))

    return Tensor._make(data, (x,), backward)


def minval(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    return -maxval(-x, axis=axis, keepdims=keepdims)
