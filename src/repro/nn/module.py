"""Module/Parameter system, mirroring the subset of ``torch.nn`` the paper needs.

Modules register parameters and sub-modules automatically via
``__setattr__``; forward hooks are supported because the cost model
(:mod:`repro.cost`) and the activation-distribution study of Sec. III
(:mod:`repro.analysis`) both observe layer inputs/outputs from outside.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from ..grad import Tensor, no_grad


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


HookFn = Callable[["Module", Tuple, Tensor], None]


class Module:
    """Base class for all layers and networks."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Forward / hooks
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, args, out)
        return out

    def register_forward_hook(self, hook: HookFn) -> Callable[[], None]:
        """Attach ``hook(module, inputs, output)``; returns a remover."""
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove

    def clear_forward_hooks(self) -> None:
        for module in self.modules():
            module._forward_hooks.clear()

    # ------------------------------------------------------------------
    # State (save / load)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{own[name].data.shape} vs {value.shape}")
                own[name].data = np.asarray(value, dtype=own[name].data.dtype).copy()

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def num_parameters(self) -> int:
        return int(np.sum([p.size for p in self.parameters()])) if self.parameters() else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_parameters()})"
