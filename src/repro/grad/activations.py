"""Pointwise functions with autograd support."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def exp(x: Tensor) -> Tensor:
    data = np.exp(x.data)

    def backward(grad, send):
        send(x, grad * data)

    return Tensor._make(data, (x,), backward)


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)

    def backward(grad, send):
        send(x, grad / x.data)

    return Tensor._make(data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    data = np.sqrt(x.data)

    def backward(grad, send):
        send(x, grad * 0.5 / np.maximum(data, 1e-300))

    return Tensor._make(data, (x,), backward)


def absolute(x: Tensor) -> Tensor:
    """|x| with subgradient sign(x) at 0 (i.e. 0)."""
    data = np.abs(x.data)

    def backward(grad, send):
        send(x, grad * np.sign(x.data))

    return Tensor._make(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad, send):
        send(x, grad * (x.data > 0))

    return Tensor._make(data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad, send):
        send(x, grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable two-sided formulation.
    pos = x.data >= 0
    z = np.exp(np.where(pos, -x.data, x.data))
    data = np.where(pos, 1.0 / (1.0 + z), z / (1.0 + z))

    def backward(grad, send):
        send(x, grad * data * (1.0 - data))

    return Tensor._make(data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)

    def backward(grad, send):
        send(x, grad * (1.0 - data ** 2))

    return Tensor._make(data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (as used in transformer MLPs)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    data = 0.5 * x.data * (1.0 + t)

    def backward(grad, send):
        dt = (1.0 - t ** 2) * c * (1.0 + 3 * 0.044715 * x.data ** 2)
        send(x, grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(data, (x,), backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp with zero gradient outside [low, high]."""
    data = np.clip(x.data, low, high)

    def backward(grad, send):
        send(x, grad * ((x.data >= low) & (x.data <= high)))

    return Tensor._make(data, (x,), backward)


def maximum(x: Tensor, y: Tensor) -> Tensor:
    """Elementwise max; ties route gradient to the first argument."""
    data = np.maximum(x.data, y.data)

    def backward(grad, send):
        mask = x.data >= y.data
        send(x, grad * mask)
        send(y, grad * (~mask))

    return Tensor._make(data, (x, y), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad, send):
        dot = (grad * data).sum(axis=axis, keepdims=True)
        send(x, data * (grad - dot))

    return Tensor._make(data, (x,), backward)


def where(cond: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Select with a boolean (non-differentiable) condition array."""
    cond = np.asarray(cond, dtype=bool)
    data = np.where(cond, x.data, y.data)

    def backward(grad, send):
        send(x, grad * cond)
        send(y, grad * (~cond))

    return Tensor._make(data, (x, y), backward)
