"""Stream a synthetic video clip through the SR engine, bit-exactly.

The streaming story on top of ``examples/model_server.py``, driven
through :meth:`repro.api.Engine.stream` (:mod:`repro.stream`):

1. export one packed deploy artifact and open an engine over it;
2. synthesize a deterministic clip — 60% static background, a
   textured sprite gliding over it — with
   :func:`repro.stream.synthetic_clip`;
3. stream the clip through a :class:`repro.stream.StreamSession`:
   frames come back **in order**, unchanged tiles are served from the
   per-stream tile cache, and every frame must be bit-identical to
   one-shot ``Engine.infer`` on the same frame;
4. demo the ``drop-late`` deadline policy: frames submitted with an
   already-expired budget are shed as typed ``dropped`` results while
   every on-time successor still completes — late frames never block
   the stream;
5. print the per-stream stats (reuse ratio, latency percentiles).

Exits non-zero on any parity mismatch, ordering violation, or
mis-dropped frame.  CI runs this as the stream smoke step.  Run:
``PYTHONPATH=src python examples/video_stream.py``
"""

import tempfile

import numpy as np

from repro import grad as G
from repro.api import Engine, EngineConfig, ModelSpec
from repro.stream import StreamConfig, synthetic_clip

N_FRAMES = 8
FRAME_H, FRAME_W = 96, 96
STATIC_FRACTION = 0.6
TILE, OVERLAP = 16, 0
#: Sprite step per frame — a divisor of its travel span, so positions
#: cycle and the tile cache also covers the recurring sprite content.
STEP = 12


def main() -> None:
    with G.default_dtype("float32"):
        zoo_dir = tempfile.mkdtemp(prefix="repro_stream_")
        print("Exporting a packed srresnet/scales/x2 artifact...")
        spec = ModelSpec("srresnet", scheme="scales", scale=2)
        path = Engine.from_spec(spec, config=EngineConfig(seed=0)).export(
            f"{zoo_dir}/{spec.artifact_name()}")
        engine = Engine.from_artifact(
            path, EngineConfig(tile=TILE, tile_overlap=OVERLAP,
                               dtype="float32"))

        clip = synthetic_clip(N_FRAMES, FRAME_H, FRAME_W,
                              static_fraction=STATIC_FRACTION, seed=3,
                              step=STEP)
        print(f"Clip: {N_FRAMES} frames of {FRAME_H}x{FRAME_W}, "
              f"{STATIC_FRACTION:.0%} static area")

        print("\nOne-shot reference: Engine.infer per frame...")
        reference = [engine.infer(frame).unwrap() for frame in clip]

        print("Streaming the clip (tile reuse on)...")
        with engine.stream() as session:
            tickets = session.submit_clip(clip)
            results = [t.result(timeout=120.0) for t in tickets]
            stats = session.stats()

        mismatched = [
            r.seq for r, ref in zip(results, reference)
            if not (r.ok and np.array_equal(r.image, ref))
        ]
        out_of_order = [r.seq for i, r in enumerate(results) if r.seq != i]
        reuse = stats["tiles"]["reuse_ratio"]
        print(f"  frames ok: {sum(r.ok for r in results)}/{N_FRAMES}, "
              f"tile reuse ratio {reuse:.2f}")
        if mismatched or out_of_order:
            raise SystemExit(
                f"FAIL: frames diverged from one-shot infer "
                f"{mismatched} / out of order {out_of_order}")
        if not reuse > 0:
            raise SystemExit("FAIL: tile reuse never engaged on a "
                             "60%-static clip")
        print("  every frame bit-identical to one-shot Engine.infer")

        print("\nDrop-late demo: frames 2 and 5 get an already-expired "
              "budget...")
        late = {2, 5}
        config = StreamConfig(tile=TILE, overlap=OVERLAP,
                              policy="drop-late")
        with engine.stream(config) as session:
            tickets = [
                session.submit_frame(
                    frame, deadline_s=0.0 if seq in late else 300.0)
                for seq, frame in enumerate(clip)
            ]
            results = [t.result(timeout=120.0) for t in tickets]

        dropped = {r.seq for r in results if r.dropped}
        bad_survivors = [
            r.seq for r, ref in zip(results, reference)
            if r.seq not in late
            and not (r.ok and np.array_equal(r.image, ref))
        ]
        print(f"  dropped: {sorted(dropped)} (expected {sorted(late)})")
        if dropped != late or bad_survivors:
            raise SystemExit(
                f"FAIL: dropped {sorted(dropped)}, expected "
                f"{sorted(late)}; bad survivors {bad_survivors}")
        print("  only the expired frames were shed; every successor "
              "completed bit-exactly")

        latency = stats["latency"]
        print(f"\nStream stats: frames={stats['frames']['frames_ok']} ok, "
              f"reuse={reuse:.2f}, "
              f"p50={latency['p50_ms']:.1f}ms "
              f"p99={latency['p99_ms']:.1f}ms")
        print("OK: ordered delivery, bit-exact reuse, surgical drops")


if __name__ == "__main__":
    main()
