"""Evaluation metrics: PSNR and SSIM on the Y channel."""

from .psnr import psnr, psnr_y
from .ssim import ssim, ssim_y

__all__ = ["psnr", "psnr_y", "ssim", "ssim_y"]
