"""Wire codec round-trips and the result→status mapping."""

import numpy as np
import pytest

from repro.gateway import wire
from repro.gateway.worker import classify_result
from repro.serve import ServeError, ServerBusy


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["float32", "float64", "uint8"])
    def test_roundtrip_preserves_bits(self, dtype):
        rng = np.random.default_rng(0)
        array = (rng.random((5, 7, 3)) * 100).astype(dtype)
        decoded = wire.decode_array(wire.encode_array(array))
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    def test_noncontiguous_input_encodes(self):
        array = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        assert np.array_equal(
            wire.decode_array(wire.encode_array(array)), array)

    def test_byte_count_mismatch_rejected(self):
        payload = wire.encode_array(np.zeros((2, 2), np.float32))
        payload["shape"] = [2, 3]
        with pytest.raises(wire.WireError, match="needs"):
            wire.decode_array(payload)

    def test_malformed_payloads_rejected(self):
        for payload in (None, [], {"shape": [1]},
                        {"shape": [1], "dtype": "nope", "data": ""},
                        {"shape": [1], "dtype": "float32", "data": "!!!"}):
            with pytest.raises(wire.WireError):
                wire.decode_array(payload)

    def test_bad_json_body_rejected(self):
        with pytest.raises(wire.WireError, match="JSON"):
            wire.loads(b"{not json")


class TestStatusMapping:
    def test_ok_array_is_200(self):
        status, body = classify_result(np.ones((2, 2, 3), np.float32))
        assert status == 200
        decoded = wire.loads(body)
        assert decoded["status"] == "ok"
        assert wire.decode_array(decoded["output"]).shape == (2, 2, 3)

    def test_queue_full_shed_is_429(self):
        status, body = classify_result(
            ServerBusy(model=("a", "b", 2), reason="queue full",
                       queue_depth=9))
        assert status == 429
        assert wire.loads(body)["retryable"] is True

    def test_server_closed_shed_is_503(self):
        status, _ = classify_result(
            ServerBusy(model=("a", "b", 2), reason="server closed",
                       queue_depth=0))
        assert status == 503

    def test_serve_error_is_500(self):
        status, body = classify_result(
            ServeError(model=("a", "b", 2), message="boom"))
        assert status == 500
        assert wire.loads(body)["reason"] == "boom"
