"""DAQ: channel-wise distribution-aware quantization (Hong et al., WACV 2022).

Each channel of the activation is standardized with its own mean and
standard deviation before the sign, and the binary output is re-scaled by
the channel std.  Channel- and image-adaptive, but computing per-channel
mean/std at inference costs full-precision multiplies and accumulations
(Table I: "FP Mul. and Accum.").
"""

from __future__ import annotations

from typing import Optional

from ... import grad as G
from ...grad import Tensor
from ...nn import Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class DAQBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True,
                 eps: float = 1e-5):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.eps = eps
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.skip = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        mu = x.data.mean(axis=(2, 3), keepdims=True)
        sigma = x.data.std(axis=(2, 3), keepdims=True) + self.eps
        xb = approx_sign_ste((x - Tensor(mu)) / Tensor(sigma))
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        # Re-scale by the (spatially averaged) channel std so magnitudes
        # survive binarization; mirrors DAQ's distribution-aware rescale.
        out = out * Tensor(sigma.mean(axis=1, keepdims=True))
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "DAQ", "spatial": False, "channel": True,
                "layer": False, "image": True, "hw_cost": "FP Mul. and Accum."}
