"""Cross-frame tile-delta planning.

Consecutive video frames are mostly identical, so full-frame
inference wastes work on static regions.  The planner extends
``TilePlan`` geometry with *content*: it hashes every input tile of a
frame (``serve.cache.content_key`` over a zero-copy tile view) and
splits the plan into

* **reused** tiles — their super-resolved outputs are already in the
  per-stream :class:`~repro.serve.cache.TileReuseCache`, keyed by the
  same hash; the cached SR tiles are fetched *eagerly* (as copies) so
  a later eviction cannot strand the frame between plan and stitch;
* **dirty** tiles — content not seen before (or evicted); only these
  are submitted for inference.

The hash keys are exactly the serving layer's ``content_key`` over
the same bytes the server would hash, so a dirty tile submitted to
``ModelServer`` coalesces with any identical in-flight tile and hits
the server's own result cache under the very same key.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..infer.tiling import TilePlan, tile_view
from ..serve.cache import TileReuseCache, content_key

__all__ = ["FrameDelta", "plan_frame_delta"]


@dataclass(frozen=True)
class FrameDelta:
    """One frame's plan split into reused and dirty tiles.

    ``keys[i]`` is the content hash of tile ``i`` of ``plan``;
    ``cached`` maps reused tile indices to their SR outputs (private
    copies, safe to stitch regardless of later cache activity).
    """

    plan: TilePlan
    keys: Tuple[str, ...]
    dirty: Tuple[int, ...]
    reused: Tuple[int, ...]
    cached: Dict[int, np.ndarray] = field(repr=False)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of this frame's tiles served from the tile cache."""
        if not self.plan.tiles:
            return 0.0
        return len(self.reused) / len(self.plan.tiles)


def plan_frame_delta(
    frame: np.ndarray,
    plan: TilePlan,
    model_key,
    cache: Optional[TileReuseCache],
) -> FrameDelta:
    """Hash ``frame``'s tiles and split ``plan`` against ``cache``.

    ``frame`` is HWC; ``plan`` must cover its (H, W).  With
    ``cache=None`` every tile is dirty (reuse disabled).  Note two
    dirty tiles with identical content get the *same* key — the
    session submits each distinct key once and fans the result out.
    """
    th, tw = plan.tile_h, plan.tile_w
    keys = []
    dirty = []
    reused = []
    cached: Dict[int, np.ndarray] = {}
    for i, spec in enumerate(plan.tiles):
        view = tile_view(frame, spec, th, tw)
        key = content_key(model_key, view)
        keys.append(key)
        sr = cache.get(key) if cache is not None else None
        if sr is None:
            dirty.append(i)
        else:
            reused.append(i)
            cached[i] = sr
    return FrameDelta(
        plan=plan,
        keys=tuple(keys),
        dirty=tuple(dirty),
        reused=tuple(reused),
        cached=cached,
    )
