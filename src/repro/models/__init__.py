"""SR network architectures and the classifier references.

:func:`build_model` assembles any architecture the paper evaluates with
any binarization scheme, at two preset sizes:

* ``"tiny"`` — scaled-down configurations that train in seconds on the
  NumPy substrate; used by the table/figure reproductions.
* ``"paper"`` — the configurations of the original networks; used for the
  Params/OPs accounting columns of Tables III/IV (cost counting needs no
  training, so the full-size numbers are directly comparable with the
  paper).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..binarize import get_conv_factory, get_linear_factory
from ..nn import Module
from .common import CALayer, MeanShift, ResidualBlock, Upsampler, fp_conv_factory
from .edsr import EDSR
from .hat import HAT, CAB, HAB, RHAG
from .rcan import RCAB, RCAN, ResidualGroup
from .rdn import RDB, RDN, DenseLayer
from .resnet18 import BasicBlock, ResNet, resnet18
from .srresnet import SRResNet
from .swinir import RSTB, SwinIR, image_to_tokens, tokens_to_image
from .swinvit import SwinViT

#: Transformer-model schemes map to a (linear, conv) scheme pair; the
#: paper binarizes the four linear layers per block with the method under
#: test and the block convs with the corresponding conv binarizer.
_TRANSFORMER_SCHEME_MAP: Dict[str, tuple] = {
    "fp": ("fp", "fp"),
    "bibert": ("bibert", "plain"),
    "bivit": ("bivit", "plain"),
    "scales": ("scales", "scales"),
    "scales_lsf": ("scales_lsf", "scales_lsf"),
}

_CNN_PRESETS: Dict[str, Dict[str, Dict]] = {
    "srresnet": {
        "tiny": dict(n_feats=16, n_blocks=2, head_kernel=3),
        "small": dict(n_feats=32, n_blocks=4, head_kernel=9),
        "paper": dict(n_feats=64, n_blocks=16, head_kernel=9),
    },
    "edsr": {
        "tiny": dict(n_feats=16, n_blocks=2),
        "small": dict(n_feats=32, n_blocks=4),
        "paper": dict(n_feats=64, n_blocks=16),
    },
    "rdn": {
        "tiny": dict(n_feats=16, growth=8, n_blocks=2, n_layers=2),
        "small": dict(n_feats=32, growth=16, n_blocks=4, n_layers=4),
        "paper": dict(n_feats=64, growth=64, n_blocks=16, n_layers=8),
    },
    "rcan": {
        "tiny": dict(n_feats=16, n_groups=1, n_blocks=2),
        "small": dict(n_feats=32, n_groups=2, n_blocks=4),
        "paper": dict(n_feats=64, n_groups=10, n_blocks=20, reduction=16),
    },
}

_TRANSFORMER_PRESETS: Dict[str, Dict[str, Dict]] = {
    "swinir": {
        "tiny": dict(embed_dim=16, depths=(2,), num_heads=(2,), window_size=4),
        "small": dict(embed_dim=32, depths=(2, 2), num_heads=(4, 4), window_size=8),
        "paper": dict(embed_dim=60, depths=(6, 6, 6, 6),
                      num_heads=(6, 6, 6, 6), window_size=8),
    },
    "hat": {
        "tiny": dict(embed_dim=16, depths=(2,), num_heads=(2,), window_size=4),
        "small": dict(embed_dim=32, depths=(2, 2), num_heads=(4, 4), window_size=8),
        "paper": dict(embed_dim=180, depths=(6, 6, 6, 6, 6, 6),
                      num_heads=(6, 6, 6, 6, 6, 6), window_size=16),
    },
}

CNN_ARCHITECTURES = tuple(sorted(_CNN_PRESETS))
TRANSFORMER_ARCHITECTURES = tuple(sorted(_TRANSFORMER_PRESETS))
ARCHITECTURES = CNN_ARCHITECTURES + TRANSFORMER_ARCHITECTURES

_CNN_CLASSES = {"srresnet": SRResNet, "edsr": EDSR, "rdn": RDN, "rcan": RCAN}
_TRANSFORMER_CLASSES = {"swinir": SwinIR, "hat": HAT}


def transformer_scheme_pair(scheme: str) -> tuple:
    """``(linear_scheme, conv_scheme)`` a transformer scheme maps onto."""
    if scheme not in _TRANSFORMER_SCHEME_MAP:
        raise KeyError(
            f"unknown transformer scheme {scheme!r}; choose from "
            f"{sorted(_TRANSFORMER_SCHEME_MAP)}")
    return _TRANSFORMER_SCHEME_MAP[scheme]


def transformer_scheme_names() -> list:
    """Every scheme name ``build_model`` accepts for transformers."""
    return sorted(_TRANSFORMER_SCHEME_MAP)


def preset_names(architecture: str) -> list:
    """Preset sizes :func:`build_model` accepts for ``architecture``."""
    architecture = architecture.lower()
    if architecture in _CNN_PRESETS:
        return sorted(_CNN_PRESETS[architecture])
    if architecture in _TRANSFORMER_PRESETS:
        return sorted(_TRANSFORMER_PRESETS[architecture])
    raise KeyError(
        f"unknown architecture {architecture!r}; choose from {ARCHITECTURES}")


def build_model(architecture: str, scale: int = 2, scheme: str = "fp",
                preset: str = "tiny", conv_factory=None, linear_factory=None,
                **overrides) -> Module:
    """Build an SR network with a binarization scheme dropped into its body.

    Parameters
    ----------
    architecture:
        One of ``srresnet | edsr | rdn | rcan | swinir | hat`` — or any
        recipe-carrying spec object (e.g. :class:`repro.api.ModelSpec`,
        anything with ``to_recipe()``), which supplies scale, scheme,
        preset and overrides itself.
    scale:
        Upsampling factor (2, 3 or 4 as in the paper's experiments).
    scheme:
        Binarization scheme name: any conv scheme from
        :func:`repro.binarize.conv_scheme_names` for CNNs; one of
        ``fp | bibert | bivit | scales | scales_lsf`` for transformers.
    preset:
        ``tiny`` / ``small`` / ``paper`` size presets.
    conv_factory / linear_factory:
        Optional factory overrides taking precedence over ``scheme``.
        The deploy loader (:mod:`repro.deploy.serialize`) uses these to
        rebuild an architecture skeleton with placeholder layers at the
        binary sites, so a packed artifact can be served without ever
        materializing the float binary weights.
    overrides:
        Keyword overrides merged on top of the preset.

    The returned model carries a ``build_recipe`` dict (architecture,
    scale, scheme, preset, overrides) so downstream tooling — artifact
    export in particular — can reproduce the skeleton.
    """
    to_recipe = getattr(architecture, "to_recipe", None)
    if callable(to_recipe):
        # A declarative spec (repro.api.ModelSpec or compatible): its
        # recipe supplies everything; call-site overrides win.
        spec_recipe = to_recipe()
        merged = dict(spec_recipe.get("overrides", {}))
        merged.update(overrides)
        return build_model(spec_recipe["architecture"],
                           scale=spec_recipe["scale"],
                           scheme=spec_recipe["scheme"],
                           preset=spec_recipe["preset"],
                           conv_factory=conv_factory,
                           linear_factory=linear_factory, **merged)
    architecture = architecture.lower()
    recipe = {"architecture": architecture, "scale": scale, "scheme": scheme,
              "preset": preset, "overrides": dict(overrides)}
    if architecture in _CNN_CLASSES:
        presets = _CNN_PRESETS[architecture]
        if preset not in presets:
            raise KeyError(f"unknown preset {preset!r} for {architecture}")
        kwargs = dict(presets[preset])
        kwargs.update(overrides)
        if conv_factory is None:
            conv_factory = get_conv_factory(scheme)
        model = _CNN_CLASSES[architecture](scale=scale,
                                           conv_factory=conv_factory,
                                           **kwargs)
    elif architecture in _TRANSFORMER_CLASSES:
        linear_scheme, conv_scheme = transformer_scheme_pair(scheme)
        presets = _TRANSFORMER_PRESETS[architecture]
        if preset not in presets:
            raise KeyError(f"unknown preset {preset!r} for {architecture}")
        kwargs = dict(presets[preset])
        kwargs.update(overrides)
        model = _TRANSFORMER_CLASSES[architecture](
            scale=scale,
            linear_factory=linear_factory or get_linear_factory(linear_scheme),
            conv_factory=conv_factory or get_conv_factory(conv_scheme),
            **kwargs)
    else:
        raise KeyError(
            f"unknown architecture {architecture!r}; choose from {ARCHITECTURES}")
    model.build_recipe = recipe
    return model


__all__ = [
    "ARCHITECTURES", "CNN_ARCHITECTURES", "TRANSFORMER_ARCHITECTURES",
    "build_model", "preset_names", "transformer_scheme_pair",
    "transformer_scheme_names",
    "SRResNet", "EDSR", "RDN", "RCAN", "SwinIR", "HAT",
    "ResNet", "resnet18", "SwinViT",
    "ResidualBlock", "Upsampler", "MeanShift", "CALayer", "fp_conv_factory",
    "RDB", "DenseLayer", "RCAB", "ResidualGroup", "RSTB", "CAB", "HAB", "RHAG",
    "BasicBlock", "image_to_tokens", "tokens_to_image",
]
