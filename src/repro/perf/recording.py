"""Benchmark trajectory recording: ``BENCH_<name>.json`` files.

Each file holds the append-only history of one benchmark family, so
successive perf PRs leave a measurable trail: every run appends an entry
with its measurements and a timestamp.  Files live at the repo root by
default (next to ``ROADMAP.md``); set ``REPRO_BENCH_DIR`` to redirect
them (e.g. to a scratch directory in CI).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, os.PathLike]


def bench_dir(directory: Optional[PathLike] = None) -> Path:
    """Directory holding the ``BENCH_*.json`` trajectory files."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    # Default to the repo root: the directory holding this package's
    # ``src/`` tree, falling back to the CWD for installed copies.
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "ROADMAP.md").exists() or (parent / ".git").exists():
            return parent
    return Path.cwd()


def bench_path(name: str, directory: Optional[PathLike] = None) -> Path:
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"invalid benchmark name {name!r}")
    return bench_dir(directory) / f"BENCH_{name}.json"


def record_bench(name: str, entry: Dict[str, Any],
                 directory: Optional[PathLike] = None) -> Path:
    """Append ``entry`` to the ``BENCH_<name>.json`` trajectory.

    The entry is stamped with ``unix_time`` if absent.  Returns the path
    written.
    """
    path = bench_path(name, directory)
    trajectory = load_bench(name, directory)
    stamped = dict(entry)
    stamped.setdefault("unix_time", time.time())
    trajectory.append(stamped)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps({"name": name, "entries": trajectory}, indent=2,
                              sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_bench(name: str,
               directory: Optional[PathLike] = None) -> List[Dict[str, Any]]:
    """Entries recorded so far for ``name`` (empty list if none)."""
    path = bench_path(name, directory)
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path} is not a benchmark trajectory file")
    return entries
