"""Perf-regression gate: recorded BENCH ratios vs committed floors.

The perf benchmarks (``benchmarks/test_perf_hotpaths.py``,
``test_perf_pipeline.py``, ``test_serve_throughput.py``) append every
measured speedup to their ``BENCH_<family>.json`` trajectory.  This
script is the CI step that turns those recordings into a *gate*: for
every ``family -> benchmark -> floor`` in
``benchmarks/perf_floors.json`` it finds the **newest** recorded entry
and fails (exit 1) if its speedup ratio is below the floor — so a perf
regression fails the build even if someone weakens or skips the
in-test assertion, and the uploaded artifact can never silently decay.

It also schema-validates every ``BENCH_*.json`` it can see (the
committed trajectories as well as the fresh ones) so a malformed
recording — the thing every other consumer of these files would trip
over later — fails loudly at the gate.

Usage::

    python benchmarks/check_bench_regression.py [--bench-dir DIR]
        [--floors FILE] [--require-fresh SECONDS] [--schema-only]

``--bench-dir`` defaults to the directory the perf run recorded into
(``REPRO_BENCH_DIR`` or the repo root).  ``--require-fresh`` rejects
stale entries: CI passes the job runtime so the gate provably checks
numbers measured in *this* build, not history.  ``--schema-only``
validates the files and skips the floor gate (the CI lint-adjacent
mode that needs no perf run).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path


def newest_entry(entries, benchmark):
    """Latest trajectory entry for ``benchmark`` (by position)."""
    matching = [e for e in entries if e.get("benchmark") == benchmark]
    return matching[-1] if matching else None


def validate_bench_file(path: Path) -> list[str]:
    """Schema problems of one ``BENCH_*.json`` trajectory (empty = ok).

    The contract every recorder writes and every consumer (this gate,
    the trend renderer, the uploaded CI artifact) assumes: a top-level
    object with an ``entries`` list; every entry an object with a
    string ``benchmark`` and a numeric ``unix_time``; ``speedup``,
    when present, a finite number.
    """
    problems = []
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not isinstance(data, dict):
        return [f"{path.name}: top level must be an object, "
                f"got {type(data).__name__}"]
    entries = data.get("entries")
    if not isinstance(entries, list):
        return [f"{path.name}: 'entries' must be a list"]
    for i, entry in enumerate(entries):
        where = f"{path.name}: entries[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        if not isinstance(entry.get("benchmark"), str):
            problems.append(f"{where}: missing string 'benchmark'")
        unix_time = entry.get("unix_time")
        if not isinstance(unix_time, (int, float)) \
                or isinstance(unix_time, bool):
            problems.append(f"{where}: missing numeric 'unix_time'")
        if "speedup" in entry:
            speedup = entry["speedup"]
            if not isinstance(speedup, (int, float)) \
                    or isinstance(speedup, bool) \
                    or not math.isfinite(speedup):
                problems.append(
                    f"{where}: 'speedup' must be a finite number, "
                    f"got {speedup!r}")
    return problems


def validate_bench_dir(bench_dir: Path) -> list[str]:
    """Schema problems across every ``BENCH_*.json`` in ``bench_dir``."""
    problems = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        problems.extend(validate_bench_file(path))
    return problems


def check(bench_dir: Path, floors_path: Path,
          require_fresh: float | None) -> int:
    floors = json.loads(floors_path.read_text())
    floors.pop("_comment", None)
    now = time.time()
    failures = validate_bench_dir(bench_dir)
    rows = []
    for family, gates in floors.items():
        path = bench_dir / f"BENCH_{family}.json"
        if not path.exists():
            failures.append(f"{path.name}: missing (perf run did not record "
                            f"the '{family}' family)")
            continue
        entries = json.loads(path.read_text()).get("entries", [])
        for benchmark, floor in gates.items():
            entry = newest_entry(entries, benchmark)
            if entry is None:
                failures.append(
                    f"{path.name}: no entry for gated benchmark "
                    f"{benchmark!r}")
                continue
            ratio = entry.get("speedup")
            age = now - entry.get("unix_time", 0)
            rows.append((family, benchmark, ratio, floor, age))
            if not isinstance(ratio, (int, float)):
                failures.append(
                    f"{benchmark}: latest entry has no numeric speedup")
                continue
            if require_fresh is not None and age > require_fresh:
                failures.append(
                    f"{benchmark}: newest entry is {age:.0f}s old "
                    f"(> {require_fresh:.0f}s): the perf run did not "
                    f"re-measure it")
                continue
            if ratio < floor:
                failures.append(
                    f"{benchmark}: speedup {ratio:.2f}x is below the "
                    f"committed floor {floor:.2f}x")

    print(f"perf-regression gate  (floors: {floors_path}, "
          f"trajectories: {bench_dir})")
    for family, benchmark, ratio, floor, age in rows:
        shown = f"{ratio:.2f}x" if isinstance(ratio, (int, float)) else "?"
        print(f"  {family:>12} / {benchmark:<22} {shown:>8}  "
              f"(floor {floor:.2f}x, measured {age:.0f}s ago)")
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: every gated ratio is at or above its floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_dir = Path(__file__).resolve().parent.parent
    parser.add_argument("--bench-dir", type=Path, default=None,
                        help="directory holding BENCH_*.json (default: "
                             "REPRO_BENCH_DIR or the repo root)")
    parser.add_argument("--floors", type=Path,
                        default=Path(__file__).resolve().parent
                        / "perf_floors.json")
    parser.add_argument("--require-fresh", type=float, default=None,
                        metavar="SECONDS",
                        help="fail if the newest gated entry is older than "
                             "this (CI passes the job runtime)")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate every BENCH_*.json and exit without "
                             "gating ratios against floors")
    args = parser.parse_args(argv)
    bench_dir = args.bench_dir
    if bench_dir is None:
        import os
        bench_dir = Path(os.environ.get("REPRO_BENCH_DIR", default_dir))
    if args.schema_only:
        problems = validate_bench_dir(bench_dir)
        files = sorted(bench_dir.glob("BENCH_*.json"))
        print(f"bench schema check  ({len(files)} trajectory file(s) "
              f"in {bench_dir})")
        for failure in problems:
            print(f"  - {failure}")
        if not files:
            print("  - no BENCH_*.json files found")
            return 1
        if problems:
            return 1
        print("  OK: every trajectory parses and matches the schema")
        return 0
    return check(bench_dir, args.floors, args.require_fresh)


if __name__ == "__main__":
    sys.exit(main())
