"""Shared building blocks of the SR architectures (Fig. 2).

Every network follows the head / body / tail decomposition the paper
describes: the head extracts shallow features with a FP conv, the body
stacks basic blocks (these are where binarization happens), and the tail
reconstructs the HR image with conv + pixel shuffle.  Following the
paper's experimental protocol, head and tail are never binarized.
"""

from __future__ import annotations

import math
from typing import Callable

from .. import grad as G
from ..grad import Tensor
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Identity,
    Module,
    PixelShuffle,
    PReLU,
    ReLU,
    Sequential,
)

ConvFactory = Callable[[int, int, int], Module]


def fp_conv_factory(in_channels: int, out_channels: int, kernel_size: int) -> Module:
    """The default full-precision conv used when no scheme is requested."""
    return Conv2d(in_channels, out_channels, kernel_size)


class Upsampler(Sequential):
    """Tail upsampling: (conv -> pixel shuffle) per factor-of-2, or x3.

    Always full precision, as in the paper's protocol.
    """

    def __init__(self, scale: int, n_feats: int):
        modules = []
        if scale & (scale - 1) == 0 and scale != 1:  # power of two
            for _ in range(int(math.log2(scale))):
                modules.append(Conv2d(n_feats, 4 * n_feats, 3))
                modules.append(PixelShuffle(2))
        elif scale == 3:
            modules.append(Conv2d(n_feats, 9 * n_feats, 3))
            modules.append(PixelShuffle(3))
        elif scale == 1:
            modules.append(Identity())
        else:
            raise ValueError(f"unsupported scale {scale}")
        super().__init__(*modules)
        self.scale = scale
        self.n_feats = n_feats


class ResidualBlock(Module):
    """conv -> (BN) -> act -> conv -> (BN), with a block-level skip.

    The basic block of SRResNet (with BN) and EDSR (without BN, with
    ``res_scale``).  ``conv_factory`` decides whether the two convs are
    full precision or one of the binary schemes.
    """

    def __init__(self, n_feats: int, conv_factory: ConvFactory = fp_conv_factory,
                 use_bn: bool = False, act: str = "relu", res_scale: float = 1.0,
                 kernel_size: int = 3):
        super().__init__()
        self.res_scale = res_scale
        self.conv1 = conv_factory(n_feats, n_feats, kernel_size)
        self.bn1 = BatchNorm2d(n_feats) if use_bn else Identity()
        self.act = PReLU() if act == "prelu" else ReLU()
        self.conv2 = conv_factory(n_feats, n_feats, kernel_size)
        self.bn2 = BatchNorm2d(n_feats) if use_bn else Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn2(self.conv2(self.act(self.bn1(self.conv1(x)))))
        if self.res_scale != 1.0:
            out = out * self.res_scale
        return out + x


class MeanShift(Module):
    """Subtract (or add back) a fixed channel mean, as EDSR does for RGB.

    For the synthetic datasets the mean is 0.5 per channel (images live in
    [0, 1]).
    """

    def __init__(self, mean=(0.5, 0.5, 0.5), sign: int = -1):
        super().__init__()
        import numpy as np
        self._shift = sign * np.asarray(mean, dtype=np.float64).reshape(1, -1, 1, 1)

    def forward(self, x: Tensor) -> Tensor:
        return x + Tensor(self._shift)


def zero_init_last_conv(module: Module) -> None:
    """Zero the last conv of a tail so the initial output is exactly the
    bicubic residual baseline (training can then only improve on it)."""
    last = None
    for sub in module.modules():
        if isinstance(sub, Conv2d):
            last = sub
    if last is not None:
        last.weight.data[...] = 0.0
        if last.bias is not None:
            last.bias.data[...] = 0.0


def bicubic_residual(x: Tensor, scale: int) -> Tensor:
    """Bicubic-upsampled input as a constant image-space residual.

    The binary SR literature (E2FIF, BTM) reconstructs the *residual* on
    top of a cheap interpolation of the LR input; the interpolation is a
    constant w.r.t. the parameters, so it enters the graph as data.
    """
    import numpy as np

    from ..data.resize import upscale

    images = x.data
    ups = np.stack([
        upscale(img.transpose(1, 2, 0), scale).transpose(2, 0, 1)
        for img in images
    ])
    return Tensor(ups)


class CALayer(Module):
    """Squeeze-and-excitation channel attention (used by RCAN and HAT)."""

    def __init__(self, n_feats: int, reduction: int = 4):
        super().__init__()
        hidden = max(n_feats // reduction, 1)
        self.down = Conv2d(n_feats, hidden, 1)
        self.act = ReLU()
        self.up = Conv2d(hidden, n_feats, 1)

    def forward(self, x: Tensor) -> Tensor:
        pooled = G.global_avg_pool2d(x)
        weights = G.sigmoid(self.up(self.act(self.down(pooled))))
        return x * weights
