"""Structured JSON logging: formatter, wiring, idempotency."""

import io
import json
import logging

from repro.api import configure_logging, log_event
from repro.api.logs import JsonLineFormatter


def _reset():
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)


class TestJsonLineFormatter:
    def _format(self, **kwargs):
        record = logging.LogRecord(
            name="repro.serve", level=logging.INFO, pathname=__file__,
            lineno=1, msg=kwargs.pop("msg", "request"), args=(),
            exc_info=kwargs.pop("exc_info", None))
        for key, value in kwargs.items():
            setattr(record, key, value)
        return json.loads(JsonLineFormatter().format(record))

    def test_envelope_and_fields(self):
        payload = self._format(repro_fields={
            "request_id": "gw-1-000001", "model": "a/b/x2",
            "total_s": 0.012})
        assert payload["event"] == "request"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.serve"
        assert payload["request_id"] == "gw-1-000001"
        assert payload["total_s"] == 0.012
        assert isinstance(payload["ts"], float)

    def test_envelope_wins_on_collision(self):
        payload = self._format(repro_fields={"event": "spoofed"})
        assert payload["event"] == "request"

    def test_unserialisable_field_degrades_to_str(self):
        payload = self._format(repro_fields={"weird": object()})
        assert "object object" in payload["weird"]

    def test_exception_is_included(self):
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            payload = self._format(exc_info=sys.exc_info())
        assert "ValueError: boom" in payload["exception"]

    def test_output_is_one_line(self):
        record = logging.LogRecord(
            name="repro", level=logging.INFO, pathname=__file__,
            lineno=1, msg="x", args=(), exc_info=None)
        assert "\n" not in JsonLineFormatter().format(record)


class TestConfigureLogging:
    def test_events_come_out_as_json_lines(self):
        _reset()
        try:
            stream = io.StringIO()
            logger = configure_logging(stream=stream)
            log_event(logging.getLogger("repro.gateway"), "proxy",
                      request_id="gw-0-000000", status=200)
            lines = stream.getvalue().strip().splitlines()
            assert len(lines) == 1
            payload = json.loads(lines[0])
            assert payload["event"] == "proxy"
            assert payload["status"] == 200
            assert logger.propagate is False
        finally:
            _reset()

    def test_reconfigure_replaces_not_stacks(self):
        _reset()
        try:
            first, second = io.StringIO(), io.StringIO()
            configure_logging(stream=first)
            configure_logging(stream=second)
            log_event(logging.getLogger("repro.serve"), "request")
            assert first.getvalue() == ""
            assert len(second.getvalue().strip().splitlines()) == 1
            assert len(logging.getLogger("repro").handlers) == 1
        finally:
            _reset()

    def test_level_filters(self):
        _reset()
        try:
            stream = io.StringIO()
            configure_logging(level=logging.WARNING, stream=stream)
            log_event(logging.getLogger("repro.serve"), "request")
            assert stream.getvalue() == ""
            logging.getLogger("repro.serve").warning(
                "slow", extra={"repro_fields": {"total_s": 9.0}})
            payload = json.loads(stream.getvalue())
            assert payload["level"] == "warning"
            assert payload["total_s"] == 9.0
        finally:
            _reset()
