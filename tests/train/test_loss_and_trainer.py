"""Tests for losses, the trainer, and evaluation."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.data import benchmark_suite, training_pool
from repro.models import build_model
from repro.train import (
    TrainConfig,
    Trainer,
    charbonnier_loss,
    evaluate,
    evaluate_bicubic,
    get_loss,
    l1_loss,
    l2_loss,
    super_resolve,
)

from ..helpers import rng


class TestLosses:
    def test_l1_value(self):
        a = Tensor(np.zeros((2, 2)))
        b = Tensor(np.full((2, 2), 0.5))
        assert float(l1_loss(a, b).data) == pytest.approx(0.5)

    def test_l2_value(self):
        a = Tensor(np.zeros(4))
        b = Tensor(np.full(4, 2.0))
        assert float(l2_loss(a, b).data) == pytest.approx(4.0)

    def test_charbonnier_close_to_l1_for_large_errors(self):
        a = Tensor(np.zeros(4))
        b = Tensor(np.full(4, 1.0))
        assert float(charbonnier_loss(a, b).data) == pytest.approx(1.0, abs=1e-4)

    def test_losses_differentiable(self):
        for name in ["l1", "l2", "charbonnier"]:
            pred = Tensor(rng(0).normal(size=(2, 3)), requires_grad=True)
            loss = get_loss(name)(pred, Tensor(np.zeros((2, 3))))
            loss.backward()
            assert pred.grad is not None

    def test_unknown_loss(self):
        with pytest.raises(KeyError):
            get_loss("perceptual")


@pytest.fixture(scope="module")
def tiny_pool():
    with G.default_dtype("float32"):
        yield training_pool(scale=2, n_images=3, size=(48, 48))


@pytest.fixture(scope="module")
def tiny_suite():
    return benchmark_suite("set5", scale=2, n_images=2, size=(32, 32))


class TestTrainer:
    def test_step_returns_loss_and_updates(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            tail_conv = model.tail[1]
            head_before = model.head[0].weight.data.copy()
            tail_before = tail_conv.weight.data.copy()
            trainer = Trainer(model, tiny_pool,
                              TrainConfig(steps=2, batch_size=2, patch_size=8))
            value = trainer.step()
            assert np.isfinite(value)
            # The zero-initialized tail conv blocks upstream gradients on
            # step 1 (standard residual-branch dynamic): only the tail
            # moves first, the head follows on step 2.
            assert not np.allclose(tail_conv.weight.data, tail_before)
            np.testing.assert_allclose(model.head[0].weight.data, head_before)
            trainer.step()
            assert not np.allclose(model.head[0].weight.data, head_before)

    def test_training_reduces_loss(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            trainer = Trainer(model, tiny_pool,
                              TrainConfig(steps=40, batch_size=4, patch_size=8,
                                          lr=1e-3))
            trainer.fit()
            early = float(np.mean(trainer.history[:5]))
            late = trainer.smoothed_loss(window=5)
            assert late < early * 1.05  # allow noise, must not blow up

    def test_binarized_model_trains(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="scales",
                                preset="tiny", n_feats=8, n_blocks=1,
                                head_kernel=3, light_tail=True)
            trainer = Trainer(model, tiny_pool,
                              TrainConfig(steps=10, batch_size=2, patch_size=8))
            history = trainer.fit()
            assert len(history) == 10
            assert all(np.isfinite(v) for v in history)

    def test_border_margin_crops_loss_region(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            t_margin = Trainer(model, tiny_pool,
                               TrainConfig(steps=1, batch_size=2, patch_size=8,
                                           border_margin=2, seed=3))
            v1 = t_margin.step()
            model2 = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                 n_feats=8, n_blocks=1, head_kernel=3)
            t_full = Trainer(model2, tiny_pool,
                             TrainConfig(steps=1, batch_size=2, patch_size=8,
                                         border_margin=0, seed=3))
            v2 = t_full.step()
            assert v1 != v2  # different loss regions

    def test_smoothed_loss_requires_history(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            trainer = Trainer(model, tiny_pool, TrainConfig(steps=1))
            with pytest.raises(RuntimeError):
                trainer.smoothed_loss()

    def test_lr_schedule_applied(self, tiny_pool):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            trainer = Trainer(model, tiny_pool,
                              TrainConfig(steps=4, batch_size=2, patch_size=8,
                                          lr=1e-3, lr_step=2))
            trainer.fit()
            # 4 steps / step_size 2 -> two halvings.
            assert trainer.optimizer.lr == pytest.approx(2.5e-4)


class TestEvaluation:
    def test_super_resolve_shape(self, tiny_suite):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            sr = super_resolve(model, tiny_suite[0].lr)
            assert sr.shape == tiny_suite[0].hr.shape
            assert sr.min() >= 0 and sr.max() <= 1

    def test_super_resolve_restores_training_mode(self, tiny_suite):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            model.train()
            super_resolve(model, tiny_suite[0].lr)
            assert model.training

    def test_evaluate_returns_means(self, tiny_suite):
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            result = evaluate(model, tiny_suite)
            assert len(result.per_image_psnr) == 2
            assert result.psnr == pytest.approx(np.mean(result.per_image_psnr))
            assert 0 <= result.ssim <= 1

    def test_zero_init_model_equals_bicubic(self, tiny_suite):
        """With the zero-initialized tail, an untrained model's metrics
        equal the bicubic baseline exactly."""
        with G.default_dtype("float32"):
            model = build_model("srresnet", scale=2, scheme="fp", preset="tiny",
                                n_feats=8, n_blocks=1, head_kernel=3)
            ours = evaluate(model, tiny_suite)
            bicubic = evaluate_bicubic(tiny_suite)
            assert ours.psnr == pytest.approx(bicubic.psnr, abs=0.1)
