"""Tests for PSNR / SSIM and color conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.color import rgb_to_y, rgb_to_ycbcr, shave_border, ycbcr_to_rgb
from repro.metrics import psnr, psnr_y, ssim, ssim_y

from ..helpers import rng


class TestColor:
    def test_ycbcr_roundtrip(self):
        img = rng(0).random((8, 8, 3))
        back = ycbcr_to_rgb(rgb_to_ycbcr(img))
        np.testing.assert_allclose(back, img, atol=1e-10)

    def test_gray_has_neutral_chroma(self):
        img = np.full((4, 4, 3), 0.5)
        ycbcr = rgb_to_ycbcr(img)
        np.testing.assert_allclose(ycbcr[..., 1], 128 / 255, atol=1e-10)
        np.testing.assert_allclose(ycbcr[..., 2], 128 / 255, atol=1e-10)

    def test_y_weights_favor_green(self):
        red = np.zeros((1, 1, 3)); red[..., 0] = 1
        green = np.zeros((1, 1, 3)); green[..., 1] = 1
        assert rgb_to_y(green)[0, 0] > rgb_to_y(red)[0, 0]

    def test_y_matches_ycbcr_channel(self):
        img = rng(1).random((5, 5, 3))
        np.testing.assert_allclose(rgb_to_y(img), rgb_to_ycbcr(img)[..., 0])

    def test_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            rgb_to_y(np.zeros((4, 4, 1)))

    def test_shave_border(self):
        img = rng(2).random((10, 12, 3))
        out = shave_border(img, 2)
        assert out.shape == (6, 8, 3)
        np.testing.assert_array_equal(out, img[2:-2, 2:-2])

    def test_shave_zero_is_identity(self):
        img = rng(3).random((4, 4))
        assert shave_border(img, 0) is img

    def test_shave_too_large_raises(self):
        with pytest.raises(ValueError):
            shave_border(np.zeros((4, 4)), 2)


class TestPSNR:
    def test_identical_images_infinite(self):
        img = rng(0).random((8, 8))
        assert psnr(img, img) == float("inf")

    def test_known_mse(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_shave_changes_result(self):
        hr = rng(1).random((12, 12))
        sr = hr.copy()
        sr[0, 0] = 1.0 - sr[0, 0]  # corrupt one border pixel
        assert psnr(sr, hr, shave=2) == float("inf")
        assert psnr(sr, hr) < float("inf")

    def test_psnr_y_uses_luma_only(self):
        hr = rng(2).random((8, 8, 3))
        sr = hr.copy()
        # A pure chroma change (constant Y) leaves psnr_y infinite is hard
        # to construct; instead verify psnr_y equals psnr on the Y planes.
        sr[..., 0] *= 0.9
        assert psnr_y(sr, hr) == pytest.approx(psnr(rgb_to_y(sr), rgb_to_y(hr)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), noise=st.floats(0.01, 0.2))
    def test_monotone_in_noise(self, seed, noise):
        r = np.random.default_rng(seed)
        hr = r.random((8, 8))
        low = np.clip(hr + r.normal(0, noise, hr.shape), 0, 1)
        lower = np.clip(hr + r.normal(0, noise * 3, hr.shape), 0, 1)
        assert psnr(low, hr) >= psnr(lower, hr) - 1.0


class TestSSIM:
    def test_identical_is_one(self):
        img = rng(0).random((16, 16))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_range(self):
        a = rng(1).random((16, 16))
        b = rng(2).random((16, 16))
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_degrades_with_blur(self):
        from scipy import ndimage
        img = rng(3).random((32, 32))
        slight = ndimage.gaussian_filter(img, 0.5)
        heavy = ndimage.gaussian_filter(img, 3.0)
        assert ssim(slight, img) > ssim(heavy, img)

    def test_rejects_rgb_input(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4, 3)), np.zeros((4, 4, 3)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((8, 8)), np.zeros((9, 9)))

    def test_ssim_y_runs_on_rgb(self):
        a = rng(4).random((16, 16, 3))
        assert ssim_y(a, a) == pytest.approx(1.0)

    def test_luminance_shift_penalized(self):
        img = rng(5).random((16, 16)) * 0.5
        shifted = img + 0.3
        assert ssim(shifted, img) < 0.99
