"""Multi-model serving layer over packed deploy artifacts.

The production half of the deployment story: PRs 1-3 produced fast
packed kernels, a micro-batching :class:`repro.infer.InferencePipeline`
and one-file ``.npz`` deploy artifacts; this package turns a directory
of those artifacts into a *server* —

* :mod:`repro.serve.server`    — :class:`ModelServer`: lazy LRU-bounded
  multi-model registry keyed by ``(architecture, scheme, scale)``,
  admission control with typed :class:`ServerBusy` shedding, the
  background scheduling loop;
* :mod:`repro.serve.scheduler` — deadline-aware micro-batch policy:
  coalesce same-model requests, flush on full batch or expired latency
  budget, enforce per-model concurrency caps;
* :mod:`repro.serve.cache`     — content-hash result cache with
  byte-size LRU eviction (repeat inputs never touch the engine);
* :mod:`repro.serve.telemetry` — counters and log-bucketed latency
  histograms (p50/p95/p99, batch occupancy, cache hit-rate) behind
  ``stats()`` and a plain-text ``report()``;
* :mod:`repro.serve.metrics`   — Prometheus-style
  :class:`MetricsRegistry` (exposition text, cross-process merging,
  format lint) that the server, the jobs runner and the HTTP gateway
  publish into;
* :mod:`repro.serve.slo`       — declared per-model latency budgets
  with rolling p99-vs-budget burn counters (:class:`SloTracker`).

Served outputs are bit-identical to direct ``InferencePipeline`` runs
of the same artifact — scheduling, batching and caching are execution
-strategy details, never numerics.
"""

from .cache import ResultCache, TileReuseCache, content_key
from .metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    families_from_dump,
    lint_exposition,
    render_families,
)
from .scheduler import MicroBatchScheduler, QueuedRequest
from .server import (
    ModelKey,
    ModelServer,
    ServeError,
    ServeFuture,
    ServerBusy,
    ServerConfig,
    model_label,
    parse_model_key,
)
from .slo import SloTracker
from .telemetry import BUCKET_BOUNDS, LatencyHistogram, Telemetry

__all__ = [
    "ResultCache",
    "TileReuseCache",
    "content_key",
    "EXPOSITION_CONTENT_TYPE",
    "MetricsRegistry",
    "families_from_dump",
    "lint_exposition",
    "render_families",
    "MicroBatchScheduler",
    "QueuedRequest",
    "ModelKey",
    "ModelServer",
    "ServeError",
    "ServeFuture",
    "ServerBusy",
    "ServerConfig",
    "model_label",
    "parse_model_key",
    "SloTracker",
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "Telemetry",
]
