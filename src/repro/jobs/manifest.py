"""Manifests: what a bulk job runs, declared as one JSON file.

A manifest names an artifact zoo, a set of inputs, and the models to
run them through; :func:`load_manifest` expands it into the full item
list — the cross product ``inputs x models`` — with every path
resolved, every input content-hashed, and every item assigned a stable
id and shard.

Manifest format (JSON object)::

    {
      "artifacts": "zoo/",                  # dir of .npz deploy artifacts
      "inputs": ["frames/*.npy", "extra.npy"],   # paths and/or globs
      "models": ["srresnet/scales/x2"],     # optional: default = all
      "output_dir": "out/",
      "shard_size": 16,                     # items per worker task
      "batch_size": 8,                      # micro-batch inside a worker
      "workers": 2,                         # worker processes
      "retry": {"max_attempts": 3, "base_delay_s": 0.25}
    }

Relative paths resolve against the manifest file's directory, so a
manifest is portable alongside its data.

Identity and resume semantics hang off two hashes:

* ``Manifest.manifest_sha`` — the manifest file's bytes.  A journal is
  bound to it; resuming with an edited manifest is refused instead of
  silently running a different job under the same journal.
* ``JobItem.item_id`` — ``sha256(model | input-content-hash)``.  Items
  are keyed by what the input *is*, not where it lives: a resumed run
  skips an item only if the same bytes were already processed, and an
  input file that changed on disk is naturally a new item.
"""

from __future__ import annotations

import glob as globlib
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .journal import JobsError
from .retry import RetryPolicy

__all__ = ["JobItem", "Manifest", "load_manifest", "sha256_file"]

PathLike = Union[str, os.PathLike]


def sha256_file(path: PathLike, _cache: Dict[str, str] = {}) -> str:
    """Content hash of a file (memoized per path + mtime + size)."""
    path = Path(path)
    stat = path.stat()
    cache_key = f"{path}:{stat.st_mtime_ns}:{stat.st_size}"
    cached = _cache.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    _cache[cache_key] = digest.hexdigest()
    return _cache[cache_key]


@dataclass(frozen=True)
class JobItem:
    """One unit of work: run one input through one model."""

    item_id: str
    #: route string, e.g. ``"srresnet/scales/x2"``
    model: str
    #: path of the model's ``.npz`` deploy artifact
    artifact: str
    input: str
    output: str
    input_sha: str
    #: stable shard id, e.g. ``"srresnet/scales/x2#3"``
    shard: str


@dataclass
class Manifest:
    """A loaded, validated manifest with its expanded item list."""

    path: Path
    manifest_sha: str
    artifact_dir: Path
    #: route -> artifact path, for every model this manifest runs
    artifacts: Dict[str, str]
    models: List[str]
    inputs: List[str]
    output_dir: Path
    shard_size: int = 16
    batch_size: int = 8
    workers: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def items(self) -> List[JobItem]:
        """The full ``models x inputs`` item list, stably ordered."""
        items: List[JobItem] = []
        for model in self.models:
            artifact = self.artifacts[model]
            flat = model.replace("/", "_")
            for i, input_path in enumerate(self.inputs):
                input_sha = sha256_file(input_path)
                item_id = hashlib.sha256(
                    f"{model}|{input_sha}".encode("utf-8")).hexdigest()[:16]
                stem = Path(input_path).stem
                output = self.output_dir / flat / (
                    f"{stem}_{input_sha[:8]}.npy")
                items.append(JobItem(
                    item_id=item_id, model=model, artifact=artifact,
                    input=str(input_path), output=str(output),
                    input_sha=input_sha,
                    shard=f"{model}#{i // self.shard_size}"))
        return items


def _resolve_inputs(patterns, base: Path) -> List[str]:
    inputs: List[str] = []
    seen = set()
    for pattern in patterns:
        pattern = str(pattern)
        absolute = pattern if os.path.isabs(pattern) \
            else str(base / pattern)
        matches = (sorted(globlib.glob(absolute))
                   if globlib.has_magic(absolute) else [absolute])
        if not matches:
            raise JobsError(f"manifest input {pattern!r} matched no files")
        for match in matches:
            if match in seen:
                continue
            if not os.path.isfile(match):
                raise JobsError(f"manifest input {match!r} is not a file")
            seen.add(match)
            inputs.append(match)
    if not inputs:
        raise JobsError("manifest has no inputs")
    return inputs


def load_manifest(path: PathLike,
                  output_dir: Optional[PathLike] = None) -> Manifest:
    """Load, validate and expand a manifest file.

    ``output_dir`` overrides the manifest's own (the CLI's
    ``--output-dir``); everything else comes from the file.  Raises
    :class:`JobsError` with the offending field on any problem —
    a bulk run should refuse bad input up front, not 40 minutes in.
    """
    path = Path(path)
    if not path.is_file():
        raise JobsError(f"manifest {path} not found")
    raw_bytes = path.read_bytes()
    try:
        raw = json.loads(raw_bytes)
    except ValueError as exc:
        raise JobsError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise JobsError(f"manifest {path} must be a JSON object")
    known = {"artifacts", "inputs", "models", "output_dir", "shard_size",
             "batch_size", "workers", "retry"}
    unknown = set(raw) - known
    if unknown:
        raise JobsError(
            f"manifest {path}: unknown field(s) {sorted(unknown)}; "
            f"valid: {sorted(known)}")
    for required in ("artifacts", "inputs", "output_dir"):
        if required not in raw:
            raise JobsError(f"manifest {path}: missing field {required!r}")

    base = path.parent

    def resolve(p: str) -> Path:
        p = Path(p)
        return p if p.is_absolute() else base / p

    artifact_dir = resolve(raw["artifacts"])
    from ..deploy.serialize import scan_artifact_dir
    try:
        infos, _skipped = scan_artifact_dir(artifact_dir)
    except FileNotFoundError as exc:
        raise JobsError(str(exc)) from exc
    available = {
        f"{a}/{s}/x{x}": str(info.path)
        for info in infos for a, s, x in [info.key]}
    if not available:
        raise JobsError(f"no deploy artifacts under {artifact_dir}")

    requested = raw.get("models")
    if requested is None:
        models = sorted(available)
    else:
        from ..serve.server import parse_model_key
        models = []
        for spec in requested:
            a, s, x = parse_model_key(spec)
            route = f"{a}/{s}/x{x}"
            if route not in available:
                raise JobsError(
                    f"manifest model {spec!r}: no artifact for {route} "
                    f"in {artifact_dir} (available: "
                    f"{', '.join(sorted(available))})")
            models.append(route)
    artifacts = {route: available[route] for route in models}

    inputs_field = raw["inputs"]
    if isinstance(inputs_field, str):
        inputs_field = [inputs_field]
    if not isinstance(inputs_field, list) or not inputs_field:
        raise JobsError(f"manifest {path}: 'inputs' must be a non-empty "
                        "list of paths/globs")
    inputs = _resolve_inputs(inputs_field, base)

    def positive(name: str, default: int) -> int:
        value = int(raw.get(name, default))
        if value < 1:
            raise JobsError(f"manifest {path}: {name} must be >= 1")
        return value

    workers = raw.get("workers", 2)
    if int(workers) < 0:
        raise JobsError(f"manifest {path}: workers must be >= 0")
    try:
        retry = RetryPolicy.from_dict(raw.get("retry"))
    except (TypeError, ValueError) as exc:
        raise JobsError(f"manifest {path}: bad retry block: {exc}") from exc

    return Manifest(
        path=path,
        manifest_sha=hashlib.sha256(raw_bytes).hexdigest(),
        artifact_dir=artifact_dir,
        artifacts=artifacts,
        models=models,
        inputs=inputs,
        output_dir=Path(output_dir) if output_dir is not None
        else resolve(raw["output_dir"]),
        shard_size=positive("shard_size", 16),
        batch_size=positive("batch_size", 8),
        workers=int(workers),
        retry=retry)
