"""Frame-deadline policy arithmetic under an explicit clock."""

import pytest

from repro.stream import BEST_EFFORT, DROP_LATE, DeadlinePolicy


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown deadline policy"):
            DeadlinePolicy("never-late")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(DROP_LATE, frame_budget_s=-0.1)


class TestDeadlines:
    def test_deadline_from_default_budget(self):
        policy = DeadlinePolicy(DROP_LATE, frame_budget_s=0.5)
        assert policy.deadline(arrival=10.0) == 10.5

    def test_per_frame_override_wins(self):
        policy = DeadlinePolicy(DROP_LATE, frame_budget_s=0.5)
        assert policy.deadline(arrival=10.0, budget_s=2.0) == 12.0

    def test_no_budget_means_unbounded(self):
        policy = DeadlinePolicy(BEST_EFFORT)
        assert policy.deadline(arrival=10.0) is None
        assert policy.lateness(None, now=1e9) == 0.0
        assert policy.remaining(None, now=1e9) is None
        assert not policy.should_drop(None, now=1e9)


class TestExpiry:
    def test_exactly_at_deadline_is_expired(self):
        # Same inclusive boundary as the micro-batcher's due check.
        assert DeadlinePolicy.expired(10.5, now=10.5)
        assert not DeadlinePolicy.expired(10.5, now=10.5 - 1e-9)

    def test_drop_only_under_drop_late(self):
        drop = DeadlinePolicy(DROP_LATE, frame_budget_s=0.5)
        best = DeadlinePolicy(BEST_EFFORT, frame_budget_s=0.5)
        deadline = drop.deadline(10.0)
        assert drop.should_drop(deadline, now=10.5)
        assert not drop.should_drop(deadline, now=10.4)
        # Best-effort measures lateness but never drops.
        assert not best.should_drop(deadline, now=99.0)
        assert best.lateness(deadline, now=11.0) == pytest.approx(0.5)

    def test_lateness_clamps_at_zero(self):
        policy = DeadlinePolicy(DROP_LATE, frame_budget_s=1.0)
        assert policy.lateness(11.0, now=10.0) == 0.0
        assert policy.lateness(11.0, now=11.25) == pytest.approx(0.25)

    def test_remaining_budget_clamps_at_zero(self):
        policy = DeadlinePolicy(DROP_LATE, frame_budget_s=1.0)
        assert policy.remaining(11.0, now=10.25) == pytest.approx(0.75)
        assert policy.remaining(11.0, now=12.0) == 0.0
