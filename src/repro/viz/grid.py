"""Image tiling for side-by-side figure sheets.

Fig. 1 shows grids of binary feature maps; Fig. 9 shows HR / method /
method crops side by side.  Both reduce to: normalize each panel to
[0, 1], then place the panels on a canvas with margins.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def to_uint8(image: np.ndarray, normalize: bool = False) -> np.ndarray:
    """Convert an image to uint8; ``normalize`` rescales min->0, max->255."""
    arr = np.asarray(image, dtype=np.float64)
    if normalize:
        low, high = arr.min(), arr.max()
        arr = (arr - low) / (high - low) if high > low else np.zeros_like(arr)
    return np.clip(np.round(arr * 255.0), 0, 255).astype(np.uint8)


def _as_rgb(panel: np.ndarray) -> np.ndarray:
    if panel.ndim == 2:
        return np.repeat(panel[:, :, None], 3, axis=2)
    if panel.ndim == 3 and panel.shape[2] == 1:
        return np.repeat(panel, 3, axis=2)
    if panel.ndim == 3 and panel.shape[2] == 3:
        return panel
    raise ValueError(f"panel must be (H,W[,1|3]), got shape {panel.shape}")


def image_grid(panels: Sequence[np.ndarray], n_cols: int,
               margin: int = 2, background: float = 1.0,
               normalize_each: bool = False) -> np.ndarray:
    """Tile equally-sized panels into a grid image.

    Parameters
    ----------
    panels:
        Images in [0, 1] (float) of identical height/width.
    n_cols:
        Grid width; rows are ``ceil(len(panels) / n_cols)``.
    margin:
        Pixels of ``background`` between and around panels.
    normalize_each:
        Min-max normalize every panel independently (feature maps).

    Returns an ``(H, W, 3)`` float image in [0, 1].
    """
    if not panels:
        raise ValueError("no panels to tile")
    rgb = []
    for panel in panels:
        arr = np.asarray(panel, dtype=np.float64)
        if normalize_each:
            low, high = arr.min(), arr.max()
            arr = (arr - low) / (high - low) if high > low else np.zeros_like(arr)
        rgb.append(_as_rgb(np.clip(arr, 0.0, 1.0)))
    h, w = rgb[0].shape[:2]
    if any(p.shape[:2] != (h, w) for p in rgb):
        raise ValueError("all panels must share the same height and width")
    n_rows = -(-len(rgb) // n_cols)
    canvas = np.full((margin + n_rows * (h + margin),
                      margin + n_cols * (w + margin), 3), background)
    for idx, panel in enumerate(rgb):
        r, c = divmod(idx, n_cols)
        y = margin + r * (h + margin)
        x = margin + c * (w + margin)
        canvas[y:y + h, x:x + w] = panel
    return canvas


def labeled_row(panels: Sequence[np.ndarray],
                labels: Optional[Sequence[str]] = None,
                margin: int = 2) -> np.ndarray:
    """One row of panels (Fig. 9 layout); labels are printed to stdout.

    Pixel-font rendering is out of scope, so ``labels`` — when given —
    are echoed in panel order for the caller's log instead of drawn.
    """
    if labels is not None:
        if len(labels) != len(panels):
            raise ValueError("one label per panel required")
        print("  |  ".join(labels))
    return image_grid(panels, n_cols=len(panels), margin=margin)
