"""Quickstart: binarize an SR network with SCALES, train it, evaluate it.

Driven through the typed public API (:mod:`repro.api`): a declarative
:class:`ModelSpec` picks the zoo cell, :class:`EngineConfig` holds the
execution knobs (dtype, seed) that used to be global mutations, and the
:class:`Engine` facade runs the lifecycle.  Runs in about a minute on a
laptop CPU (everything is NumPy).

    python examples/quickstart.py
"""

from repro.api import Engine, EngineConfig, ModelSpec
from repro.data import benchmark_suite, training_pool
from repro.train import TrainConfig, evaluate_bicubic


def main() -> None:
    scale = 4

    # 1. One declarative spec: a SRResNet whose body convs are SCALES
    #    binary layers (layer-wise scaling factor + spatial & channel
    #    re-scaling).  float32 is 2x faster than the float64 default;
    #    the seed makes the weights reproducible.
    spec = ModelSpec("srresnet", scheme="scales", scale=scale, preset="tiny",
                     overrides={"light_tail": True, "head_kernel": 3})
    engine = Engine.from_spec(spec, config=EngineConfig(dtype="float32",
                                                        seed=42))
    print(f"model parameters: {engine.model.num_parameters():,}")

    # 2. Train on the synthetic DIV2K substitute (L1 loss, ADAM — the
    #    paper's recipe at laptop scale).
    pool = training_pool(scale=scale, n_images=16, size=(96, 96))
    engine.train(pool, TrainConfig(steps=600, batch_size=8, patch_size=16,
                                   lr=3e-4, lr_step=400), verbose=True)
    print(f"final training loss: {engine.trainer.smoothed_loss():.4f}")

    # 3. Evaluate PSNR/SSIM against bicubic on the texture suite (B100-
    #    style, where x4 reconstruction headroom is largest) and the
    #    repeated-geometry suite (Urban100-style, the paper's headline).
    for name in ("b100", "urban100"):
        suite = benchmark_suite(name, scale=scale, n_images=8, size=(64, 64))
        ours = engine.evaluate(suite)
        bicubic = evaluate_bicubic(suite)
        print(f"{name:>9}:  SCALES {ours.psnr:.2f} dB / SSIM {ours.ssim:.3f}"
              f"  |  bicubic {bicubic.psnr:.2f} dB / SSIM {bicubic.ssim:.3f}")


if __name__ == "__main__":
    main()
