"""Benchmark configuration.

The table reproductions train models; the in-process cache in
``repro.experiments.cache`` keeps each (architecture, scheme, scale)
trained exactly once per session, so benchmark files can share
checkpoints (fig1/fig9 reuse the Table III/V models).
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Training-based experiments are far too slow for statistical
    repetition; one round still records wall-clock in the benchmark
    report.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
