"""Shared fixtures for the jobs-layer tests: a tiny artifact zoo, a
handful of input frames, and a manifest factory.

Everything is content-addressed downstream (item ids hash the input
bytes), so the frames are generated from a fixed RNG — the same item
ids on every run, which the deterministic chaos tests rely on.
"""

import json

import numpy as np
import pytest

from repro import grad as G
from repro.deploy import compile_model
from repro.models import build_model
from repro.nn import init

KEYS = (("srresnet", "scales", 2), ("edsr", "e2fif", 2))
ROUTES = tuple(f"{a}/{s}/x{x}" for a, s, x in KEYS)
N_FRAMES = 5


@pytest.fixture(scope="package")
def zoo(tmp_path_factory):
    """Directory with two tiny packed artifacts (built once)."""
    directory = tmp_path_factory.mktemp("zoo")
    with G.default_dtype("float32"):
        for arch, scheme, scale in KEYS:
            init.seed(0)
            model = build_model(arch, scale=scale, scheme=scheme,
                                preset="tiny")
            compile_model(model, freeze=str(directory / f"{arch}_{scheme}.npz"))
    return directory


@pytest.fixture(scope="package")
def frames(tmp_path_factory):
    """N_FRAMES small ``.npy`` input images with deterministic bytes."""
    directory = tmp_path_factory.mktemp("frames")
    rng = np.random.default_rng(42)
    for i in range(N_FRAMES):
        np.save(directory / f"frame_{i:03d}.npy",
                rng.random((8, 8, 3)).astype(np.float32))
    return directory


@pytest.fixture
def make_manifest(zoo, frames, tmp_path):
    """Write a manifest JSON file and return its path.

    Keyword overrides replace top-level manifest fields; the defaults
    run every frame through both zoo models into ``tmp_path/out``.
    """

    def write(name="manifest.json", **overrides):
        spec = {
            "artifacts": str(zoo),
            "inputs": [str(frames / "*.npy")],
            "models": list(ROUTES),
            "output_dir": str(tmp_path / "out"),
            "shard_size": 2,
            "batch_size": 4,
            "workers": 0,
            "retry": {"max_attempts": 3, "base_delay_s": 0.001,
                      "max_delay_s": 0.01},
        }
        spec.update(overrides)
        spec = {k: v for k, v in spec.items() if v is not None}
        path = tmp_path / name
        path.write_text(json.dumps(spec, indent=2))
        return path

    return write
