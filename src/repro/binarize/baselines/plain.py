"""Plain XNOR-style binary convolution (no BN, no adaptivity).

Sign activations, per-channel scaled sign weights, Bi-Real skip.  Used as
the conv component of the transformer BiBERT baseline (the paper's
Table IV baseline binarizes every body layer; its conv layers have no
re-scaling of any kind).
"""

from __future__ import annotations

from typing import Optional

from ... import grad as G
from ...grad import Tensor
from ...nn import Parameter, init
from ..scales_layers import BinaryLayerBase
from ..ste import approx_sign_ste
from ..weight import binarize_weight


class PlainBinaryConv2d(BinaryLayerBase):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: Optional[int] = None, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.skip = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        xb = approx_sign_ste(x)
        w_hat = binarize_weight(self.weight)
        out = G.conv2d(xb, w_hat, self.bias, stride=self.stride, padding=self.padding)
        if self.skip:
            out = out + identity
        return out

    @classmethod
    def adaptability(cls):
        return {"method": "Plain (XNOR-style)", "spatial": False, "channel": False,
                "layer": False, "image": False, "hw_cost": "Low"}
