"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the lowest layer of the reproduction: the paper trains
binary super-resolution networks with gradient descent and custom
straight-through estimators, so we need a small but complete autograd
engine.  :class:`Tensor` wraps an ``np.ndarray`` and records the operations
applied to it; :meth:`Tensor.backward` replays them in reverse
topological order.

Broadcasting follows NumPy semantics; gradients flowing into a broadcast
operand are reduced back to its shape by :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

# Grad mode is *thread-local* (as in PyTorch): the batched inference
# pipeline and the model server run no_grad forwards on worker/scheduler
# threads concurrently with the caller, and a shared global would let
# two interleaved save/restore pairs leave gradients switched off for
# the whole process (observed as "training silently stops learning").
# Each thread starts with gradients enabled.
_grad_state = threading.local()
_default_dtype = np.float64
# Per-thread dtype override (see thread_default_dtype): lets a worker
# thread build tensors in a specific dtype (e.g. an artifact load on a
# server thread) without a racy save/restore on the shared global.
_dtype_override = threading.local()


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are created with.

    float64 (default) keeps finite-difference gradient checks tight;
    experiments switch to float32 for a ~2x NumPy speedup.
    """
    global _default_dtype
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError("default dtype must be float32 or float64")
    _default_dtype = dtype.type


def get_default_dtype():
    override = getattr(_dtype_override, "value", None)
    return override if override is not None else _default_dtype


@contextlib.contextmanager
def default_dtype(dtype):
    """Temporarily switch the *process-wide* default tensor dtype.

    The setting is global so worker threads spawned under the context
    (batched tile inference, the serving pipeline) build tensors in the
    same dtype as the caller.  Concurrent *differing* contexts on
    several threads would race on the restore; a thread that only needs
    the dtype for its own work (an artifact load on a server thread)
    should use :func:`thread_default_dtype` instead.
    """
    previous = _default_dtype
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


@contextlib.contextmanager
def thread_default_dtype(dtype):
    """Override the default tensor dtype on this thread only.

    Unlike :func:`default_dtype` this never writes shared state, so any
    number of threads can hold different overrides concurrently — the
    model server uses it to deserialize artifacts on scheduler threads
    while the rest of the process keeps its own dtype.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError("default dtype must be float32 or float64")
    previous = getattr(_dtype_override, "value", None)
    _dtype_override.value = dtype.type
    try:
        yield
    finally:
        _dtype_override.value = previous


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference mode) on this thread."""
    prev = getattr(_grad_state, "enabled", True)
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def is_grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were expanded from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=get_default_dtype())


class Tensor:
    """An N-dimensional array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray`` (float64 by default).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node from ``data`` with the given parents."""
        parents = tuple(parents)
        requires = is_grad_enabled() and any(
            p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones.  Leaf tensors with ``requires_grad``
        accumulate into ``.grad``; intermediates only forward gradients.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        seeds: dict[int, np.ndarray] = {id(self): grad}

        def make_send(seeds_ref):
            def send(parent: "Tensor", g: np.ndarray) -> None:
                g = unbroadcast(np.asarray(g, dtype=parent.data.dtype), parent.data.shape)
                key = id(parent)
                if key in seeds_ref:
                    seeds_ref[key] = seeds_ref[key] + g
                else:
                    seeds_ref[key] = g
            return send

        send = make_send(seeds)
        for node in reversed(order):
            g = seeds.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                if node.requires_grad:
                    node._accumulate(g)
                continue
            node._backward(g, send)

    # ------------------------------------------------------------------
    # Arithmetic (forward + backward closures)
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(np.asarray(value, dtype=get_default_dtype()))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data + other.data

        def backward(grad, send):
            send(self, grad)
            send(other, grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data * other.data

        def backward(grad, send):
            send(self, grad * other.data)
            send(other, grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad, send):
            send(self, -grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data - other.data

        def backward(grad, send):
            send(self, grad)
            send(other, -grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) - self

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data / other.data

        def backward(grad, send):
            send(self, grad / other.data)
            send(other, -grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad, send):
            send(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        data = self.data @ other.data

        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError("matmul requires operands with at least 2 dims")

        def backward(grad, send):
            a, b = self.data, other.data
            send(self, grad @ np.swapaxes(b, -1, -2))
            send(other, np.swapaxes(a, -1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # Comparisons produce plain numpy bool arrays (no gradients).
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


def custom_op(
    inputs: Sequence[Tensor],
    output_data: np.ndarray,
    backward: Callable[[np.ndarray, Callable[[Tensor, np.ndarray], None]], None],
) -> Tensor:
    """Build a graph node with a hand-written backward rule.

    This is the hook used by the straight-through estimators of the paper
    (Eq. 2 / Eq. 3): the forward result is an arbitrary array and
    ``backward(grad, send)`` routes custom gradients to each input.
    """
    return Tensor._make(np.asarray(output_data, dtype=get_default_dtype()), tuple(inputs), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))
