"""XNOR-popcount kernels must agree exactly with float arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import grad as G
from repro.deploy import (binary_gemm, pack_signs, pack_weight_conv,
                          pack_weight_linear, packed_conv2d, packed_linear)
from repro.grad import Tensor


def _random_signs(rng, shape):
    return np.where(rng.random(shape) > 0.5, 1.0, -1.0)


class TestBinaryGemm:
    def test_matches_float_matmul(self):
        rng = np.random.default_rng(0)
        a = _random_signs(rng, (7, 100))
        b = _random_signs(rng, (5, 100))
        out = binary_gemm(pack_signs(a), pack_signs(b), 100)
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int32))

    def test_blocking_boundary(self):
        # More rows than the block size exercises the blocked path.
        rng = np.random.default_rng(1)
        a = _random_signs(rng, (300, 70))
        b = _random_signs(rng, (3, 70))
        out = binary_gemm(pack_signs(a), pack_signs(b), 70, block=128)
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int32))

    def test_word_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_gemm(np.zeros((2, 1), dtype=np.uint64),
                        np.zeros((2, 2), dtype=np.uint64), 64)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            binary_gemm(np.zeros(3, dtype=np.uint64),
                        np.zeros((2, 3), dtype=np.uint64), 64)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=150), st.integers(0, 2**31))
    def test_exactness_any_k(self, k, seed):
        rng = np.random.default_rng(seed)
        a = _random_signs(rng, (4, k))
        b = _random_signs(rng, (3, k))
        out = binary_gemm(pack_signs(a), pack_signs(b), k)
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int32))


class TestPackedConv2d:
    @pytest.mark.parametrize("padding", [0, 1, 2])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_float_conv(self, padding, stride):
        rng = np.random.default_rng(42)
        x = _random_signs(rng, (2, 5, 10, 9))
        w = rng.normal(size=(4, 5, 3, 3))
        packed, signs = pack_weight_conv(w)
        out = packed_conv2d(x, packed, signs, stride=stride, padding=padding)
        ref = G.conv2d(Tensor(x), Tensor(np.where(w >= 0, 1.0, -1.0)),
                       stride=stride, padding=padding).data
        np.testing.assert_array_equal(out, ref)

    def test_1x1_kernel(self):
        rng = np.random.default_rng(3)
        x = _random_signs(rng, (1, 8, 6, 6))
        w = rng.normal(size=(2, 8, 1, 1))
        packed, signs = pack_weight_conv(w)
        out = packed_conv2d(x, packed, signs)
        ref = G.conv2d(Tensor(x), Tensor(np.where(w >= 0, 1.0, -1.0))).data
        np.testing.assert_array_equal(out, ref)

    def test_channel_mismatch_raises(self):
        rng = np.random.default_rng(4)
        x = _random_signs(rng, (1, 3, 6, 6))
        w = rng.normal(size=(2, 5, 3, 3))
        packed, signs = pack_weight_conv(w)
        with pytest.raises(ValueError):
            packed_conv2d(x, packed, signs, padding=1)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=5, max_value=12),
           st.integers(0, 2**31))
    def test_exactness_random_geometry(self, c_in, hw, seed):
        rng = np.random.default_rng(seed)
        x = _random_signs(rng, (1, c_in, hw, hw))
        w = rng.normal(size=(3, c_in, 3, 3))
        packed, signs = pack_weight_conv(w)
        out = packed_conv2d(x, packed, signs, padding=1)
        ref = G.conv2d(Tensor(x), Tensor(np.where(w >= 0, 1.0, -1.0)),
                       padding=1).data
        np.testing.assert_array_equal(out, ref)


class TestPackedLinear:
    def test_matches_float_matmul(self):
        rng = np.random.default_rng(5)
        x = _random_signs(rng, (4, 7, 33))
        w = rng.normal(size=(11, 33))
        packed, k = pack_weight_linear(w)
        out = packed_linear(x, packed, k)
        ref = x @ np.where(w >= 0, 1.0, -1.0).T
        np.testing.assert_array_equal(out, ref)

    def test_feature_mismatch_raises(self):
        rng = np.random.default_rng(6)
        w = rng.normal(size=(4, 8))
        packed, k = pack_weight_linear(w)
        with pytest.raises(ValueError):
            packed_linear(_random_signs(rng, (2, 9)), packed, k)


class TestGemmFastVsReferenceSweep:
    """Seeded sweep: ``binary_gemm`` must equal ``binary_gemm_reference``
    (and the float matmul) across randomized shapes.

    Covers the fast path's distinguishing machinery — hardware popcount
    dispatch, the uint16 accumulator, workspace reuse, precomputed
    ``b_t`` panels, caller-provided ``out=`` — on non-multiple-of-64
    widths, K=1, single-row and single-column panels, and row counts
    that straddle the block boundary.
    """

    KS = (1, 63, 64, 65, 127, 129, 576)
    SHAPES = ((1, 1), (1, 7), (5, 1), (7, 5), (300, 3))

    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("m,n", SHAPES)
    def test_matches_reference_and_float(self, m, n, k):
        from repro.deploy import binary_gemm_reference
        rng = np.random.default_rng(k * 1000 + m * 10 + n)
        a = _random_signs(rng, (m, k))
        b = _random_signs(rng, (n, k))
        pa, pb = pack_signs(a), pack_signs(b)
        fast = binary_gemm(pa, pb, k, block=128)
        ref = binary_gemm_reference(pa, pb, k, block=128)
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_array_equal(fast, (a @ b.T).astype(np.int32))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_geometry_with_bt_and_out(self, seed):
        from repro.deploy import binary_gemm_reference
        rng = np.random.default_rng(seed)
        m, n, k = (int(rng.integers(1, 200)), int(rng.integers(1, 40)),
                   int(rng.integers(1, 260)))
        a = _random_signs(rng, (m, k))
        b = _random_signs(rng, (n, k))
        pa, pb = pack_signs(a), pack_signs(b)
        # Weight-stationary call shape: precomputed transpose + arena out.
        b_t = np.ascontiguousarray(pb.T)
        out = np.empty((m, n), dtype=np.int32)
        got = binary_gemm(pa, pb, k, b_t=b_t, out=out)
        assert got is out
        np.testing.assert_array_equal(out, binary_gemm_reference(pa, pb, k))

    def test_wide_k_int64_accumulator_fallback(self):
        from repro.deploy import binary_gemm_reference
        # >= 2**16 bits per row forces the int64 accumulator branch.
        k = (1 << 16) + 64
        rng = np.random.default_rng(2024)
        a = _random_signs(rng, (2, k))
        b = _random_signs(rng, (3, k))
        pa, pb = pack_signs(a), pack_signs(b)
        np.testing.assert_array_equal(binary_gemm(pa, pb, k),
                                      binary_gemm_reference(pa, pb, k))


class TestPackedConv2dStridePadding:
    """Explicit stride-2 + padding coverage through the packed pipeline."""

    @pytest.mark.parametrize("stride,padding", [(2, 1), (2, 2), (3, 1)])
    def test_matches_float_conv_strided_padded(self, stride, padding):
        from repro.deploy import pack_weight_conv, packed_conv2d
        rng = np.random.default_rng(77)
        x = _random_signs(rng, (2, 3, 11, 10))
        w = rng.normal(size=(5, 3, 3, 3))
        packed_w, w_signs = pack_weight_conv(w)
        out = packed_conv2d(x, packed_w, w_signs, stride=stride,
                            padding=padding)
        expected = G.conv2d(Tensor(np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))),
            Tensor(w_signs), stride=stride).data
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_precomputed_padding_correction_matches(self):
        from repro.deploy import pack_weight_conv, packed_conv2d
        from repro.deploy.kernels import _padding_correction
        rng = np.random.default_rng(78)
        x = _random_signs(rng, (1, 4, 9, 9))
        w = rng.normal(size=(6, 4, 3, 3))
        packed_w, w_signs = pack_weight_conv(w)
        correction = _padding_correction((9, 9), w_signs, 1, 1)
        out_cached = packed_conv2d(x, packed_w, w_signs, stride=1, padding=1,
                                   padding_correction=correction)
        out_fresh = packed_conv2d(x, packed_w, w_signs, stride=1, padding=1)
        np.testing.assert_array_equal(out_cached, out_fresh)
