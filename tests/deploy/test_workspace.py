"""Per-thread scratch arena semantics."""

import threading

import numpy as np
import pytest

from repro.deploy.workspace import Workspace, clear_workspace, workspace


class TestWorkspace:
    def test_same_key_returns_same_buffer(self):
        ws = Workspace()
        a = ws.take("x", (4, 8), np.float64)
        b = ws.take("x", (4, 8), np.float64)
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_keys_distinct_buffers(self):
        ws = Workspace()
        a = ws.take("x", (4, 8), np.float64)
        assert ws.take("y", (4, 8), np.float64) is not a
        assert ws.take("x", (4, 9), np.float64) is not a
        assert ws.take("x", (4, 8), np.float32) is not a

    def test_zero_on_create_only_zeroes_new_buffers(self):
        ws = Workspace()
        a = ws.take("bits", (16,), np.uint8, zero_on_create=True)
        assert not a.any()
        a[:] = 7
        # Reuse must NOT re-zero: callers rely on tails staying zero while
        # rewriting only their interior.
        assert ws.take("bits", (16,), np.uint8, zero_on_create=True)[0] == 7

    def test_bounded_under_key_churn(self):
        ws = Workspace(max_entries=4)
        for i in range(20):
            ws.take(f"k{i}", (8,), np.uint8)
        assert len(ws) <= 4

    def test_eviction_is_fifo(self):
        ws = Workspace(max_entries=2)
        a = ws.take("a", (8,), np.uint8)
        ws.take("b", (8,), np.uint8)
        ws.take("c", (8,), np.uint8)  # evicts "a"
        assert ws.take("a", (8,), np.uint8) is not a

    def test_nbytes_accounting(self):
        ws = Workspace()
        ws.take("x", (10,), np.float64)
        ws.take("y", (10,), np.uint8)
        assert ws.nbytes == 80 + 10

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            Workspace(max_entries=0)

    def test_thread_local_isolation(self):
        mine = workspace()
        seen = {}

        def worker():
            seen["ws"] = workspace()
            seen["buf"] = workspace().take("t", (4,), np.uint8)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["ws"] is not mine
        assert workspace() is mine

    def test_clear_workspace(self):
        ws = workspace()
        ws.take("tmp", (4,), np.uint8)
        assert len(ws) >= 1
        clear_workspace()
        assert len(workspace()) == 0
