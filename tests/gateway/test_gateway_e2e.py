"""Gateway end-to-end: spawned workers, real sockets, real signals.

The acceptance criteria of the network front door, exercised for real:

* concurrent HTTP responses bit-identical to direct ``Engine.infer``
  on the same artifacts (the serving layer's determinism contract,
  kept across process and socket boundaries);
* killing a worker mid-load completes every request via re-routing —
  zero hung clients — and the monitor respawns the slot;
* typed refusals end to end: 404 unknown model, 400 malformed, 429
  over-quota, 503 draining;
* SIGTERM drains gracefully: in-flight requests settle, late arrivals
  get 503, the process exits 0.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import Engine, EngineConfig
from repro.gateway import (
    Gateway,
    GatewayClient,
    GatewayConfig,
    run_open_loop,
)
from repro.serve import ServerConfig

from .conftest import MODEL_A, MODEL_B, images


def _config(**overrides):
    defaults = dict(
        n_workers=2,
        server=ServerConfig(n_threads=1, latency_budget_s=0.005,
                            dtype="float32", drain_timeout_s=10.0),
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


@pytest.fixture(scope="module")
def gateway(zoo_dir):
    with Gateway(zoo_dir, _config()) as gw:
        yield gw


@pytest.fixture(scope="module")
def references(zoo_dir):
    """model route -> direct Engine.infer outputs for the shared images."""
    refs = {}
    for model, stem in ((MODEL_A, "srresnet_scales"), (MODEL_B, "edsr_e2fif")):
        engine = Engine.from_artifact(
            zoo_dir / f"{stem}.npz", EngineConfig(dtype="float32"))
        refs[model] = [r.unwrap() for r in engine.infer_many(
            images(n=4, seed=11))]
        engine.close()
    return refs


class TestCorrectnessOverHTTP:
    def test_concurrent_requests_bit_identical_to_engine_infer(
            self, gateway, references):
        imgs = images(n=4, seed=11)
        failures = []

        def worker(thread_id):
            client = GatewayClient(gateway.address,
                                   client_id=f"t{thread_id}")
            for model in (MODEL_A, MODEL_B):
                for i, img in enumerate(imgs):
                    result = client.infer(img, model)
                    if not result.ok:
                        failures.append((model, i, result))
                    elif not np.array_equal(result.output,
                                            references[model][i]):
                        failures.append((model, i, "bit mismatch"))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        assert failures == []

    def test_unknown_model_is_404(self, gateway):
        result = GatewayClient(gateway.address).infer(
            images(n=1)[0], "rdn/scales/x9")
        assert result.http_status == 404
        assert "available" in result.reason

    def test_malformed_body_is_400(self, gateway):
        import http.client

        host, port = gateway.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/infer", body=b"{not json",
                         headers={"Content-Length": "9"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_stats_surface_worker_coalescing(self, gateway):
        client = GatewayClient(gateway.address)
        assert client.infer(images(n=1, seed=42)[0], MODEL_A).ok
        stats = client.stats()
        assert stats["gateway"]["proxied"] >= 1
        assert stats["workers"], "no worker stats collected"
        for worker_stats in stats["workers"].values():
            assert "coalesced" in worker_stats["server"]

    def test_open_loop_loadgen_round_trip(self, gateway):
        report = run_open_loop(
            gateway.address, MODEL_A, images(n=4, seed=13),
            rate_rps=30.0, duration_s=1.0, seed=0)
        assert report.sent > 0
        assert report.errors == 0
        assert report.ok == report.sent - report.shed
        assert report.ok > 0
        assert report.p99_ms >= report.p50_ms >= 0.0


class TestAdmission:
    def test_over_quota_client_gets_429_others_unaffected(self, zoo_dir):
        config = _config(n_workers=1, quota_rate_per_s=0.25, quota_burst=2)
        with Gateway(zoo_dir, config) as gw:
            greedy = GatewayClient(gw.address, client_id="greedy")
            polite = GatewayClient(gw.address, client_id="polite")
            img = images(n=1, seed=21)[0]
            statuses = [greedy.infer(img, MODEL_A).http_status
                        for _ in range(3)]
            assert statuses[:2] == [200, 200]
            assert statuses[2] == 429
            assert polite.infer(img, MODEL_A).http_status == 200
            assert gw.telemetry.counter("shed_quota") == 1

    def test_draining_front_door_sheds_new_work_with_503(self, gateway):
        gateway.draining = True
        try:
            result = GatewayClient(gateway.address).infer(
                images(n=1)[0], MODEL_A)
        finally:
            gateway.draining = False
        assert result.http_status == 503
        assert result.retryable
        assert "draining" in result.reason


class TestWorkerDeath:
    def test_killed_worker_reroutes_with_zero_hung_clients(self, zoo_dir):
        config = _config(liveness_interval_s=0.1)
        with Gateway(zoo_dir, config) as gw:
            client = GatewayClient(gw.address)
            imgs = images(n=3, seed=31)
            assert client.infer(imgs[0], MODEL_A).ok
            victim = gw._ring.route(MODEL_A)
            os.kill(gw._workers[victim].process.pid, signal.SIGKILL)

            results = []
            lock = threading.Lock()

            def hammer(i):
                result = client.infer(imgs[i % len(imgs)], MODEL_A)
                with lock:
                    results.append(result)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            # Zero hung clients: every request completed, with a real
            # result, via re-routing around the corpse.
            assert not any(t.is_alive() for t in threads)
            assert len(results) == 8
            assert all(r.ok for r in results), [
                (r.http_status, r.reason) for r in results if not r.ok]

            # The monitor notices the death and respawns the slot.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                slot = gw.health()["workers"][str(victim)]
                if slot["alive"] and slot["respawns"] >= 1:
                    break
                time.sleep(0.2)
            else:
                pytest.fail(f"worker {victim} was never respawned")
            assert gw.telemetry.counter("worker_respawns") >= 1


class TestSigtermDrain:
    def test_cli_sigterm_settles_inflight_and_exits_zero(self, zoo_dir):
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.gateway",
             "--artifact-dir", str(zoo_dir), "--workers", "1",
             "--dtype", "float32", "--drain-timeout", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, bufsize=1, env=env)
        try:
            ready = None
            for line in proc.stdout:
                if line.startswith("GATEWAY_READY"):
                    ready = line.split()[1]
                    break
            assert ready is not None, "gateway never became ready"
            host, _, port = ready.partition(":")
            client = GatewayClient((host, int(port)))
            imgs = images(n=6, seed=41)
            assert client.infer(imgs[0], MODEL_A).ok

            inflight = []
            lock = threading.Lock()

            def fire(img):
                try:
                    result = client.infer(img, MODEL_A)
                except OSError:
                    result = None  # socket already down: late arrival
                with lock:
                    inflight.append(result)

            threads = [threading.Thread(target=fire, args=(imgs[i % 6],))
                       for i in range(12)]
            for t in threads:
                t.start()
            proc.send_signal(signal.SIGTERM)

            # Late arrivals during the drain window get a typed 503
            # (or find the socket already closed, never a hang).
            late = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    result = client.infer(imgs[0], MODEL_A)
                except OSError:
                    late = "closed"
                    break
                if result.http_status == 503:
                    late = 503
                    break
                time.sleep(0.01)
            assert late in (503, "closed")

            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            for result in inflight:
                # Settled with a real output, or typed-refused; a reset
                # connection mid-request (None) would be a drain bug —
                # only the post-shutdown late probe may see one.
                if result is not None:
                    assert result.ok or result.http_status == 503, (
                        result.http_status, result.reason)
            assert any(r is not None and r.ok for r in inflight)

            assert proc.wait(timeout=120) == 0
            tail = proc.stdout.read()
            assert "GATEWAY_DRAINING" in tail
            assert "GATEWAY_STOPPED" in tail
        finally:
            proc.kill()
            proc.stdout.close()
