"""Fig. 1 — binary feature maps: SCALES vs the prior art E2FIF.

The paper's visual claim is that SCALES' binarized activations keep the
image's texture while E2FIF's collapse.  Quantified here as the edge
density ("richness") of the binary maps of trained models on an
urban-style image: SCALES maps must carry structure (non-degenerate
richness) and at least match the baseline on average.
"""

import numpy as np

from repro.experiments.figures import fig1_binary_feature_maps


def test_fig1_binary_feature_maps(benchmark):
    data = benchmark.pedantic(fig1_binary_feature_maps, rounds=1, iterations=1)
    scales_rich = np.array(data["scales_richness"])
    e2fif_rich = np.array(data["e2fif_richness"])
    print(f"\nSCALES richness per layer: {np.round(scales_rich, 3)}")
    print(f"E2FIF  richness per layer: {np.round(e2fif_rich, 3)}")

    # Both methods produce genuinely binary maps...
    for maps in (data["scales_maps"], data["e2fif_maps"]):
        assert maps
        for arr in maps.values():
            assert len(np.unique(np.abs(arr))) == 1
    # ...but SCALES maps are not degenerate (all-flat = richness 0) and
    # retain at least as much structure as the baseline's.
    assert scales_rich.min() > 0.01
    assert scales_rich.mean() >= 0.5 * e2fif_rich.mean()
