"""Test-time inference utilities for SR models.

The EDSR lineage (and every paper building on it, including SCALES'
experimental protocol) evaluates with two standard tools this module
provides:

* :func:`self_ensemble` — the x8 geometric ensemble ("EDSR+"):
  average the model's predictions over the dihedral transforms of the
  input (4 rotations x optional flip), undoing each transform on the
  output.  Typically worth ~0.1-0.2 dB at no training cost.
* :func:`tiled_super_resolve` — chop the LR image into overlapping tiles,
  super-resolve each and blend, bounding peak memory so full-resolution
  images fit through NumPy inference.
"""

from .tta import DIHEDRAL_TRANSFORMS, self_ensemble
from .tiling import tiled_super_resolve

__all__ = ["DIHEDRAL_TRANSFORMS", "self_ensemble", "tiled_super_resolve"]
