"""{-1,+1} <-> packed ``uint64`` codecs and a vectorized popcount.

Conventions
-----------
* A *sign vector* is any array whose last axis holds values in
  ``{-1.0, +1.0}`` (the output domain of every binarizer in
  :mod:`repro.binarize`).
* Packing maps ``+1 -> bit 1`` and ``-1 -> bit 0``, little-endian within
  each 64-bit word: element ``i`` of a row lands in word ``i // 64`` at
  bit ``i % 64``.
* Rows whose length is not a multiple of 64 are padded with 0-bits.  The
  XNOR-GEMM identity ``dot = K - 2 * popcount(a ^ b)`` is unaffected as
  long as *both* operands pad with the same bit (the paddings XNOR to
  "agree" and the constant ``K`` already excludes them — see
  :func:`repro.deploy.kernels.binary_gemm`).
"""

from __future__ import annotations

import numpy as np

#: Number of bits per packed word.
WORD_BITS = 64

#: 16-bit popcount lookup table (64 KiB) — 4 lookups per uint64.
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                       dtype=np.uint8)


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_signs(signs: np.ndarray) -> np.ndarray:
    """Pack a sign array along its last axis into ``uint64`` words.

    Parameters
    ----------
    signs:
        Array of shape ``(..., K)`` with values in {-1, +1} (anything
        ``>= 0`` counts as +1, mirroring the forward ``sign`` used by
        every binarizer in this repo).

    Returns
    -------
    ``uint64`` array of shape ``(..., packed_words(K))``.
    """
    signs = np.asarray(signs)
    if signs.ndim == 0:
        raise ValueError("pack_signs needs at least one axis")
    *lead, k = signs.shape
    bits = (signs >= 0).astype(np.uint8).reshape(-1, k)
    pad = packed_words(k) * WORD_BITS - k
    if pad:
        bits = np.concatenate(
            [bits, np.zeros((bits.shape[0], pad), dtype=np.uint8)], axis=1)
    # LSB-first within each byte (reverse the 8-bit groups for packbits'
    # MSB-first convention), then little-endian byte order within each word.
    grouped = bits.reshape(bits.shape[0], -1, 8)[:, :, ::-1]
    packed_bytes = np.packbits(grouped, axis=2).reshape(bits.shape[0], -1)
    words = np.ascontiguousarray(packed_bytes).view("<u8")
    return words.reshape(*lead, -1).astype(np.uint64)


def unpack_signs(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`: recover the {-1, +1} sign array."""
    packed = np.asarray(packed, dtype=np.uint64)
    *lead, n_words = packed.shape
    if packed_words(n_bits) != n_words:
        raise ValueError(
            f"packed array has {n_words} words, expected {packed_words(n_bits)} "
            f"for {n_bits} bits")
    flat = np.ascontiguousarray(packed.reshape(-1, n_words)).astype("<u8")
    as_bytes = flat.view(np.uint8).reshape(flat.shape[0], -1)
    # Invert the LSB-first bit order within each byte before unpackbits.
    bits = np.unpackbits(as_bytes, axis=1)
    bits = bits.reshape(flat.shape[0], -1, 8)[:, :, ::-1]
    bits = bits.reshape(flat.shape[0], -1)[:, :n_bits]
    signs = np.where(bits > 0, 1.0, -1.0)
    return signs.reshape(*lead, n_bits)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (16-bit LUT, 4 lookups)."""
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64(0xFFFF)
    counts = _POPCOUNT16[(words & mask).astype(np.uint16)].astype(np.uint32)
    for shift in (16, 32, 48):
        counts += _POPCOUNT16[((words >> np.uint64(shift)) & mask).astype(np.uint16)]
    return counts
