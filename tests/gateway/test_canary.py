"""Canary rollout end to end: shadow verification over live traffic.

The acceptance scenario of the rollout tentpole, both directions:

* a *clean* revision 2 (bit-identical weights) is auto-promoted after
  ``promote_after`` verified samples, durably (``revisions.json``);
* a *perturbed* revision 2 is auto-demoted on its first sampled
  request — the incumbent keeps serving, every client request in the
  whole episode succeeds, and clients only ever see incumbent bytes.
"""

import json
import shutil

import numpy as np
import pytest

from repro.deploy import CanaryConfig, read_revision_state
from repro.gateway import Gateway, GatewayClient
from repro.serve import lint_exposition

from .conftest import MODEL_A, images
from .test_gateway_e2e import _config

LABEL = MODEL_A  # "srresnet/scales/x2"


def _write_revision(src, dst, revision, perturb=False, gut=False):
    """Re-stamp an artifact at ``revision``; optionally break it.

    ``perturb`` nudges the float remainder (and the first packed
    layer's weight scales) — a structurally valid artifact whose
    outputs diverge, exactly the failure canarying exists to catch.
    ``gut`` drops the packed weight arrays: the artifact still *scans*
    (its meta is intact) but cannot load.
    """
    with np.load(src) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(str(arrays.pop("__meta__")[()]))
    meta["revision"] = revision
    if perturb:
        scale_keys = [k for k in arrays if k.endswith(":weight_scale")]
        assert scale_keys, "artifact has no weight scales to perturb"
        arrays[scale_keys[0]] = arrays[scale_keys[0]] * 2.0
        for key in [k for k in arrays if k.startswith("state:")]:
            arrays[key] = arrays[key] + np.float32(0.05)
    if gut:
        for key in [k for k in arrays if k.endswith(":packed")]:
            del arrays[key]
    np.savez(dst, __meta__=np.array(json.dumps(meta)), **arrays)


@pytest.fixture()
def canary_zoo(zoo_dir, tmp_path):
    """A writable single-model zoo: revision 1 only (rev 2 per test)."""
    shutil.copy(zoo_dir / "srresnet_scales.npz", tmp_path / "rev1.npz")
    return tmp_path


def _canary_config(**kwargs):
    kwargs.setdefault("sample_fraction", 1.0)
    kwargs.setdefault("promote_after", 3)
    kwargs.setdefault("restart_workers_on_promote", False)
    return _config(n_workers=1, canary=CanaryConfig(**kwargs))


class TestCleanCandidatePromotes:
    def test_auto_promotion_after_n_verified_samples(self, canary_zoo):
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2)
        with Gateway(canary_zoo, _canary_config()) as gw:
            client = GatewayClient(gw.address)
            for i, image in enumerate(images(n=3, seed=21)):
                assert client.infer(image, LABEL).ok
                state = gw.canary.snapshot()[LABEL]["state"]
                assert state == ("promoted" if i == 2 else "verifying")
        # Durable: a fresh scan of the directory serves revision 2.
        assert read_revision_state(canary_zoo) == {LABEL: 2}

    def test_rolling_restart_is_invisible_to_clients(self, canary_zoo):
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2)
        config = _canary_config(promote_after=2,
                                restart_workers_on_promote=True)
        with Gateway(canary_zoo, config) as gw:
            client = GatewayClient(gw.address)
            for image in images(n=2, seed=22):
                assert client.infer(image, LABEL).ok
            assert gw.canary.snapshot()[LABEL]["state"] == "promoted"
            assert gw.rollout_complete(timeout=120.0)
            # The restarted pool serves the promoted revision; traffic
            # keeps flowing with zero client-visible errors.
            for image in images(n=2, seed=23):
                assert client.infer(image, LABEL).ok
            stats = gw.stats()
            assert stats["revisions"][LABEL]["active"] == 2
            assert stats["workers"]  # pool is back

    def test_metrics_count_the_promotion(self, canary_zoo):
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2)
        with Gateway(canary_zoo, _canary_config()) as gw:
            client = GatewayClient(gw.address)
            for image in images(n=3, seed=24):
                assert client.infer(image, LABEL).ok
            text = gw.metrics_text()
        assert lint_exposition(text) == []
        assert (f'repro_canary_samples_total{{model="{LABEL}"}} 3'
                in text)
        assert (f'repro_canary_promotions_total{{model="{LABEL}"}} 1'
                in text)
        assert f'repro_canary_state{{model="{LABEL}"}} 2' in text


class TestPerturbedCandidateDemotes:
    def test_first_mismatch_demotes_with_zero_client_errors(
            self, canary_zoo, zoo_dir):
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2, perturb=True)
        from repro.api import Engine, EngineConfig

        engine = Engine.from_artifact(
            zoo_dir / "srresnet_scales.npz", EngineConfig(dtype="float32"))
        try:
            with Gateway(canary_zoo, _canary_config()) as gw:
                client = GatewayClient(gw.address)
                outputs = []
                for image in images(n=4, seed=31):
                    result = client.infer(image, LABEL)
                    assert result.ok  # zero client-visible errors
                    outputs.append(result.output)
                snap = gw.canary.snapshot()[LABEL]
                assert snap["state"] == "demoted"
                assert snap["seen"] == 1  # first sample was enough
                text = gw.metrics_text()
                assert (f'repro_canary_mismatches_total{{model="{LABEL}"}}'
                        " 1") in text
                assert (f'repro_canary_demotions_total{{model="{LABEL}"}}'
                        " 1") in text
                assert f'repro_canary_state{{model="{LABEL}"}} -1' in text
                status = gw.revision_status()
                assert status["revisions"][LABEL]["active"] == 1
            # Every byte the clients saw came from the incumbent.
            for image, output in zip(images(n=4, seed=31), outputs):
                np.testing.assert_array_equal(
                    output, engine.infer(image).unwrap())
        finally:
            engine.close()
        # The incumbent is durably pinned; the bad artifact stays on
        # disk for diagnosis but will never serve.
        assert read_revision_state(canary_zoo) == {LABEL: 1}

    def test_unloadable_candidate_demotes_instead_of_erroring(
            self, canary_zoo):
        # A candidate whose meta scans but whose weights are gone:
        # verification fails to even load it, the rollout demotes, the
        # client path never notices.
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2, gut=True)
        with Gateway(canary_zoo, _canary_config()) as gw:
            client = GatewayClient(gw.address)
            assert client.infer(images(n=1)[0], LABEL).ok
            assert gw.canary.snapshot()[LABEL]["state"] == "demoted"
            assert "failed verification" in \
                gw.canary.snapshot()[LABEL]["detail"]
        assert read_revision_state(canary_zoo) == {LABEL: 1}


class TestRevisionsEndpoint:
    def test_http_surface(self, canary_zoo):
        _write_revision(canary_zoo / "rev1.npz", canary_zoo / "rev2.npz",
                        revision=2)
        import http.client

        with Gateway(canary_zoo, _canary_config()) as gw:
            host, port = gw.address
            conn = http.client.HTTPConnection(host, port, timeout=30.0)
            try:
                conn.request("GET", "/revisions")
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
        assert response.status == 200
        assert body["revisions"][LABEL] == {
            "revisions": [1, 2], "active": 1, "candidate": 2}
