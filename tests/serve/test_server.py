"""ModelServer end-to-end: correctness, concurrency, admission, LRU.

The invariant everything here leans on: a served output is
bit-identical to running the same image through ``InferencePipeline``
on the same artifact — scheduling order, batch composition, caching
and thread count are execution-strategy details only.
"""

import itertools
import threading
import time

import numpy as np
import pytest

from repro import grad as G
from repro.deploy import compile_model, scan_artifact_dir
from repro.infer import InferencePipeline
from repro.models import build_model
from repro.nn import init
from repro.serve import (
    ModelServer,
    ServeError,
    ServerBusy,
    ServerConfig,
    parse_model_key,
)

KEY_A = ("srresnet", "scales", 2)
KEY_B = ("edsr", "e2fif", 2)
SHAPES = ((12, 12, 3), (10, 14, 3))


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """Directory with two tiny packed artifacts (built once per module)."""
    directory = tmp_path_factory.mktemp("zoo")
    with G.default_dtype("float32"):
        for arch, scheme, scale in (KEY_A, KEY_B):
            init.seed(0)
            model = build_model(arch, scale=scale, scheme=scheme, preset="tiny")
            compile_model(model, freeze=str(directory / f"{arch}_{scheme}.npz"))
    return directory


@pytest.fixture(scope="module")
def reference_outputs(artifact_dir):
    """key -> {shape: [outputs for the module's canonical images]}."""

    def compute(key, images):
        info = {i.key: i for i in scan_artifact_dir(artifact_dir)[0]}[key]
        pipeline = InferencePipeline(str(info.path), batch_size=4)
        return pipeline.map(images)

    refs = {}
    with G.default_dtype("float32"):
        for key in (KEY_A, KEY_B):
            refs[key] = {
                shape: compute(key, _images(shape)) for shape in SHAPES
            }
    return refs


def _images(shape, n=6):
    rng = np.random.default_rng(hash(shape) % (2**32))
    return [rng.random(shape).astype(np.float32) for _ in range(n)]


def _manual_server(artifact_dir, clock, **overrides):
    defaults = dict(
        background=False, latency_budget_s=0.5, max_batch=8, n_threads=1
    )
    defaults.update(overrides)
    return ModelServer(
        artifact_dir, ServerConfig(**defaults), clock=clock
    )


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestParseModelKey:
    def test_tuple_and_string_forms(self):
        assert parse_model_key(("srresnet", "scales", 2)) == KEY_A
        assert parse_model_key("srresnet/scales/x2") == KEY_A
        assert parse_model_key("srresnet/scales/2") == KEY_A

    def test_bad_specs(self):
        for spec in ("srresnet/scales", "a/b/xq", 42, ("a", "b")):
            with pytest.raises(ValueError):
                parse_model_key(spec)


class TestCatalog:
    def test_available_models(self, artifact_dir):
        server = _manual_server(artifact_dir, FakeClock())
        assert server.available_models == (KEY_B, KEY_A)
        assert server.coverage(KEY_A).coverage == "full"
        assert server.model_info("edsr/e2fif/x2").n_packed_layers > 0

    def test_unknown_model_is_a_keyerror(self, artifact_dir):
        server = _manual_server(artifact_dir, FakeClock())
        with pytest.raises(KeyError, match="available"):
            server.submit(np.zeros((8, 8, 3), np.float32), "rdn/scales/x2")

    def test_bad_image_shape(self, artifact_dir):
        server = _manual_server(artifact_dir, FakeClock())
        with pytest.raises(ValueError, match="H, W, C"):
            server.submit(np.zeros((8, 8), np.float32), KEY_A)

    def test_garbage_files_are_skipped_not_fatal(self, artifact_dir, tmp_path):
        zoo = tmp_path / "zoo"
        zoo.mkdir()
        real = next(artifact_dir.glob("srresnet*.npz"))
        (zoo / real.name).write_bytes(real.read_bytes())
        np.savez(zoo / "notanartifact.npz", x=np.zeros(3))
        (zoo / "junk.npz").write_bytes(b"not a zip at all")
        # Truncated zip (valid magic, corrupt structure): BadZipFile.
        (zoo / "truncated.npz").write_bytes(real.read_bytes()[:100])
        server = _manual_server(zoo, FakeClock())
        assert server.available_models == (KEY_A,)
        assert len(server.skipped) == 3

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelServer(tmp_path / "missing", ServerConfig(background=False))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no servable"):
            ModelServer(empty, ServerConfig(background=False))


class TestDeadlineScheduling:
    def test_deadline_expiry_forces_partial_batch(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, latency_budget_s=0.5, max_batch=8
        )
        futures = [
            server.submit(img, KEY_A)
            for img in _images(SHAPES[0], n=3)
        ]
        assert server.poll() == 0  # budget not expired, batch not full
        assert server.pending() == 3
        clock.advance(0.49)
        assert server.poll() == 0
        clock.advance(0.02)  # now past the oldest deadline
        assert server.poll() == 1
        assert all(f.done() for f in futures)
        assert server.telemetry.counter("flush_deadline") == 1
        assert server.telemetry.counter("batch_images") == 3

    def test_full_batch_flushes_without_waiting(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, latency_budget_s=100.0, max_batch=4
        )
        futures = [
            server.submit(img, KEY_A)
            for img in _images(SHAPES[0], n=4)
        ]
        assert server.poll() == 1  # due immediately: a full batch waits
        assert all(f.done() for f in futures)
        assert server.telemetry.counter("flush_full") == 1

    def test_per_request_deadline_overrides_budget(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, latency_budget_s=100.0, max_batch=8
        )
        server.submit(_images(SHAPES[0], n=1)[0], KEY_A, deadline_s=0.01)
        clock.advance(0.02)
        assert server.poll() == 1

    def test_drain_ignores_deadlines(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, latency_budget_s=100.0, max_batch=8
        )
        future = server.submit(_images(SHAPES[0], n=1)[0], KEY_A)
        server.drain()
        assert future.done()
        assert server.telemetry.counter("flush_drain") == 1


class TestCorrectness:
    def test_bit_identical_to_direct_pipeline(
        self, artifact_dir, reference_outputs
    ):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock(), max_batch=3)
            for key in (KEY_A, KEY_B):
                for shape in SHAPES:
                    outputs = server.map(_images(shape), key)
                    for out, ref in zip(outputs, reference_outputs[key][shape]):
                        np.testing.assert_array_equal(out, ref)

    def test_cache_hits_are_bit_identical(self, artifact_dir, reference_outputs):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            images = _images(SHAPES[0])
            first = server.map(images, KEY_A)
            again = server.map(images, KEY_A)
            assert server.telemetry.counter("cache_hits") == len(images)
            for out, ref in zip(again, reference_outputs[KEY_A][SHAPES[0]]):
                np.testing.assert_array_equal(out, ref)
            assert server.telemetry.counter("batches") == server.telemetry.counter(
                "batches"
            )
            del first

    def test_cache_correctness_under_eviction(
        self, artifact_dir, reference_outputs
    ):
        with G.default_dtype("float32"):
            images = _images(SHAPES[0])
            out_bytes = reference_outputs[KEY_A][SHAPES[0]][0].nbytes
            # Room for only two outputs: constant churn.
            server = _manual_server(
                artifact_dir, FakeClock(), cache_bytes=2 * out_bytes
            )
            for _ in range(3):
                outputs = server.map(images, KEY_A)
                for out, ref in zip(outputs, reference_outputs[KEY_A][SHAPES[0]]):
                    np.testing.assert_array_equal(out, ref)
            assert server.cache.evictions > 0
            assert server.telemetry.counter("cache_hits") > 0

    def test_cache_disabled(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock(), cache_bytes=0)
            images = _images(SHAPES[0], n=2)
            server.map(images, KEY_A)
            server.map(images, KEY_A)
            assert server.telemetry.counter("cache_hits") == 0
            assert server.cache.stats()["entries"] == 0


class TestAdmissionControl:
    def test_queue_full_sheds_with_typed_result(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, max_queue_depth=2, latency_budget_s=100.0
        )
        images = _images(SHAPES[0], n=3)
        f1 = server.submit(images[0], KEY_A)
        f2 = server.submit(images[1], KEY_A)
        f3 = server.submit(images[2], KEY_A)
        assert not f1.done() and not f2.done()
        assert f3.done()
        shed = f3.result()
        assert isinstance(shed, ServerBusy)
        assert shed.model == KEY_A
        assert shed.queue_depth == 2
        assert server.telemetry.counter("shed") == 1
        server.drain()
        assert isinstance(f1.result(timeout=5), np.ndarray)
        assert server.stats()["derived"]["shed_rate"] == pytest.approx(1 / 3)

    def test_identical_inflight_requests_coalesce(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(
            artifact_dir, clock, latency_budget_s=100.0, max_batch=8
        )
        image = _images(SHAPES[0], n=1)[0]
        futures = [server.submit(image, KEY_A) for _ in range(5)]
        # One computation queued; four riders attached to it.
        assert server.pending() == 1
        assert server.telemetry.counter("coalesced") == 4
        server.drain()
        outputs = [f.result(timeout=5) for f in futures]
        for out in outputs:
            np.testing.assert_array_equal(out, outputs[0])
        assert server.telemetry.counter("responses") == 5
        assert server.telemetry.counter("batch_images") == 1

    def test_coalesced_results_are_mutation_isolated(self, artifact_dir):
        server = _manual_server(
            artifact_dir, FakeClock(), latency_budget_s=100.0
        )
        image = _images(SHAPES[0], n=1)[0]
        futures = [server.submit(image, KEY_A) for _ in range(3)]
        server.drain()
        outputs = [f.result(timeout=5) for f in futures]
        expected = outputs[1].copy()
        outputs[0][:] = -1.0  # one caller trashes its result in place
        np.testing.assert_array_equal(outputs[1], expected)
        np.testing.assert_array_equal(outputs[2], expected)

    def test_coalesced_requests_share_failure(self, artifact_dir):
        server = _manual_server(artifact_dir, FakeClock())
        bad = np.zeros((8, 8, 4), np.float32)
        futures = [server.submit(bad, KEY_A) for _ in range(3)]
        server.drain()
        for future in futures:
            assert isinstance(future.result(timeout=5), ServeError)
        assert server.telemetry.counter("errors") == 3

    def test_cache_hit_bypasses_admission(self, artifact_dir):
        clock = FakeClock()
        server = _manual_server(artifact_dir, clock, max_queue_depth=1)
        image = _images(SHAPES[0], n=1)[0]
        server.submit(image, KEY_A)
        server.drain()
        # Queue is empty again; a repeat of a cached input resolves
        # instantly even when fresh work would be queued.
        blocker = server.submit(_images(SHAPES[1], n=1)[0], KEY_A)
        hit = server.submit(image, KEY_A)
        assert hit.done()
        assert isinstance(hit.result(), np.ndarray)
        assert not blocker.done()
        server.drain()


class TestModelRegistryLRU:
    def test_lazy_load_and_eviction(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock(), max_models=1)
            assert server.loaded_models() == ()
            image_a = _images(SHAPES[0], n=1)[0]
            image_b = _images(SHAPES[1], n=1)[0]
            server.map([image_a], KEY_A)
            assert server.loaded_models() == (KEY_A,)
            server.map([image_b], KEY_B)
            assert server.loaded_models() == (KEY_B,)
            server.map([image_b], KEY_A)
            assert server.loaded_models() == (KEY_A,)
            assert server.telemetry.counter("model_loads") == 3
            assert server.telemetry.counter("model_evictions") == 2

    def test_no_reload_when_capacity_allows(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock(), max_models=2)
            for _ in range(3):
                server.map(_images(SHAPES[0], n=1), KEY_A)
                server.map(_images(SHAPES[0], n=1), KEY_B)
            assert server.telemetry.counter("model_loads") == 2
            assert server.telemetry.counter("model_evictions") == 0


class _GatedPipeline:
    """InferencePipeline wrapper whose ``flush`` blocks on an event —
    a stand-in for a slow batch, so shutdown tests can hold a flush
    in flight deterministically."""

    started = threading.Event()
    gate = threading.Event()

    def __init__(self, path, **kwargs):
        self._inner = InferencePipeline(path, **kwargs)

    def flush(self):
        type(self).started.set()
        if not type(self).gate.wait(timeout=10):  # pragma: no cover
            raise RuntimeError("gate never opened")
        return self._inner.flush()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestFailureIsolation:
    def test_artifact_load_failure_is_typed_and_does_not_poison_registry(
        self, artifact_dir, monkeypatch
    ):
        """A model whose artifact raises mid-load resolves the waiting
        request with a typed ServeError, leaves the LRU registry clean
        (no half-loaded entry), keeps other models serving, and loads
        fine once the fault clears."""
        fault = {"active": True}
        real_pipeline = InferencePipeline
        key_a_path = str(
            {i.key: i for i in scan_artifact_dir(artifact_dir)[0]}[KEY_A].path
        )

        def flaky_pipeline(path, **kwargs):
            if fault["active"] and str(path) == key_a_path:
                raise RuntimeError("chaos: artifact load failed mid-read")
            return real_pipeline(path, **kwargs)

        monkeypatch.setattr(
            "repro.serve.server.InferencePipeline", flaky_pipeline
        )
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            future = server.submit(_images(SHAPES[0], n=1)[0], KEY_A)
            server.drain()
            result = future.result(timeout=5)
            assert isinstance(result, ServeError)
            assert result.model == KEY_A
            assert "artifact load failed" in result.message
            # The failed load never entered the registry: no poisoned
            # half-loaded entry for LRU accounting to trip over.
            assert KEY_A not in server.loaded_models()
            assert server.telemetry.counter("errors") == 1
            # Other models are unaffected.
            good = server.map(_images(SHAPES[1], n=2), KEY_B)
            assert all(isinstance(out, np.ndarray) for out in good)
            # Once the fault clears, the same key loads and serves.
            fault["active"] = False
            recovered = server.map(_images(SHAPES[0], n=2), KEY_A)
            assert all(isinstance(out, np.ndarray) for out in recovered)
            assert KEY_A in server.loaded_models()

    def test_bad_request_gets_typed_error_not_poison(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            # 4-channel input cannot run through a 3-channel head.
            bad = server.submit(np.zeros((8, 8, 4), np.float32), KEY_A)
            server.drain()
            result = bad.result(timeout=5)
            assert isinstance(result, ServeError)
            assert result.model == KEY_A
            assert server.telemetry.counter("errors") == 1
            # The model still serves good requests afterwards.
            good = server.map(_images(SHAPES[0], n=2), KEY_A)
            assert all(isinstance(out, np.ndarray) for out in good)


class TestConcurrentServing:
    def test_many_threads_mixed_shapes_and_models(
        self, artifact_dir, reference_outputs
    ):
        with G.default_dtype("float32"):
            server = ModelServer(
                artifact_dir,
                ServerConfig(
                    max_batch=4,
                    latency_budget_s=0.002,
                    max_queue_depth=4096,
                    n_threads=1,
                ),
            )
            cases = list(itertools.product((KEY_A, KEY_B), SHAPES))
            results = {}
            errors = []

            def client(worker):
                try:
                    futures = []
                    for i in range(12):
                        key, shape = cases[(worker + i) % len(cases)]
                        image = _images(shape)[i % 6]
                        futures.append(
                            (key, shape, i % 6, server.submit(image, key))
                        )
                    results[worker] = [
                        (key, shape, idx, f.result(timeout=30))
                        for key, shape, idx, f in futures
                    ]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(w,)) for w in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            server.close()
            assert not errors
            served = 0
            for worker_results in results.values():
                for key, shape, idx, out in worker_results:
                    assert not isinstance(out, (ServerBusy, ServeError))
                    np.testing.assert_array_equal(
                        out, reference_outputs[key][shape][idx]
                    )
                    served += 1
            assert served == 8 * 12
            assert server.telemetry.counter("responses") == served
            assert server.telemetry.counter("shed") == 0

    def test_background_loop_flushes_on_deadline(self, artifact_dir):
        with G.default_dtype("float32"):
            server = ModelServer(
                artifact_dir,
                ServerConfig(
                    max_batch=64, latency_budget_s=0.01, n_threads=1
                ),
            )
            # Far fewer than max_batch: only the deadline can flush it.
            future = server.submit(_images(SHAPES[0], n=1)[0], KEY_A)
            out = future.result(timeout=10)
            server.close()
            assert isinstance(out, np.ndarray)
            flushes = (
                server.telemetry.counter("flush_deadline")
                + server.telemetry.counter("flush_drain")
            )
            assert flushes >= 1
            assert server.telemetry.counter("flush_full") == 0


class TestShutdown:
    def test_submit_after_close_is_shed_not_stranded(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            image = _images(SHAPES[0], n=1)[0]
            server.map([image], KEY_A)
            server.close()
            future = server.submit(_images(SHAPES[1], n=1)[0], KEY_A)
            assert future.done()
            result = future.result()
            assert isinstance(result, ServerBusy)
            assert result.reason == "server closed"

    def test_close_is_idempotent(self, artifact_dir):
        server = _manual_server(artifact_dir, FakeClock())
        server.close()
        server.close()

    def test_undrained_close_sheds_queued_work_not_strands_it(
        self, artifact_dir
    ):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            future = server.submit(_images(SHAPES[0], n=1)[0], KEY_A)
            assert not future.done()
            server.close(drain=False)
            # The queued request was never executed, but its future is
            # resolved — with a typed refusal, not a hang.
            assert future.done()
            result = future.result()
            assert isinstance(result, ServerBusy)
            assert result.reason == "server closed"
            assert server.telemetry.counter("shed") == 1

    def test_graceful_close_settles_queued_work_as_results(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            futures = [
                server.submit(img, KEY_A) for img in _images(SHAPES[0], n=3)
            ]
            server.close()  # drain=True, unbounded
            for future in futures:
                assert isinstance(future.result(timeout=5), np.ndarray)
            assert server.telemetry.counter("shed") == 0

    def test_drain_timeout_sheds_queued_but_settles_inflight(
        self, artifact_dir, monkeypatch
    ):
        """close(drain_timeout_s=...) bounds the graceful phase: work
        still *queued* past the deadline resolves as typed
        ServerBusy("server closed"), while the *in-flight* flush gets
        its bounded settle window and resolves to a real result."""
        _GatedPipeline.started = threading.Event()
        _GatedPipeline.gate = threading.Event()
        monkeypatch.setattr(
            "repro.serve.server.InferencePipeline", _GatedPipeline
        )
        with G.default_dtype("float32"):
            server = ModelServer(
                artifact_dir,
                ServerConfig(
                    latency_budget_s=0.001, max_batch=8, n_threads=1
                ),
            )
            images = _images(SHAPES[0], n=2)
            inflight = server.submit(images[0], KEY_A)
            # Wait until the flush holding `inflight` is blocked inside
            # the gated pipeline, then queue a second request that the
            # per-model in-flight cap keeps out of the batch.
            assert _GatedPipeline.started.wait(timeout=10)
            queued = server.submit(images[1], KEY_A)
            opener = threading.Timer(0.5, _GatedPipeline.gate.set)
            opener.start()
            try:
                server.close(drain_timeout_s=0.05)
            finally:
                opener.cancel()
                _GatedPipeline.gate.set()
            shed = queued.result(timeout=1)
            assert isinstance(shed, ServerBusy)
            assert shed.reason == "server closed"
            assert isinstance(inflight.result(timeout=10), np.ndarray)


class TestStatsAndReport:
    def test_stats_and_report_surface_the_story(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            images = _images(SHAPES[0])
            server.map(images, KEY_A)
            server.map(images, KEY_A)
            stats = server.stats()
            assert stats["counters"]["responses"] == 12
            assert stats["derived"]["cache_hit_rate"] == pytest.approx(0.5)
            assert 0 < stats["derived"]["batch_occupancy"] <= 1
            assert stats["cache"]["entries"] == 6
            assert stats["server"]["available_models"] == 2
            report = server.report()
            assert "cache_hit_rate" in report
            assert "srresnet/scales/x2" in report
            assert "coverage=full" in report


class TestSubmitCloseRace:
    def test_submit_racing_close_is_settled_not_stranded(self, artifact_dir):
        """A submission that passes the stop-flag check must either land
        before close()'s final sweep (and be settled by it) or shed —
        never enqueue after the sweep into a future nobody resolves.

        The race window is forced open deterministically: the racing
        submit blocks at the enqueue call while close() runs to
        completion.  Pre-fix, the late enqueue strands its future and
        ``result(timeout=...)`` times out.
        """
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            image = _images(SHAPES[0], n=1)[0]
            entered = threading.Event()
            proceed = threading.Event()
            real_enqueue = server._scheduler.enqueue

            def gated_enqueue(request, max_depth=None):
                entered.set()
                assert proceed.wait(timeout=10)
                return real_enqueue(request, max_depth=max_depth)

            server._scheduler.enqueue = gated_enqueue
            futures = {}

            def racer():
                futures["f"] = server.submit(image, KEY_A)

            submitter = threading.Thread(target=racer)
            submitter.start()
            assert entered.wait(timeout=10)
            closer = threading.Thread(
                target=lambda: server.close(drain=False)
            )
            closer.start()
            # Give close() every chance to win: unsynchronized, it
            # finishes its sweep here (nothing queued yet) and the
            # enqueue that follows is stranded forever.
            time.sleep(0.3)
            proceed.set()
            submitter.join(timeout=10)
            closer.join(timeout=10)
            assert not submitter.is_alive() and not closer.is_alive()
            result = futures["f"].result(timeout=2)
            assert isinstance(result, ServerBusy)
            assert result.reason == "server closed"


class TestEvictionReleasesResources:
    def test_evicted_model_pipeline_is_closed(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock(), max_models=1)
            server.map(_images(SHAPES[0], n=1), KEY_A)
            pipeline_a = server._models[KEY_A].pipeline
            assert not pipeline_a.closed
            server.map(_images(SHAPES[1], n=1), KEY_B)  # LRU evicts A
            assert server.loaded_models() == (KEY_B,)
            assert pipeline_a.closed
            assert pipeline_a.model is None  # arrays released, not leaked
            with pytest.raises(RuntimeError, match="closed"):
                pipeline_a.submit(_images(SHAPES[0], n=1)[0])

    def test_close_releases_loaded_pipelines(self, artifact_dir):
        with G.default_dtype("float32"):
            server = _manual_server(artifact_dir, FakeClock())
            server.map(_images(SHAPES[0], n=1), KEY_A)
            pipeline = server._models[KEY_A].pipeline
            server.close()
            assert pipeline.closed
            assert server.loaded_models() == ()


class TestCoalescedRiderLatency:
    def test_rider_latency_measured_from_its_own_arrival(self, artifact_dir):
        """A coalesced rider's request_latency starts at *its* arrival,
        not the primary's: with 10 fake seconds between the two
        submissions, the flush settles the primary at ~10 s and the
        rider at ~0 s (pre-fix, both recorded the primary's 10 s)."""
        with G.default_dtype("float32"):
            clock = FakeClock()
            server = _manual_server(
                artifact_dir, clock, latency_budget_s=0.5
            )
            image = _images(SHAPES[0], n=1)[0]
            primary = server.submit(image, KEY_A)
            clock.advance(10.0)
            rider = server.submit(image.copy(), KEY_A)
            assert server.telemetry.counter("coalesced") == 1
            server.drain()
            assert isinstance(primary.result(timeout=10), np.ndarray)
            assert isinstance(rider.result(timeout=10), np.ndarray)
            snap = server.telemetry.stats()["latency"]["request_latency"]
            assert snap["count"] == 2
            assert snap["min_ms"] == pytest.approx(0.0, abs=1.0)
            assert snap["max_ms"] == pytest.approx(10_000.0, rel=0.01)
            # The coalesced counter is surfaced for front doors.
            assert server.stats()["server"]["coalesced"] == 1
