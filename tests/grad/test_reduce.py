"""Tests for reduction ops."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor

from ..helpers import check_gradients, rng


class TestValues:
    def test_sum_axis_none(self):
        x = rng(0).normal(size=(3, 4))
        assert G.sum(Tensor(x)).data == pytest.approx(x.sum())

    @pytest.mark.parametrize("axis", [0, 1, (0, 1), -1])
    def test_sum_axes(self, axis):
        x = rng(0).normal(size=(3, 4))
        np.testing.assert_allclose(G.sum(Tensor(x), axis=axis).data,
                                   x.sum(axis=axis))

    @pytest.mark.parametrize("keepdims", [True, False])
    def test_mean_matches_numpy(self, keepdims):
        x = rng(1).normal(size=(2, 3, 4))
        np.testing.assert_allclose(
            G.mean(Tensor(x), axis=(1, 2), keepdims=keepdims).data,
            x.mean(axis=(1, 2), keepdims=keepdims))

    def test_var_matches_numpy(self):
        x = rng(2).normal(size=(5, 6))
        np.testing.assert_allclose(G.var(Tensor(x), axis=1).data,
                                   x.var(axis=1), rtol=1e-10)

    def test_var_ddof(self):
        x = rng(2).normal(size=(20,))
        np.testing.assert_allclose(G.var(Tensor(x), ddof=1).data,
                                   x.var(ddof=1), rtol=1e-10)

    def test_max_min_values(self):
        x = rng(3).normal(size=(4, 5))
        np.testing.assert_allclose(G.maxval(Tensor(x), axis=1).data, x.max(axis=1))
        np.testing.assert_allclose(G.minval(Tensor(x), axis=0).data, x.min(axis=0))


class TestGradients:
    def test_sum_grad(self):
        check_gradients(lambda ts: G.sum(ts[0] * ts[0]),
                        [rng(0).normal(size=(3, 4))])

    def test_mean_axis_grad(self):
        check_gradients(lambda ts: G.sum(G.mean(ts[0], axis=1) ** 2),
                        [rng(1).normal(size=(3, 4))])

    def test_mean_keepdims_grad(self):
        check_gradients(
            lambda ts: G.sum((ts[0] - G.mean(ts[0], axis=1, keepdims=True)) ** 2),
            [rng(2).normal(size=(3, 4))])

    def test_var_grad(self):
        check_gradients(lambda ts: G.sum(G.var(ts[0], axis=0)),
                        [rng(3).normal(size=(4, 3))])

    def test_max_grad_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        G.sum(G.maxval(x, axis=1)).backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_grad_splits_ties(self):
        x = Tensor([[2.0, 2.0]], requires_grad=True)
        G.sum(G.maxval(x, axis=1)).backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_global_max_grad(self):
        check_gradients(lambda ts: G.maxval(ts[0] ** 2),
                        [np.array([[0.5, -2.0], [1.0, 0.1]])])
