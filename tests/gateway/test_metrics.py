"""The gateway's merged /metrics scrape surface, end to end."""

import http.client
import logging

import pytest

from repro.gateway import Gateway, GatewayConfig
from repro.serve import EXPOSITION_CONTENT_TYPE, ServerConfig, lint_exposition

from .conftest import MODEL_A, MODEL_B, images
from .test_gateway_e2e import _config


@pytest.fixture(scope="module")
def scraped(zoo_dir):
    """One gateway, a little traffic to both models, one scrape."""
    with Gateway(zoo_dir, _config()) as gw:
        from repro.gateway import GatewayClient

        client = GatewayClient(gw.address)
        for image in images(n=3, seed=3):
            assert client.infer(image, MODEL_A).ok
            assert client.infer(image, MODEL_B).ok
        host, port = gw.address
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            content_type = response.getheader("Content-Type")
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        yield response.status, content_type, text


class TestScrape:
    def test_scrape_is_lintable_exposition_text(self, scraped):
        status, content_type, text = scraped
        assert status == 200
        assert content_type == EXPOSITION_CONTENT_TYPE
        assert lint_exposition(text) == []

    def test_gateway_families_present(self, scraped):
        _, _, text = scraped
        for family in ("repro_gateway_requests_total",
                       "repro_gateway_proxied_total",
                       "repro_gateway_worker_alive"):
            assert f"# TYPE {family}" in text

    def test_worker_series_are_labelled_per_slot(self, scraped):
        _, _, text = scraped
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        # One TYPE block per family even though two workers publish it.
        assert text.count("# TYPE repro_serve_requests_total counter") == 1

    def test_per_model_latency_percentiles(self, scraped):
        _, _, text = scraped
        assert "# TYPE repro_serve_model_latency_seconds summary" in text
        for model in (MODEL_A, MODEL_B):
            assert (
                f'repro_serve_model_latency_seconds{{model="{model}"'
                in text
            )
        assert 'quantile="0.99"' in text

    def test_slo_series_present(self, scraped):
        _, _, text = scraped
        for family in ("repro_serve_slo_budget_seconds",
                       "repro_serve_slo_p99_seconds",
                       "repro_serve_slo_burn_total",
                       "repro_serve_slo_breaches_total"):
            assert f"# TYPE {family}" in text
        assert f'repro_serve_slo_p99_seconds{{model="{MODEL_A}"' in text

    def test_request_histogram_and_cache_series(self, scraped):
        _, _, text = scraped
        assert "# TYPE repro_serve_request_latency_seconds histogram" \
            in text
        assert 'le="+Inf"' in text
        assert "repro_serve_cache_total" in text
        assert 'outcome="miss"' in text


class TestStructuredLogs:
    def test_proxy_emits_structured_fields(self, zoo_dir, caplog):
        config = _config(n_workers=1)
        with Gateway(zoo_dir, config) as gw:
            from repro.gateway import GatewayClient

            client = GatewayClient(gw.address)
            with caplog.at_level(logging.INFO, logger="repro.gateway"):
                assert client.infer(images(n=1)[0], MODEL_A).ok
        records = [r for r in caplog.records if r.getMessage() == "proxy"]
        assert records
        fields = records[-1].repro_fields
        assert fields["model"] == MODEL_A
        assert fields["status"] == 200
        assert fields["request_id"].startswith("gw-")
        assert fields["total_s"] >= 0


class TestServerConfigKnobs:
    def test_slo_budget_flows_into_worker_metrics(self, zoo_dir):
        config = GatewayConfig(
            n_workers=1,
            server=ServerConfig(
                n_threads=1, dtype="float32",
                slo_default_budget_s=1e-9,  # everything breaches
                drain_timeout_s=10.0))
        with Gateway(zoo_dir, config) as gw:
            from repro.gateway import GatewayClient

            client = GatewayClient(gw.address)
            for image in images(n=2, seed=5):
                assert client.infer(image, MODEL_A).ok
            text = gw.metrics_text()
        assert lint_exposition(text) == []
        assert "repro_serve_slo_breaches_total" in text
        assert "repro_serve_slo_budget_seconds" in text
        assert "1e-09" in text
