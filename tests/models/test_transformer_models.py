"""Tests for the transformer-based SR architectures and classifiers."""

import numpy as np
import pytest

from repro import grad as G
from repro.grad import Tensor
from repro.binarize import SCALESBinaryLinear
from repro.binarize.baselines import BiBERTBinaryLinear
from repro.models import HAT, SwinIR, SwinViT, build_model, resnet18
from repro.models.swinir import image_to_tokens, tokens_to_image

from ..helpers import rng


def _input(size=8):
    return Tensor(rng(0).random((1, 3, size, size)))


class TestTokenHelpers:
    def test_roundtrip(self):
        x = rng(1).normal(size=(2, 5, 4, 6))
        tokens, hw = image_to_tokens(Tensor(x))
        assert tokens.shape == (2, 24, 5)
        assert hw == (4, 6)
        back = tokens_to_image(tokens, hw)
        np.testing.assert_allclose(back.data, x)


class TestSwinIR:
    @pytest.mark.parametrize("scale", [2, 4])
    def test_output_scale(self, scale):
        model = SwinIR(scale=scale, embed_dim=8, depths=(2,), num_heads=(2,),
                       window_size=4)
        out = model(_input(8))
        assert out.shape == (1, 3, 8 * scale, 8 * scale)

    def test_rejects_non_window_multiple(self):
        model = SwinIR(embed_dim=8, depths=(2,), num_heads=(2,), window_size=4)
        with pytest.raises(ValueError):
            model(_input(6))

    def test_rejects_depth_head_mismatch(self):
        with pytest.raises(ValueError):
            SwinIR(depths=(2, 2), num_heads=(2,))

    def test_variable_eval_size(self):
        """Same weights must run on different (window-multiple) sizes."""
        model = SwinIR(scale=2, embed_dim=8, depths=(2,), num_heads=(2,),
                       window_size=4)
        assert model(_input(8)).shape == (1, 3, 16, 16)
        assert model(_input(12)).shape == (1, 3, 24, 24)

    def test_binarized_variant_has_binary_linears(self):
        model = build_model("swinir", scale=2, scheme="scales", preset="tiny")
        assert any(isinstance(m, SCALESBinaryLinear) for m in model.modules())

    def test_bibert_variant(self):
        model = build_model("swinir", scale=2, scheme="bibert", preset="tiny")
        assert any(isinstance(m, BiBERTBinaryLinear) for m in model.modules())

    def test_gradients_reach_all_params(self):
        model = build_model("swinir", scale=2, scheme="scales", preset="tiny")
        out = model(_input(8))
        G.mean(out * out).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing


class TestHAT:
    def test_forward_shape(self):
        model = HAT(scale=2, embed_dim=8, depths=(2,), num_heads=(2,),
                    window_size=4)
        assert model(_input(8)).shape == (1, 3, 16, 16)

    def test_cab_branch_exists(self):
        from repro.models.hat import CAB, HAB
        model = build_model("hat", scale=2, scheme="fp", preset="tiny")
        assert any(isinstance(m, CAB) for m in model.modules())

    def test_cab_weight_learnable(self):
        from repro.models.hat import HAB
        model = build_model("hat", scale=2, scheme="fp", preset="tiny")
        habs = [m for m in model.modules() if isinstance(m, HAB)]
        assert habs and all("cab_weight" in dict(h.named_parameters()) for h in habs)

    def test_binarized_hat_trains(self):
        model = build_model("hat", scale=2, scheme="scales", preset="tiny")
        out = model(_input(8))
        G.mean(out * out).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestClassifiers:
    def test_resnet_output(self):
        model = resnet18(num_classes=7, base_width=8)
        out = model(Tensor(rng(2).random((2, 3, 16, 16))))
        assert out.shape == (2, 7)

    def test_resnet_stage_downsampling(self):
        from repro.models.resnet18 import BasicBlock
        block = BasicBlock(8, 16, stride=2)
        out = block(Tensor(rng(3).normal(size=(1, 8, 8, 8))))
        assert out.shape == (1, 16, 4, 4)

    def test_swinvit_output(self):
        model = SwinViT(num_classes=5, embed_dim=8, depth=2, num_heads=2)
        out = model(Tensor(rng(4).random((2, 3, 32, 32))))
        assert out.shape == (2, 5)

    def test_swinvit_rejects_bad_grid(self):
        model = SwinViT(embed_dim=8, depth=1, num_heads=2,
                        window_size=4, patch_size=4)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 3, 20, 20))))  # grid 5x5 not /4
