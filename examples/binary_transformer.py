"""The first accurate binary transformer SR network (paper Sec. V-C).

Builds SwinIR with (a) the BiBERT-style baseline binarization and (b)
SCALES, trains both briefly, and shows the gap SCALES closes — the
paper's Table IV story at laptop scale.

    python examples/binary_transformer.py
"""

from repro import grad as G
from repro.cost import count_cost_for_hr
from repro.data import benchmark_suite, training_pool
from repro.models import build_model
from repro.nn import init
from repro.train import TrainConfig, Trainer, evaluate

G.set_default_dtype("float32")

SCALE = 2
WINDOW = 4  # tiny preset window size


def train_one(scheme: str, pool, steps: int = 100):
    init.seed(42)
    model = build_model("swinir", scale=SCALE, scheme=scheme, preset="tiny")
    trainer = Trainer(model, pool,
                      TrainConfig(steps=steps, batch_size=4, patch_size=8,
                                  lr=3e-4),
                      lr_multiple=WINDOW)
    trainer.fit()
    return model


def main() -> None:
    pool = training_pool(scale=SCALE, n_images=10, size=(96, 96),
                         lr_multiple=WINDOW)
    suite = benchmark_suite("set5", scale=SCALE, n_images=4, size=(64, 64),
                            lr_multiple=WINDOW)

    for scheme in ["bibert", "scales"]:
        model = train_one(scheme, pool)
        result = evaluate(model, suite)
        init.seed(0)
        full = build_model("swinir", scale=SCALE, scheme=scheme, preset="paper",
                           light_tail=True)
        report = count_cost_for_hr(full, scale=SCALE, window_multiple=8)
        print(f"{scheme:<8} set5 {result.psnr:.2f} dB | full-size "
              f"{report.params_effective / 1e3:.0f}K params, "
              f"{report.ops_effective / 1e9:.1f}G OPs")


if __name__ == "__main__":
    main()
