"""A minimal reverse-mode autodiff engine on NumPy.

This package is the training substrate for the SCALES reproduction: the
paper's networks are expressed with :class:`~repro.grad.Tensor` operations
and trained with the optimizers in :mod:`repro.optim`.
"""

from .tensor import (Tensor, as_tensor, custom_op, default_dtype, get_default_dtype,
                     is_grad_enabled, no_grad, set_default_dtype,
                     thread_default_dtype, unbroadcast)
from .activations import (
    absolute,
    clip,
    exp,
    gelu,
    leaky_relu,
    log,
    maximum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    tanh,
    where,
)
from .reduce import maxval, mean, minval, sum, var  # noqa: A004 - mirrors numpy names
from .shape import (
    broadcast_to,
    concat,
    pad2d,
    pixel_shuffle,
    pixel_unshuffle,
    reshape,
    roll,
    stack,
    swapaxes,
    transpose,
)
from .conv import (
    avg_pool2d,
    conv1d,
    conv2d,
    conv2d_output_shape,
    conv_backend,
    get_conv_backend,
    global_avg_pool2d,
    set_conv_backend,
)

__all__ = [
    "Tensor", "as_tensor", "custom_op", "default_dtype", "get_default_dtype",
    "is_grad_enabled", "no_grad", "set_default_dtype",
    "thread_default_dtype", "unbroadcast",
    "absolute", "clip", "exp", "gelu", "leaky_relu", "log", "maximum", "relu",
    "sigmoid", "softmax", "sqrt", "tanh", "where",
    "maxval", "mean", "minval", "sum", "var",
    "broadcast_to", "concat", "pad2d", "pixel_shuffle", "pixel_unshuffle",
    "reshape", "roll", "stack", "swapaxes", "transpose",
    "avg_pool2d", "conv1d", "conv2d", "conv2d_output_shape", "conv_backend",
    "get_conv_backend", "global_avg_pool2d", "set_conv_backend",
]
